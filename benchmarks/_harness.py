"""Shared infrastructure for the experiment benchmarks.

Every ``test_eNN_*.py`` builds its workload here, runs it through a fresh
simulated system, prints the resulting table/series (the paper-shape
output recorded in EXPERIMENTS.md) and writes it to
``benchmarks/results/``.

Machine-readable artifacts: every :func:`run_system` call is instrumented
through the telemetry bus (event counts, events/sec, wall-clock seconds)
and records the exact reproduction recipe (policy, policy kwargs,
scheduler and its parameters, context-switch cost) plus the analytics
block of :func:`repro.telemetry.report.run_summary` — latency
percentiles (reconfiguration/wait/exec/operation p50/p95/p99) and
time-weighted utilization gauges (CLB occupancy, config-port busy
fraction, residency).  :func:`emit` writes the accumulated run records
as ``BENCH_<experiment>.json`` next to the ``.txt`` table, so
regressions in *results*, *tail latency* and *simulator performance*
are diffable by machines, not just eyeballs.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import List, Optional, Tuple

from repro.core import ConfigRegistry, make_service
from repro.osim import Kernel, RoundRobin, RunStats, Scheduler
from repro.sim import Simulator
from repro.telemetry import (
    EventBus,
    MetricsAggregator,
    Profiler,
    SpanBuilder,
    run_summary,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Run records accumulated since the last :func:`emit` (one experiment
#: file usually makes several :func:`run_system` calls for its table).
_RUNS: List[dict] = []


def _jsonable(value):
    """Best-effort JSON view of a policy kwarg (objects become reprs)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _scheduler_info(scheduler: Scheduler) -> dict:
    params = {
        k: _jsonable(v)
        for k, v in vars(scheduler).items()
        if not k.startswith("_")
    }
    return {"type": type(scheduler).__name__, "params": params}


def run_system(
    registry: ConfigRegistry,
    tasks,
    policy: str,
    scheduler: Optional[Scheduler] = None,
    context_switch: float = 20e-6,
    **policy_kw,
) -> Tuple[RunStats, object]:
    """One complete simulation; returns (run stats, the service)."""
    sim = Simulator()
    service = make_service(policy, registry, **policy_kw)
    bus = EventBus()
    profiler = Profiler(bus)
    aggregator = MetricsAggregator(bus, clb_capacity=registry.arch.n_clbs)
    spans = SpanBuilder(bus)
    sched = scheduler if scheduler is not None else RoundRobin(time_slice=1e-3)
    kernel = Kernel(
        sim,
        sched,
        service,
        context_switch=context_switch,
        bus=bus,
    )
    kernel.spawn_all(list(tasks))
    t0 = time.perf_counter()
    stats = kernel.run()
    wall = time.perf_counter() - t0
    _RUNS.append({
        "policy": policy,
        "policy_kw": {k: _jsonable(v) for k, v in policy_kw.items()},
        "scheduler": _scheduler_info(sched),
        "context_switch": context_switch,
        "n_tasks": stats.n_tasks,
        "wall_seconds": wall,
        "makespan": stats.makespan,
        "mean_turnaround": stats.mean_turnaround,
        "useful_fraction": stats.useful_fraction,
        "metrics": service.metrics.as_dict(),
        "telemetry": profiler.summary(),
        **run_summary(aggregator, spans),
    })
    return stats, service


def emit(name: str, text: str) -> None:
    """Print the experiment output; archive the table (``.txt``) and the
    machine-readable run records (``BENCH_<name>.json``) under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    runs, _RUNS[:] = list(_RUNS), []
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps({"experiment": name, "runs": runs}, indent=2,
                   sort_keys=True) + "\n"
    )


def monotone_nonincreasing(values, slack: float = 0.0) -> bool:
    """Shape check helper: each value at most the previous (+slack)."""
    return all(b <= a * (1 + slack) + 1e-12 for a, b in zip(values, values[1:]))


def monotone_nondecreasing(values, slack: float = 0.0) -> bool:
    return all(b * (1 + slack) + 1e-12 >= a for a, b in zip(values, values[1:]))
