"""Shared infrastructure for the experiment benchmarks.

Every ``test_eNN_*.py`` builds its workload here, runs it through a fresh
simulated system, prints the resulting table/series (the paper-shape
output recorded in EXPERIMENTS.md) and writes it to
``benchmarks/results/``.

Machine-readable artifacts: every :func:`run_system` call is instrumented
through the telemetry bus (event counts, events/sec, wall-clock seconds)
and records the exact reproduction recipe (policy, policy kwargs,
scheduler and its parameters, context-switch cost) plus the analytics
block of :func:`repro.telemetry.report.run_summary` — latency
percentiles (reconfiguration/wait/exec/operation p50/p95/p99) and
time-weighted utilization gauges (CLB occupancy, config-port busy
fraction, residency).  :func:`emit` writes the accumulated run records
as ``BENCH_<experiment>.json`` next to the ``.txt`` table, so
regressions in *results*, *tail latency* and *simulator performance*
are diffable by machines, not just eyeballs.

Every :func:`run_system` call also runs under a **strict**
:class:`repro.telemetry.Auditor` — the online invariant monitors abort
the experiment at the first contract violation (double allocation,
overlapping port transfers, unmatched save/restore, occupancy drift).
Set ``REPRO_AUDIT=lenient`` to collect violations without aborting, or
``REPRO_AUDIT=off`` to disable auditing entirely.

When a committed baseline exists under ``benchmarks/baselines/``,
:func:`emit` additionally prints a soft bench-diff against it (the hard
gate is the CI ``bench-diff`` job; locally the diff is informational —
wall-clock numbers are machine-dependent).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import List, Optional, Tuple

from repro.core import ConfigRegistry, make_service
from repro.osim import Kernel, RoundRobin, RunStats, Scheduler
from repro.sim import Simulator
from repro.telemetry import (
    Auditor,
    EventBus,
    MetricsAggregator,
    Profiler,
    SpanBuilder,
    diff_benches,
    run_summary,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINES_DIR = pathlib.Path(__file__).parent / "baselines"

#: ``strict`` (default): abort at the first invariant violation;
#: ``lenient``: record violations in the artifact; ``off``: no auditing.
AUDIT_MODE = os.environ.get("REPRO_AUDIT", "strict")


def make_auditor(bus: EventBus, clb_capacity: Optional[int] = None,
                 device_port: bool = False) -> Optional[Auditor]:
    """The experiment-wide auditor policy (honors ``REPRO_AUDIT``)."""
    if AUDIT_MODE == "off":
        return None
    return Auditor(bus, mode=AUDIT_MODE, clb_capacity=clb_capacity,
                   device_port=device_port)

#: Run records accumulated since the last :func:`emit` (one experiment
#: file usually makes several :func:`run_system` calls for its table).
_RUNS: List[dict] = []


def _jsonable(value):
    """Best-effort JSON view of a policy kwarg (objects become reprs)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _scheduler_info(scheduler: Scheduler) -> dict:
    params = {
        k: _jsonable(v)
        for k, v in vars(scheduler).items()
        if not k.startswith("_")
    }
    return {"type": type(scheduler).__name__, "params": params}


def run_system(
    registry: ConfigRegistry,
    tasks,
    policy: str,
    scheduler: Optional[Scheduler] = None,
    context_switch: float = 20e-6,
    subscribe=None,
    **policy_kw,
) -> Tuple[RunStats, object]:
    """One complete simulation; returns (run stats, the service).

    ``subscribe``, when given, is called with the fresh :class:`EventBus`
    before the kernel is built, so experiment-specific observers (e.g.
    the SLO engine and queueing decomposition of the saturation sweep)
    see the whole stream from the first boot event.
    """
    sim = Simulator()
    service = make_service(policy, registry, **policy_kw)
    bus = EventBus()
    if subscribe is not None:
        subscribe(bus)
    profiler = Profiler(bus)
    aggregator = MetricsAggregator(bus, clb_capacity=registry.arch.n_clbs)
    spans = SpanBuilder(bus)
    auditor = make_auditor(bus, clb_capacity=registry.arch.n_clbs)
    sched = scheduler if scheduler is not None else RoundRobin(time_slice=1e-3)
    kernel = Kernel(
        sim,
        sched,
        service,
        context_switch=context_switch,
        bus=bus,
    )
    kernel.spawn_all(list(tasks))
    t0 = time.perf_counter()
    try:
        stats = kernel.run()
    finally:
        if auditor is not None:
            auditor.finish()
    wall = time.perf_counter() - t0
    _RUNS.append({
        "policy": policy,
        "policy_kw": {k: _jsonable(v) for k, v in policy_kw.items()},
        "scheduler": _scheduler_info(sched),
        "context_switch": context_switch,
        "n_tasks": stats.n_tasks,
        "wall_seconds": wall,
        "makespan": stats.makespan,
        "mean_turnaround": stats.mean_turnaround,
        "useful_fraction": stats.useful_fraction,
        "metrics": service.metrics.as_dict(),
        "telemetry": profiler.summary(),
        **run_summary(aggregator, spans, auditor=auditor),
    })
    return stats, service


def record_run(record: dict) -> None:
    """Append one hand-built run record to the current experiment's
    artifact — experiment-level summary rows (e.g. the per-policy
    ``saturation`` block of E20) ride ``BENCH_*.json`` exactly like the
    :func:`run_system` records, so ``repro bench-diff`` gates them too."""
    _RUNS.append(record)


def record_compile(circuit: str, profile, **recipe) -> None:
    """Append one *compile* run record (the CAD-flow analogue of
    :func:`run_system`): the reproduction recipe plus the
    :class:`repro.cad.CompileProfile` block — per-phase wall-clock
    breakdown, SA cost curve, router convergence curve, peak RRG size.
    ``repro bench-diff`` gates the place/route phase wall-clock (growth)
    and the convergence statistics (drift) of these records — the
    committed baselines are what the CAD vectorization work must beat.
    """
    _RUNS.append({
        "policy": f"compile:{circuit}",
        "policy_kw": {k: _jsonable(v) for k, v in sorted(recipe.items())},
        "wall_seconds": profile.total_seconds,
        "compile": profile.as_dict(),
    })


def emit(name: str, text: str) -> None:
    """Print the experiment output; archive the table (``.txt``) and the
    machine-readable run records (``BENCH_<name>.json``) under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    runs, _RUNS[:] = list(_RUNS), []
    doc = {"experiment": name, "runs": runs}
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    baseline = BASELINES_DIR / f"BENCH_{name}.json"
    if baseline.exists():
        diff = diff_benches(str(baseline), doc)
        print()
        print(diff.render())


def monotone_nonincreasing(values, slack: float = 0.0) -> bool:
    """Shape check helper: each value at most the previous (+slack)."""
    return all(b <= a * (1 + slack) + 1e-12 for a, b in zip(values, values[1:]))


def monotone_nondecreasing(values, slack: float = 0.0) -> bool:
    return all(b * (1 + slack) + 1e-12 >= a for a, b in zip(values, values[1:]))
