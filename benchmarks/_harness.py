"""Shared infrastructure for the experiment benchmarks.

Every ``test_eNN_*.py`` builds its workload here, runs it through a fresh
simulated system, prints the resulting table/series (the paper-shape
output recorded in EXPERIMENTS.md) and writes it to
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Tuple

from repro.core import ConfigRegistry, make_service
from repro.osim import Kernel, RoundRobin, RunStats, Scheduler
from repro.sim import Simulator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_system(
    registry: ConfigRegistry,
    tasks,
    policy: str,
    scheduler: Optional[Scheduler] = None,
    context_switch: float = 20e-6,
    **policy_kw,
) -> Tuple[RunStats, object]:
    """One complete simulation; returns (run stats, the service)."""
    sim = Simulator()
    service = make_service(policy, registry, **policy_kw)
    kernel = Kernel(
        sim,
        scheduler if scheduler is not None else RoundRobin(time_slice=1e-3),
        service,
        context_switch=context_switch,
    )
    kernel.spawn_all(list(tasks))
    stats = kernel.run()
    return stats, service


def emit(name: str, text: str) -> None:
    """Print the experiment output and archive it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def monotone_nonincreasing(values, slack: float = 0.0) -> bool:
    """Shape check helper: each value at most the previous (+slack)."""
    return all(b <= a * (1 + slack) + 1e-12 for a, b in zip(values, values[1:]))


def monotone_nondecreasing(values, slack: float = 0.0) -> bool:
    return all(b * (1 + slack) + 1e-12 >= a for a, b in zip(values, values[1:]))
