"""CAD-kernel microbenchmarks: scalar vs vectorized place/route engines.

The numpy engines (``engine="vector"``) replace the per-terminal python
loops in the SA placer's move evaluation and the router's per-node cost
function with array kernels — same RNG stream, same accepted moves, same
routed trees, bit-identical results.  These microbenchmarks isolate each
kernel (the full-flow wins are E13d's job) and pin the contract the
speedup rides on: *identical output first, faster second*.

Mirrors ``test_delta_microbench.py``: simulated-result equality asserted
exactly, wall-clock compared with generous CI margins, one table per
quantity emitted into the artifact stream.
"""

import time

from _harness import emit

from repro.analysis import format_table
from repro.cad import (
    NetSpec,
    Router,
    RoutingGraph,
    compile_netlist,
    nets_of,
    pack,
    place,
    technology_map,
)
from repro.cad.flow import _virtual_pin_pool, minimal_region
from repro.device import get_family
from repro.netlist import moving_sum_fir

ARCH = get_family("VF16")
N_ROUNDS = 3  # best-of-N: results are deterministic, only timing jitters


def packed_fir():
    """The E13d target design: placement-bound (169 BLEs, a 49-terminal
    net) — large enough that kernel time dominates setup."""
    mapped = technology_map(moving_sum_fir(8, 4), ARCH.k)
    return pack(mapped, ARCH.k)


def test_sa_kernel_scalar_vs_vector(benchmark):
    design = packed_fir()
    io_count = len(design.inputs) + len(design.outputs)
    region = minimal_region(design.n_clbs, io_count, ARCH)

    def run_engines():
        out = {}
        for engine in ("scalar", "vector"):
            best, coords = None, None
            for _ in range(N_ROUNDS):
                t0 = time.perf_counter()
                p = place(design, region, seed=3, effort="sa",
                          engine=engine)
                dt = time.perf_counter() - t0
                best = dt if best is None else min(best, dt)
                coords = p.coords
            out[engine] = (best, coords)
        return out

    out = benchmark.pedantic(run_engines, rounds=1, iterations=1)
    (s, s_coords), (v, v_coords) = out["scalar"], out["vector"]
    # Bit-exact: the engine may only change how fast moves are scored,
    # never which moves are accepted or where BLEs land.
    assert v_coords == s_coords
    # The vectorized kernel must win outright on a placement-bound
    # design (measured ~2x; strict inequality leaves CI headroom).
    assert v < s, f"vector SA kernel slower: {v * 1e3:.1f}ms vs {s * 1e3:.1f}ms"

    emit("cad_microbench_sa", format_table(
        [{"engine": e, "place_ms": round(t * 1e3, 2),
          "vs_scalar": f"{t / s:.2f}x"}
         for e, (t, _) in out.items()],
        title=f"SA placement kernel: {design.n_clbs} BLEs on "
              f"{ARCH.name} {region.w}x{region.h} (identical coords)",
    ))


def route_inputs():
    """Routing inputs built exactly as the flow builds them (relocatable
    mode), so the microbench routes the real net list of the design."""
    design = packed_fir()
    io_count = len(design.inputs) + len(design.outputs)
    region = minimal_region(design.n_clbs, io_count, ARCH)
    placement = place(design, region, seed=3, effort="sa")
    pool = _virtual_pin_pool(ARCH, region)
    virtual_inputs = {p: pool[i] for i, p in enumerate(design.inputs)}
    virtual_outputs = {
        p: pool[len(pool) - 1 - j]
        for j, p in enumerate(sorted(design.outputs))
    }
    ble_names = {b.name for b in design.bles}
    specs = {}
    for src, sinks in nets_of(design).items():
        source = (("clb", placement.coords[src]) if src in ble_names
                  else ("wire", virtual_inputs[src]))
        specs[src] = NetSpec(name=src, source=source, sinks=[
            ("clbpin", placement.coords[b], pin) for b, pin in sinks
        ])
    for port, src in design.outputs.items():
        if src not in specs:
            specs[src] = NetSpec(
                name=src, source=("clb", placement.coords[src]), sinks=[]
            )
        specs[src].sinks.append(("wire", virtual_outputs[port]))
    graph = RoutingGraph(ARCH, region=region)
    reserved = {graph.wire_id(w): p for p, w in virtual_inputs.items()}
    for port, w in virtual_outputs.items():
        reserved[graph.wire_id(w)] = design.outputs[port]
    return graph, reserved, [specs[n] for n in sorted(specs)]


def test_route_kernel_scalar_vs_vector(benchmark):
    graph, reserved, net_list = route_inputs()

    def run_engines():
        out = {}
        for engine in ("scalar", "vector"):
            best, routed = None, None
            for _ in range(N_ROUNDS):
                router = Router(graph, reserved=dict(reserved),
                                engine=engine)
                t0 = time.perf_counter()
                routed = router.route(net_list)
                dt = time.perf_counter() - t0
                best = dt if best is None else min(best, dt)
            out[engine] = (best, routed)
        return out

    out = benchmark.pedantic(run_engines, rounds=1, iterations=1)
    (s, s_routed), (v, v_routed) = out["scalar"], out["vector"]
    # Node-for-node identical trees: the cost vector is exact, not an
    # approximation of the scalar cost function.
    assert set(s_routed) == set(v_routed)
    for name in s_routed:
        assert v_routed[name].nodes == s_routed[name].nodes, name
        assert v_routed[name].switches == s_routed[name].switches, name
        assert v_routed[name].sink_taps == s_routed[name].sink_taps, name
    # Generous bound — the vector path wins, but by less than the SA
    # kernel (Dijkstra itself is untouched), so gate only disasters.
    assert v < s * 1.5, f"vector route kernel slower: {v * 1e3:.1f}ms " \
                        f"vs {s * 1e3:.1f}ms"

    emit("cad_microbench_route", format_table(
        [{"engine": e, "route_ms": round(t * 1e3, 2),
          "vs_scalar": f"{t / s:.2f}x"}
         for e, (t, _) in out.items()],
        title=f"PathFinder cost kernel: {len(net_list)} nets, "
              f"{len(graph)} RRG nodes on {ARCH.name} (identical trees)",
    ))


def test_warm_compile_is_a_metadata_hit():
    """Host-side: the compile cache turns a repeat compile into a
    dictionary lookup (the compile-path analogue of
    ``test_bitcache_removes_reencoding``)."""
    from repro.cad import CompileCache

    cache = CompileCache()
    t0 = time.perf_counter()
    cold = compile_netlist(moving_sum_fir(8, 4), ARCH, seed=3,
                           effort="sa", cache=cache)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(N_ROUNDS):
        warm = compile_netlist(moving_sum_fir(8, 4), ARCH, seed=3,
                               effort="sa", cache=cache)
        assert warm.bitstream == cold.bitstream
    warm_s = (time.perf_counter() - t0) / N_ROUNDS

    stats = cache.stats()
    assert stats["hits"] == N_ROUNDS
    assert stats["entries"] >= 1
    # Generous bound — the real margin is ~99%, but CI machines vary.
    assert warm_s < cold_s / 2
