"""Delta-reconfiguration microbenchmark: frame diffing on the config port.

The delta engine (``load_mode="delta"``) diffs incoming frames against
the per-frame content digests the :class:`~repro.device.ConfigRam`
maintains and charges the simulated port only for the frames that
actually differ (plus a per-frame addressing header).  On reload-heavy
workloads — the VFPGA manager's steady state — most frames are already
resident, so the charged port time collapses while the configuration
content stays bit-for-bit identical.

Two quantities, separated on purpose:

* **charged port seconds** — simulated time, the paper's quantity; this
  is what the delta engine reduces.
* **host encode wall-clock** — real time spent in
  :meth:`~repro.device.FrameCodec.build_frames`; this is what the
  content-addressed :class:`~repro.core.BitstreamCache` removes.
"""

import time

import numpy as np
from _harness import emit

from repro.analysis import format_table
from repro.core import BitstreamCache, synthetic_bitstream
from repro.device import Fpga, FrameCodec, get_family

N_ROUNDS = 20


def make_streams(arch):
    """Three circuits sharing anchors over the rounds: a swap-heavy mix
    with real flip-flop content (so frames are not trivially zero)."""
    a = synthetic_bitstream("a", arch, 4, arch.height, 6).anchored_at(0, 0)
    b = synthetic_bitstream("b", arch, 4, arch.height, 8).anchored_at(0, 0)
    c = synthetic_bitstream("c", arch, 4, arch.height, 6).anchored_at(4, 0)
    return [a, b, c]


def run_mode(arch, mode):
    """Swap the circuit at anchor 0 every round; returns the final RAM
    and the charged port seconds."""
    fpga = Fpga(arch)
    streams = make_streams(arch)
    fpga.load("c", streams[2], mode=mode)
    for i in range(N_ROUNDS):
        bs = streams[i % 2]
        fpga.load(f"h{i}", bs, mode=mode)
        fpga.unload(f"h{i}", mode=mode)
    return fpga.ram.frames.copy(), fpga.port_busy_time


def test_delta_bit_exact_and_cheaper(benchmark):
    arch = get_family("VF12")
    results = benchmark.pedantic(
        lambda: {m: run_mode(arch, m) for m in ("full", "delta", "auto")},
        rounds=1, iterations=1,
    )
    rams = {m: r[0] for m, r in results.items()}
    port = {m: r[1] for m, r in results.items()}
    # Bit-exact: the engine may only change *when* bits are charged,
    # never *which* bits end up in configuration memory.
    assert np.array_equal(rams["full"], rams["delta"])
    assert np.array_equal(rams["full"], rams["auto"])
    # The swap workload rewrites only the flip-flop columns; delta must
    # beat full by well over the acceptance bar.
    reduction = 1 - port["delta"] / port["full"]
    assert reduction >= 0.30, f"delta saved only {reduction:.0%}"
    assert port["auto"] <= port["full"] + 1e-12

    rows = [{
        "mode": m,
        "port_ms": round(port[m] * 1e3, 3),
        "vs_full": f"{port[m] / port['full']:.2f}x",
    } for m in ("full", "delta", "auto")]
    emit("delta_microbench", format_table(
        rows,
        title=f"delta engine: charged config-port time over {N_ROUNDS} "
              "swap rounds (VF12, identical final configuration)",
    ))


def test_bitcache_removes_reencoding():
    """Host-side: the content-addressed cache turns repeat encodes into
    lookups and horizontal relocations into row copies."""
    arch = get_family("VF12")
    codec = FrameCodec(arch)
    cache = BitstreamCache(arch)
    streams = make_streams(arch)

    t0 = time.perf_counter()
    for _ in range(N_ROUNDS):
        for bs in streams:
            codec.build_frames(bs.clbs, bs.switches, bs.iobs)
    uncached_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(N_ROUNDS):
        for bs in streams:
            cache.frames_for(bs)
    cached_s = time.perf_counter() - t0

    stats = cache.stats()
    # "a" and "b" encode once; "c" is content-identical to "a" at a
    # shifted anchor, so it is *relocated* from the cached image rather
    # than re-encoded.  Every later round is a pure hit.
    assert stats["misses"] == 2
    assert stats["relocations"] == 1
    assert stats["hits"] == (N_ROUNDS - 1) * len(streams)
    # Generous bound — the real margin is large, but CI machines vary.
    assert cached_s < uncached_s
