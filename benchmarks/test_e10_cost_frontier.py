"""E10 — the headline: larger circuits on smaller FPGAs, lower cost (§1, §5).

Claim: the VFPGA allows "to map larger circuits on smaller FPGAs and, as a
consequence, to reduce the cost of using these components by avoiding
underused components."

We fix an application mix whose circuits together need 22 columns and a
workload in which each circuit is busy only a fraction of the time (the
paper's "all circuits … are not used all the time").  Then we chart the
cost-performance frontier: every catalog device from "holds everything"
down to "holds barely one circuit", each with the best applicable
management policy, with cost = equivalent gates.

Expected shape: makespan degrades gracefully (not cliff-like) as the
device shrinks, so a mid-size VFPGA device reaches a large fraction of the
big device's throughput at a small fraction of its gate cost.
"""

from _harness import emit, run_system

from repro.analysis import format_table, sweep
from repro.core import CapacityError, ConfigRegistry
from repro.device import get_family
from repro.osim import zipf_workload

CP = 25e-9
MIX = [("codec", 8), ("crypto", 6), ("net", 5), ("diag", 3)]


def make_registry(arch):
    reg = ConfigRegistry(arch)
    for name, w in MIX:
        if w > arch.width:
            raise CapacityError(f"{name} wider than device")
        reg.register_synthetic(name, w, arch.height, critical_path=CP)
    return reg


def make_tasks(names):
    return zipf_workload(
        names, n_tasks=8, ops_per_task=5, cpu_burst=1e-3,
        cycles=120_000, seed=17, s=1.1,
    )


def run_point(family: str):
    arch = get_family(family)
    gates = arch.equivalent_gates
    row = {"gates": gates}
    try:
        reg = make_registry(arch)
    except CapacityError:
        row["makespan_ms"] = "TOO SMALL"
        row["policy"] = "-"
        return row
    total_width = sum(w for _n, w in MIX)
    if total_width <= arch.width:
        policy, kw = "merged", {}
    else:
        policy, kw = "variable", {"gc": "compact"}
    stats, service = run_system(reg, make_tasks(reg.names()), policy, **kw)
    row["policy"] = policy
    row["makespan_ms"] = round(stats.makespan * 1e3, 1)
    row["loads"] = service.metrics.n_loads
    row["useful"] = round(stats.useful_fraction, 3)
    return row


def test_e10_cost_frontier(benchmark):
    families = ["VF32", "VF24", "VF16", "VF12", "VF10", "VF8", "VF6"]
    result = benchmark.pedantic(
        lambda: sweep("family", families, run_point), rounds=1, iterations=1
    )
    rows = result.rows
    base = next(r for r in rows if r["policy"] == "merged")
    for r in rows:
        if isinstance(r["makespan_ms"], float):
            r["slowdown"] = round(r["makespan_ms"] / base["makespan_ms"], 2)
            r["cost_ratio"] = round(r["gates"] / base["gates"], 3)
    emit("e10_cost_frontier", format_table(
        rows,
        title="E10: cost-performance frontier (mix needs 22 columns "
              "resident; Zipf usage)",
    ))
    usable = [r for r in rows if isinstance(r.get("makespan_ms"), float)]
    # Shape 1: some device is too small even for virtualization.
    assert any(r["makespan_ms"] == "TOO SMALL" for r in rows)
    # Shape 2: the frontier is graceful — the smallest usable VFPGA device
    # costs < 7% of the big one yet stays within ~6x of its makespan.
    smallest = usable[-1]
    assert smallest["cost_ratio"] < 0.07
    assert smallest["slowdown"] < 6
    # Shape 3: a mid-size device (~1/7 the cost) stays within ~5x.
    mid = next(r for r in usable if r["family"] == "VF12")
    assert mid["cost_ratio"] < 0.16
    assert mid["slowdown"] < 5
