"""E11 — the paper's §5 application scenarios, quantified.

The conclusions sketch three application classes; each is scripted here as
a workload mirroring the corresponding example in ``examples/``, run under
a dedicated-hardware baseline and the best-fitting VFPGA policy:

* multimedia codec switching (examples/multimedia_codecs.py) — Zipf codec
  popularity; overlay vs big merged device;
* telecom protocol adaptation (examples/telecom_modem.py) — per-partner
  encoders; variable partitioning vs whole-device dynamic loading;
* embedded periodic diagnostics (examples/embedded_diagnostics.py) —
  resident control law + rare diagnostics; overlay vs all-software.

Real compiled circuits (CRC/FIR/ALU/comparator/parity/accumulator/random
logic) are used throughout, compiled once per scenario.
"""

import pytest
from _harness import emit, run_system

from repro.analysis import format_table
from repro.core import CapacityError, ConfigRegistry
from repro.device import get_family
from repro.netlist import (
    accumulator,
    alu,
    comparator,
    moving_sum_fir,
    parity_tree,
    random_logic,
    serial_crc,
)
from repro.osim import CpuBurst, FpgaOp, PriorityScheduler, Task, zipf_workload


def multimedia_rows():
    def registry(arch, shape):
        reg = ConfigRegistry(arch)
        for nl, name in [
            (moving_sum_fir(3, 3), "voice_fir"),
            (serial_crc(8, 0x07), "stream_crc"),
            (parity_tree(8), "sync_parity"),
            (alu(3), "pixel_alu"),
        ]:
            reg.compile_and_register(nl, name=name, seed=1, effort="greedy",
                                     shape=shape)
        return reg

    def tasks(reg):
        return zipf_workload(reg.names(), n_tasks=8, ops_per_task=6,
                             cpu_burst=0.5e-3, cycles=150_000, seed=11, s=1.4)

    rows = []
    reg = registry(get_family("VF24"), "square")
    stats, svc = run_system(reg, tasks(reg), "merged")
    rows.append({"scenario": "multimedia", "system": "VF24 merged",
                 "makespan_ms": round(stats.makespan * 1e3, 1),
                 "loads": svc.metrics.n_loads,
                 "useful": round(stats.useful_fraction, 3)})
    with pytest.raises(CapacityError):
        reg = registry(get_family("VF12"), "square")
        run_system(reg, tasks(reg), "merged")
    rows.append({"scenario": "multimedia", "system": "VF12 merged",
                 "makespan_ms": "DOES NOT FIT", "loads": "-", "useful": "-"})
    reg = registry(get_family("VF12"), "columns")
    stats, svc = run_system(reg, tasks(reg), "dynamic")
    rows.append({"scenario": "multimedia", "system": "VF12 dynamic",
                 "makespan_ms": round(stats.makespan * 1e3, 1),
                 "loads": svc.metrics.n_loads,
                 "useful": round(stats.useful_fraction, 3)})
    reg = registry(get_family("VF12"), "columns")
    stats, svc = run_system(reg, tasks(reg), "overlay",
                            resident_names=["voice_fir"])
    rows.append({"scenario": "multimedia", "system": "VF12 overlay",
                 "makespan_ms": round(stats.makespan * 1e3, 1),
                 "loads": svc.metrics.n_loads,
                 "useful": round(stats.useful_fraction, 3)})
    return rows


def telecom_rows():
    def registry():
        arch = get_family("VF16")
        reg = ConfigRegistry(arch)
        for width, poly, name in [
            (8, 0x07, "crc8_atm"), (5, 0x15, "crc5_usb"),
            (4, 0x3, "crc4_itu"), (6, 0x03, "crc6_gsm"),
        ]:
            reg.compile_and_register(serial_crc(width, poly), name=name,
                                     seed=1, effort="greedy", shape="columns")
        return reg

    def tasks(reg):
        from repro.osim import uniform_workload
        return uniform_workload(reg.names(), n_tasks=16, ops_per_task=5,
                                cpu_burst=0.3e-3, cycles=120_000, seed=5,
                                arrival_spread=5e-3)

    rows = []
    for policy, kw, label in [
        ("dynamic", {}, "VF16 dynamic"),
        ("fixed", {"n_partitions": 4}, "VF16 4 fixed partitions"),
        ("variable", {"gc": "compact"}, "VF16 variable partitions"),
    ]:
        reg = registry()
        stats, svc = run_system(reg, tasks(reg), policy, **kw)
        rows.append({"scenario": "telecom", "system": label,
                     "makespan_ms": round(stats.makespan * 1e3, 1),
                     "loads": svc.metrics.n_loads,
                     "useful": round(stats.useful_fraction, 3)})
    return rows


def embedded_rows():
    def registry():
        arch = get_family("VF10")
        reg = ConfigRegistry(arch)
        reg.compile_and_register(accumulator(4), name="control_law",
                                 seed=1, effort="greedy", shape="columns")
        reg.compile_and_register(random_logic(40, 8, 4, seed=3),
                                 name="self_test", seed=1, effort="greedy",
                                 shape="columns")
        reg.compile_and_register(comparator(4), name="limit_check",
                                 seed=1, effort="greedy", shape="columns")
        reg.compile_and_register(parity_tree(8), name="mem_scrub",
                                 seed=1, effort="greedy", shape="columns")
        return reg

    def tasks():
        control = Task("control", [
            s for _ in range(8)
            for s in (CpuBurst(0.2e-3), FpgaOp("control_law", 80_000))
        ], priority=0)
        diags = [
            Task(f"diag{i}", [
                s for _ in range(3)
                for s in (CpuBurst(1e-3), FpgaOp(name, 40_000))
            ], priority=5, arrival=(i + 1) * 2e-3)
            for i, name in enumerate(["self_test", "limit_check", "mem_scrub"])
        ]
        return [control] + diags

    rows = []
    for policy, kw, label in [
        ("software", {"slowdown": 25.0}, "VF10 all software"),
        ("overlay", {"resident_names": ["control_law"]}, "VF10 overlay"),
    ]:
        reg = registry()
        ts = tasks()
        stats, svc = run_system(reg, ts, policy,
                                scheduler=PriorityScheduler(time_slice=0.5e-3),
                                **kw)
        control = next(t for t in ts if t.name == "control")
        rows.append({"scenario": "embedded", "system": label,
                     "makespan_ms": round(stats.makespan * 1e3, 1),
                     "loads": svc.metrics.n_loads,
                     "useful": round(stats.useful_fraction, 3),
                     "control_ms": round(control.accounting.turnaround * 1e3, 1)})
    return rows


def test_e11_applications(benchmark):
    def run_all():
        return multimedia_rows() + telecom_rows() + embedded_rows()

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("e11_applications", format_table(
        rows, title="E11: the paper's §5 application scenarios"
    ))
    by = {(r["scenario"], r["system"]): r for r in rows}
    # Multimedia: the small overlaid device approaches the big device.
    big = by[("multimedia", "VF24 merged")]["makespan_ms"]
    ov = by[("multimedia", "VF12 overlay")]["makespan_ms"]
    dyn = by[("multimedia", "VF12 dynamic")]["makespan_ms"]
    assert ov < dyn
    assert ov < big * 1.5
    # Telecom: partitioning beats whole-device dynamic loading clearly.
    t_dyn = by[("telecom", "VF16 dynamic")]["makespan_ms"]
    t_var = by[("telecom", "VF16 variable partitions")]["makespan_ms"]
    assert t_var < t_dyn / 2
    # Embedded: hardware with overlay crushes the software fallback and
    # keeps the control task fast.
    sw = by[("embedded", "VF10 all software")]
    hw = by[("embedded", "VF10 overlay")]
    assert hw["makespan_ms"] < sw["makespan_ms"] / 4
    assert hw["control_ms"] < sw["control_ms"]
