"""E12 — configuration-port ablation: full-serial vs partial (paper §2).

Claim: "in the Xilinx X4000 FPGAs, the configuration can be downloaded
only serially and completely … therefore, programmability is restricted in
the practice to initial configuration or occasional reconfiguration.  In
some Xilinx FPGA families, the connectivity is partially reconfigurable.
In these cases, frequent reprogramming of the FPGA is feasible."

Same device geometry and workload; only ``supports_partial`` changes.  On
the full-serial device every load rewrites the whole RAM *and* must wait
for the fabric to go quiet (it would corrupt running circuits), so
partition-style concurrency collapses too.  Expected shape: partial
reconfiguration wins by a large factor on a switching-heavy workload, and
the gap grows with switching frequency.
"""

from _harness import emit, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import CpuBurst, FpgaOp, Task

CP = 25e-9


def run_point(ops_per_task: int):
    row = {}
    for partial in (True, False):
        arch = get_family("VF12").scaled(supports_partial=partial)
        reg = ConfigRegistry(arch)
        names = []
        # Five configurations, device holds three: every point has real
        # capacity pressure, so reconfiguration frequency scales with ops.
        for i in range(5):
            reg.register_synthetic(f"f{i}", 4, arch.height, critical_path=CP)
            names.append(f"f{i}")
        # Each task cycles through the configurations so reconfiguration
        # frequency genuinely scales with ops_per_task.
        tasks = []
        for t in range(6):
            program = []
            for i in range(ops_per_task):
                program.append(CpuBurst(1e-3))
                program.append(FpgaOp(names[(t + i) % len(names)], 100_000))
            tasks.append(Task(f"t{t}", program))
        stats, service = run_system(reg, tasks, "variable", gc="merge")
        key = "partial" if partial else "full_serial"
        row[f"{key}_ms"] = round(stats.makespan * 1e3, 1)
        row[f"{key}_reconfig_ms"] = round(stats.total_fpga_reconfig * 1e3, 1)
    row["slowdown"] = round(row["full_serial_ms"] / row["partial_ms"], 2)
    return row


def test_e12_config_port_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: sweep("ops_per_task", [1, 2, 4, 8], run_point),
        rounds=1, iterations=1,
    )
    emit("e12_config_port_ablation", format_table(
        result.rows,
        title="E12: partial vs full-serial configuration port "
              "(6 tasks, 5 configurations on a 3-slot device, "
              "variable partitioning)",
    ))
    slowdowns = result.column("slowdown")
    # Shape 1: the full-serial device is uniformly and substantially worse
    # (it rewrites the whole RAM per switch and must quiesce the fabric,
    # which also kills partition concurrency).
    assert all(s > 1.5 for s in slowdowns)
    # Shape 2: total reconfiguration time scales with switching frequency
    # on both ports, but the serial port pays more at every point.
    partial = result.column("partial_reconfig_ms")
    serial = result.column("full_serial_reconfig_ms")
    assert serial[-1] > serial[0] and partial[-1] > partial[0]
    assert all(f > 1.5 * p for f, p in zip(serial, partial))
