"""E13 — CAD-flow quality ablation (design-choice ablation from DESIGN.md).

Not a claim of the paper, but a design decision of this reproduction that
the VFPGA numbers depend on: how good must placement/routing be?  We
compile a suite of real circuits under (a) greedy vs simulated-annealing
placement and (b) a router iteration cap sweep, and report wirelength,
critical path and routability.

Expected shapes: SA placement never lengthens wires on average and
usually shortens the critical path; starving the router of iterations
turns dense circuits unroutable while generous caps change nothing.
"""

from _harness import emit, record_compile

from repro.analysis import format_table, geometric_mean
from repro.cad import CadInstrumentation, RoutingError, compile_netlist
from repro.device import get_family
from repro.netlist import alu, comparator, ripple_adder, serial_crc

ARCH = get_family("VF10")
SUITE = [
    ("adder4", lambda: ripple_adder(4)),
    ("cmp4", lambda: comparator(4)),
    ("alu3", lambda: alu(3)),
    ("crc8", lambda: serial_crc(8, 0x07)),
]


def placement_rows():
    """Greedy vs SA quality table; every compile runs instrumented, so
    the artifact carries one compile-phase block per (circuit, effort)
    — the per-phase wall-clock baselines the CAD vectorization work
    (ROADMAP item 3) must beat, gated by ``repro bench-diff``."""
    rows = []
    profile_rows = []
    for name, factory in SUITE:
        row = {"circuit": name}
        for effort in ("greedy", "sa"):
            # Best-of-3 wall clocks: the flow is deterministic (identical
            # events/curves every repeat), only the timing jitters, and
            # the min is the stable statistic bench-diff should gate.
            best = None
            for _ in range(3):
                instr = CadInstrumentation()
                res = compile_netlist(factory(), ARCH, seed=3,
                                      effort=effort, instrument=instr)
                if best is None or \
                        res.profile.total_seconds < best.total_seconds:
                    best = res.profile
            record_compile(name, best, effort=effort, seed=3,
                           family=ARCH.name)
            row[f"{effort}_wl"] = res.wirelength
            row[f"{effort}_cp_ns"] = round(res.critical_path * 1e9, 2)
            prof = best
            phase = prof.phase_seconds
            profile_rows.append({
                "circuit": name,
                "effort": effort,
                "place_ms": round(phase.get("place", 0.0) * 1e3, 2),
                "route_ms": round(phase.get("route", 0.0) * 1e3, 2),
                "total_ms": round(prof.total_seconds * 1e3, 2),
                "sa_steps": prof.sa_steps,
                "route_iters": prof.route_iterations,
                "peak_rrg": prof.peak_rrg_nodes,
            })
        row["wl_gain"] = round(row["greedy_wl"] / row["sa_wl"], 3)
        rows.append(row)
    return rows, profile_rows


def router_rows():
    rows = []
    for cap in (2, 4, 8, 24):
        ok = 0
        wl = []
        for name, factory in SUITE:
            try:
                res = compile_netlist(
                    factory(), ARCH, seed=3, effort="greedy",
                    max_route_iterations=cap,
                )
                ok += 1
                wl.append(res.wirelength)
            except RoutingError:
                pass
        rows.append({
            "router_iter_cap": cap,
            "routed": f"{ok}/{len(SUITE)}",
            "geo_wirelength": round(geometric_mean(wl), 1) if wl else "-",
        })
    return rows


def test_e13_cad_ablation(benchmark):
    def run_all():
        return placement_rows(), router_rows()

    (place_rows, profile_rows), route_rows = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    text = format_table(
        place_rows, title="E13a: greedy vs simulated-annealing placement"
    ) + "\n\n" + format_table(
        route_rows, title="E13b: router iteration cap vs routability"
    ) + "\n\n" + format_table(
        profile_rows, title="E13c: compile-phase profile (instrumented)"
    )
    emit("e13_cad_ablation", text)
    # Shape: SA placement reduces wirelength on the suite (geomean > 1).
    gains = [r["wl_gain"] for r in place_rows]
    assert geometric_mean(gains) > 1.0
    # Every circuit routes with the default cap.
    assert route_rows[-1]["routed"] == f"{len(SUITE)}/{len(SUITE)}"
    # Routability is monotone in the iteration cap.
    counts = [int(r["routed"].split("/")[0]) for r in route_rows]
    assert all(b >= a for a, b in zip(counts, counts[1:]))


def test_e13_compile_throughput(benchmark):
    """Micro-benchmark: full-flow compile time for a mid-size circuit
    (the quantity that bounds registry construction in every experiment)."""
    nl = ripple_adder(4)

    def compile_once():
        return compile_netlist(nl, ARCH, seed=1, effort="greedy")

    result = benchmark(compile_once)
    assert result.bitstream.used_clbs > 0
