"""E13 — CAD-flow quality ablation (design-choice ablation from DESIGN.md).

Not a claim of the paper, but a design decision of this reproduction that
the VFPGA numbers depend on: how good must placement/routing be?  We
compile a suite of real circuits under (a) greedy vs simulated-annealing
placement and (b) a router iteration cap sweep, and report wirelength,
critical path and routability.

Expected shapes: SA placement never lengthens wires on average and
usually shortens the critical path; starving the router of iterations
turns dense circuits unroutable while generous caps change nothing.
"""

import time

from _harness import emit, record_compile, record_run

from repro.analysis import format_table, geometric_mean
from repro.cad import (
    CadInstrumentation,
    CompileCache,
    RoutingError,
    compile_netlist,
)
from repro.device import get_family
from repro.netlist import alu, comparator, moving_sum_fir, ripple_adder, \
    serial_crc

ARCH = get_family("VF10")
SUITE = [
    ("adder4", lambda: ripple_adder(4)),
    ("cmp4", lambda: comparator(4)),
    ("alu3", lambda: alu(3)),
    ("crc8", lambda: serial_crc(8, 0x07)),
]

#: E13d target: a placement-bound design (169 BLEs, a 49-terminal net)
#: on the family large enough to hold it — where the vectorized SA
#: kernel and the compile cache have something to win.
E13D_ARCH_NAME = "VF16"
E13D_CIRCUIT = "fir8x4"


def e13d_rows():
    """Vectorized-kernel and compile-cache wins (ROADMAP item 3).

    Two arms: (a) scalar vs vector CAD kernels on one placement-bound
    compile — the engines are pinned bit-identical, so the only delta
    is wall clock; (b) cold vs warm compile through a
    :class:`CompileCache` — the warm run is a flow hit.  Best-of-3
    everywhere: the flow is deterministic, only timing jitters.
    """
    arch = get_family(E13D_ARCH_NAME)
    rows = []
    profiles = {}
    bitstreams = {}
    for engine in ("scalar", "vector"):
        best = None
        for _ in range(3):
            instr = CadInstrumentation()
            res = compile_netlist(moving_sum_fir(8, 4), arch, seed=3,
                                  effort="sa", engine=engine,
                                  instrument=instr)
            if best is None or \
                    res.profile.total_seconds < best.total_seconds:
                best = res.profile
        record_compile(E13D_CIRCUIT, best, effort="sa", seed=3,
                       family=arch.name, engine=engine)
        profiles[engine] = best
        bitstreams[engine] = res.bitstream
        phase = best.phase_seconds
        rows.append({
            "arm": f"engine={engine}",
            "place_ms": round(phase.get("place", 0.0) * 1e3, 2),
            "route_ms": round(phase.get("route", 0.0) * 1e3, 2),
            "total_ms": round(best.total_seconds * 1e3, 2),
        })
    # The engines must be interchangeable before their timings are.
    assert bitstreams["scalar"] == bitstreams["vector"]
    sa_speedup = (profiles["scalar"].phase_seconds["place"]
                  / profiles["vector"].phase_seconds["place"])

    cold = warm = None
    for _ in range(3):
        cache = CompileCache()
        t0 = time.perf_counter()
        cold_res = compile_netlist(moving_sum_fir(8, 4), arch, seed=3,
                                   effort="sa", cache=cache)
        t1 = time.perf_counter()
        warm_res = compile_netlist(moving_sum_fir(8, 4), arch, seed=3,
                                   effort="sa", cache=cache)
        t2 = time.perf_counter()
        assert warm_res.bitstream == cold_res.bitstream
        assert cache.hits == 1
        cold = t1 - t0 if cold is None else min(cold, t1 - t0)
        warm = t2 - t1 if warm is None else min(warm, t2 - t1)
    warm_reduction = 1.0 - warm / cold
    rows.append({"arm": "cache=cold",
                 "place_ms": "-", "route_ms": "-",
                 "total_ms": round(cold * 1e3, 2)})
    rows.append({"arm": "cache=warm",
                 "place_ms": "-", "route_ms": "-",
                 "total_ms": round(warm * 1e3, 2)})
    record_run({
        "policy": f"e13d:{E13D_CIRCUIT}",
        "policy_kw": {"family": arch.name, "seed": 3, "effort": "sa"},
        "e13d": {
            "cold_seconds": cold,
            "warm_seconds": warm,
            "warm_reduction": round(warm_reduction, 4),
            "sa_speedup": round(sa_speedup, 3),
        },
    })
    return rows, sa_speedup, warm_reduction


def placement_rows():
    """Greedy vs SA quality table; every compile runs instrumented, so
    the artifact carries one compile-phase block per (circuit, effort)
    — the per-phase wall-clock baselines the CAD vectorization work
    (ROADMAP item 3) must beat, gated by ``repro bench-diff``."""
    rows = []
    profile_rows = []
    for name, factory in SUITE:
        row = {"circuit": name}
        for effort in ("greedy", "sa"):
            # Best-of-3 wall clocks: the flow is deterministic (identical
            # events/curves every repeat), only the timing jitters, and
            # the min is the stable statistic bench-diff should gate.
            best = None
            for _ in range(3):
                instr = CadInstrumentation()
                res = compile_netlist(factory(), ARCH, seed=3,
                                      effort=effort, instrument=instr)
                if best is None or \
                        res.profile.total_seconds < best.total_seconds:
                    best = res.profile
            record_compile(name, best, effort=effort, seed=3,
                           family=ARCH.name)
            row[f"{effort}_wl"] = res.wirelength
            row[f"{effort}_cp_ns"] = round(res.critical_path * 1e9, 2)
            prof = best
            phase = prof.phase_seconds
            profile_rows.append({
                "circuit": name,
                "effort": effort,
                "place_ms": round(phase.get("place", 0.0) * 1e3, 2),
                "route_ms": round(phase.get("route", 0.0) * 1e3, 2),
                "total_ms": round(prof.total_seconds * 1e3, 2),
                "sa_steps": prof.sa_steps,
                "route_iters": prof.route_iterations,
                "peak_rrg": prof.peak_rrg_nodes,
            })
        row["wl_gain"] = round(row["greedy_wl"] / row["sa_wl"], 3)
        rows.append(row)
    return rows, profile_rows


def router_rows():
    rows = []
    for cap in (2, 4, 8, 24):
        ok = 0
        wl = []
        for name, factory in SUITE:
            try:
                res = compile_netlist(
                    factory(), ARCH, seed=3, effort="greedy",
                    max_route_iterations=cap,
                )
                ok += 1
                wl.append(res.wirelength)
            except RoutingError:
                pass
        rows.append({
            "router_iter_cap": cap,
            "routed": f"{ok}/{len(SUITE)}",
            "geo_wirelength": round(geometric_mean(wl), 1) if wl else "-",
        })
    return rows


def test_e13_cad_ablation(benchmark):
    def run_all():
        return placement_rows(), router_rows(), e13d_rows()

    (place_rows, profile_rows), route_rows, \
        (kernel_rows, sa_speedup, warm_reduction) = benchmark.pedantic(
            run_all, rounds=1, iterations=1)
    text = format_table(
        place_rows, title="E13a: greedy vs simulated-annealing placement"
    ) + "\n\n" + format_table(
        route_rows, title="E13b: router iteration cap vs routability"
    ) + "\n\n" + format_table(
        profile_rows, title="E13c: compile-phase profile (instrumented)"
    ) + "\n\n" + format_table(
        kernel_rows,
        title=f"E13d: kernel engines and compile cache "
              f"({E13D_CIRCUIT}@{E13D_ARCH_NAME}, SA speedup "
              f"{sa_speedup:.2f}x, warm saves {warm_reduction:.1%})",
    )
    emit("e13_cad_ablation", text)
    # Shape: SA placement reduces wirelength on the suite (geomean > 1).
    gains = [r["wl_gain"] for r in place_rows]
    assert geometric_mean(gains) > 1.0
    # Every circuit routes with the default cap.
    assert route_rows[-1]["routed"] == f"{len(SUITE)}/{len(SUITE)}"
    # Routability is monotone in the iteration cap.
    counts = [int(r["routed"].split("/")[0]) for r in route_rows]
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    # The vectorized SA kernel wins the placement-bound compile
    # outright (measured ~2x; 1.5 leaves CI-runner headroom), and a
    # warm compile is a metadata hit, not a flow walk.
    assert sa_speedup > 1.5
    assert warm_reduction > 0.9


def test_e13_compile_throughput(benchmark):
    """Micro-benchmark: full-flow compile time for a mid-size circuit
    (the quantity that bounds registry construction in every experiment)."""
    nl = ripple_adder(4)

    def compile_once():
        return compile_netlist(nl, ARCH, seed=1, effort="greedy")

    result = benchmark(compile_once)
    assert result.bitstream.used_clbs > 0
