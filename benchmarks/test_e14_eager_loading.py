"""E14 — lazy vs eager (implicit) dynamic loading (paper §3).

Claim: the configuration can be loaded "either explicitly upon system
call or implicitly when the task is started or reactivated by the
operating system".  The implicit variant can hide the download under the
task's CPU section — when the fabric would otherwise sit idle.

Single task alternating two configurations with a CPU section before each
operation; sweep the CPU-section length.  Expected shape: eager loading
hides up to ``min(load_time, cpu_burst)`` per operation, so the saving
grows with the burst until the download is fully hidden, then flattens;
with no CPU section there is nothing to hide and the variants tie.
"""

from _harness import emit, monotone_nondecreasing, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import CpuBurst, FpgaOp, Task

CP = 25e-9
CYCLES = 100_000
N_OPS = 10


def make_task(cpu_burst: float) -> Task:
    program = []
    for i in range(N_OPS):
        if cpu_burst > 0:
            program.append(CpuBurst(cpu_burst))
        program.append(FpgaOp(f"f{i % 2}", CYCLES))
    return Task("t", program)


def run_point(cpu_ms: float):
    row = {}
    for eager in (False, True):
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        reg.register_synthetic("f0", 5, arch.height, critical_path=CP)
        reg.register_synthetic("f1", 5, arch.height, critical_path=CP)
        stats, service = run_system(
            reg, [make_task(cpu_ms * 1e-3)], "dynamic", eager=eager
        )
        key = "eager" if eager else "lazy"
        row[f"{key}_ms"] = round(stats.makespan * 1e3, 2)
        if eager:
            row["prefetches"] = service.n_prefetches
    row["saved_ms"] = round(row["lazy_ms"] - row["eager_ms"], 2)
    return row


def test_e14_eager_loading(benchmark):
    bursts = [0.0, 2.0, 5.0, 10.0, 20.0]
    result = benchmark.pedantic(
        lambda: sweep("cpu_ms", bursts, run_point), rounds=1, iterations=1
    )
    emit("e14_eager_loading", format_table(
        result.rows,
        title="E14: lazy vs eager dynamic loading, CPU-section sweep "
              f"({N_OPS} alternating ops, load ≈ 9 ms)",
    ))
    saved = result.column("saved_ms")
    # Shape: nothing hidden without a CPU section …
    assert abs(saved[0]) < 0.5
    # … savings grow with the burst …
    assert monotone_nondecreasing(saved[:4], slack=0.05)
    # … and are substantial once bursts rival the download time.
    assert saved[-1] > 0.3 * result.rows[-1]["lazy_ms"] * 0.3
    assert result.rows[-1]["prefetches"] >= N_OPS - 2
