"""E15 — long-distance interconnection busses (paper §2).

Claim: "long-distance interconnection busses are available to reduce the
propagation time in large devices by limiting the number of switches
traversed by a signal."

Corner-to-corner nets on devices of growing size, routed with and without
long lines.  Expected shape: without long lines the cross-chip net delay
grows linearly with the device side (every tile adds a segment and a
switch); with long lines it flattens to a near-constant (one long hop plus
local distribution), and the advantage widens with device size — exactly
the paper's rationale.
"""

from _harness import emit, monotone_nondecreasing

from repro.analysis import format_table, sweep
from repro.cad import NetSpec, Router, RoutingGraph
from repro.device import Architecture, Coord


def cross_chip_delay(side: int, long_per_channel: int) -> float:
    arch = Architecture(
        f"s{side}l{long_per_channel}", side, side,
        channel_width=4, long_per_channel=long_per_channel,
    )
    g = RoutingGraph(arch)
    r = Router(g)
    mid = side // 2
    net = NetSpec(
        "n", ("clb", Coord(0, mid)), [("clbpin", Coord(side - 1, mid), 0)]
    )
    routed = r.route([net])["n"]
    w, s, lw = routed.sink_path_stats[("clbpin", Coord(side - 1, mid), 0)]
    return (
        w * arch.wire_delay + s * arch.switch_delay
        + lw * arch.long_wire_delay
    )


def run_point(side: int):
    without = cross_chip_delay(side, 0)
    with_long = cross_chip_delay(side, 2)
    return {
        "no_long_ns": round(without * 1e9, 2),
        "with_long_ns": round(with_long * 1e9, 2),
        "speedup": round(without / with_long, 2),
    }


def test_e15_long_lines(benchmark):
    sides = [6, 10, 16, 24, 32]
    result = benchmark.pedantic(
        lambda: sweep("side", sides, run_point), rounds=1, iterations=1
    )
    emit("e15_long_lines", format_table(
        result.rows,
        title="E15: cross-chip net delay, segmented-only vs long lines",
    ))
    no_long = result.column("no_long_ns")
    with_long = result.column("with_long_ns")
    speedup = result.column("speedup")
    # Shape 1: segment-only delay grows with device size.
    assert monotone_nondecreasing(no_long)
    assert no_long[-1] > 3 * no_long[0]
    # Shape 2: long-line delay stays nearly flat.
    assert with_long[-1] < with_long[0] * 2
    # Shape 3: the advantage widens with size (the paper's "large devices").
    assert monotone_nondecreasing(speedup, slack=0.05)
    assert speedup[-1] > 2.0
