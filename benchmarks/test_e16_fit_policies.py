"""E16 — allocation fit-policy ablation for variable partitions (§4).

The paper specifies split-on-demand but not *which* idle partition to
split; this is the classic Knuth-style storage-allocation study run on
configuration columns: seeded random allocate/release churn (no
coalescing, as in the paper's persistent partition boundaries, with
periodic merge GC), measuring allocation failures and fragmentation per
fit rule.

Expected shape: worst-fit shatters the large holes and fails most;
best-fit and first-fit stay close (first-fit usually wins on columns,
matching the classic result); all policies fail more as utilization
pressure rises.
"""

import random

from _harness import emit

from repro.analysis import format_table, sweep
from repro.core import ColumnAllocator

WIDTH = 64
N_OPS = 4_000
TRIALS = 8


def churn(fit: str, mean_hold: int, seed: int):
    """One churn run; returns (failures, attempts, mean fragmentation)."""
    rng = random.Random(seed)
    alloc = ColumnAllocator(WIDTH, coalesce=False)
    held = []
    failures = attempts = 0
    frag_sum = 0.0
    for step in range(N_OPS):
        if held and (rng.random() < 0.5 or alloc.total_free < 2):
            idx = rng.randrange(len(held))
            x, w = held.pop(idx)
            alloc.release(x, w)
        else:
            w = rng.choice([2, 2, 3, 3, 4, 5, 8])
            attempts += 1
            x = alloc.allocate(w, fit=fit)
            if x is None:
                failures += 1
                alloc.merge_free()  # GC on failure, then retry once
                x = alloc.allocate(w, fit=fit)
            if x is not None:
                held.append((x, w))
        frag_sum += alloc.fragmentation
    return failures, attempts, frag_sum / N_OPS


def run_point(fit: str):
    failures = attempts = 0
    frags = []
    for trial in range(TRIALS):
        f, a, frag = churn(fit, mean_hold=6, seed=1000 + trial)
        failures += f
        attempts += a
        frags.append(frag)
    return {
        "fail_rate": round(failures / attempts, 4),
        "failures": failures,
        "mean_fragmentation": round(sum(frags) / len(frags), 4),
    }


def test_e16_fit_policies(benchmark):
    result = benchmark.pedantic(
        lambda: sweep("fit", ["first", "best", "worst"], run_point),
        rounds=1, iterations=1,
    )
    emit("e16_fit_policies", format_table(
        result.rows,
        title=f"E16: fit-policy churn study ({WIDTH} columns, {N_OPS} ops "
              f"x {TRIALS} trials, merge-on-failure GC)",
    ))
    by = {r["fit"]: r for r in result.rows}
    # Shape: worst-fit destroys large holes -> strictly more failures
    # than both first-fit and best-fit (the classic storage result).
    assert by["worst"]["fail_rate"] > by["first"]["fail_rate"]
    assert by["worst"]["fail_rate"] > by["best"]["fail_rate"]
    # First-fit and best-fit stay within a small factor of each other.
    lo = min(by["first"]["fail_rate"], by["best"]["fail_rate"])
    hi = max(by["first"]["fail_rate"], by["best"]["fail_rate"])
    assert hi <= max(2.5 * lo, lo + 0.02)
