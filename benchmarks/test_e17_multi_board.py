"""E17 — the paper's "virtual computer": a system of FPGA boards (§2).

Claim: "a higher-abstraction level could be envisioned by realizing a
computing system composed only of FPGA-based boards so that the whole
system operation can be virtualized."

A fixed FPGA-bound workload runs on 1–4 boards behind one virtual-FPGA
interface (affinity-then-least-loaded placement, per-board dynamic
loading).  Expected shape: makespan scales down with board count while
the working set exceeds one board (near-linear at first, saturating once
every configuration has a home), and downloads fall because configs stop
evicting each other.
"""

from _harness import emit, monotone_nonincreasing, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import uniform_workload

CP = 25e-9
N_CONFIGS = 4


def run_point(n_devices: int):
    arch = get_family("VF10")
    reg = ConfigRegistry(arch)
    names = []
    for i in range(N_CONFIGS):
        reg.register_synthetic(f"f{i}", 6, arch.height, critical_path=CP)
        names.append(f"f{i}")
    tasks = uniform_workload(
        names, n_tasks=8, ops_per_task=4, cpu_burst=0.5e-3,
        cycles=200_000, seed=23,
    )
    stats, service = run_system(reg, tasks, "multi", n_devices=n_devices)
    busy = service.per_board_exec
    return {
        "makespan_ms": round(stats.makespan * 1e3, 2),
        "loads": service.metrics.n_loads,
        "hit_rate": round(service.metrics.hit_rate, 3),
        "boards_used": sum(1 for x in busy if x > 0),
        "useful": round(stats.useful_fraction, 3),
    }


def test_e17_multi_board(benchmark):
    counts = [1, 2, 3, 4]
    result = benchmark.pedantic(
        lambda: sweep("boards", counts, run_point), rounds=1, iterations=1
    )
    emit("e17_multi_board", format_table(
        result.rows,
        title="E17: one virtual FPGA over N physical boards "
              f"({N_CONFIGS} configurations, 8 tasks)",
    ))
    makespans = result.column("makespan_ms")
    loads = result.column("loads")
    # Shape 1: more boards never hurt, and help substantially early.
    assert monotone_nonincreasing(makespans, slack=0.02)
    assert makespans[1] < makespans[0] * 0.75
    # Shape 2: downloads fall as configurations get their own homes; with
    # a board per configuration only the cold loads remain.
    assert monotone_nonincreasing(loads)
    assert loads[-1] == N_CONFIGS
    # Shape 3: all boards participate once they exist.
    assert result.rows[-1]["boards_used"] == 4
