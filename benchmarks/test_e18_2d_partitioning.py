"""E18 — 1-D column partitions vs 2-D rectangular zones (extension).

The paper's variable partitioning is one-dimensional, matching the
frame-per-column configuration hardware of its day; later systems
(including today's research OSes for FPGAs) allocate 2-D rectangles.
This ablation quantifies what the second dimension buys on the same
device and workload.

Square circuits on a square device: a w×h circuit in a column layout
claims w *full-height* columns (internal fragmentation = w×(H−h)); the
2-D layout packs rows.  Expected shape: the rect layout keeps more
circuits resident simultaneously, so it evicts less, downloads less and
finishes sooner — and the gap grows as circuits get shorter relative to
the device.
"""

import pytest
from _harness import emit, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import uniform_workload

CP = 25e-9
N_CONFIGS = 8


def run_rect_workload(circuit_height: int, layout: str, **extra_kw):
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    names = []
    for i in range(N_CONFIGS):
        reg.register_synthetic(
            f"c{i}", 4, circuit_height, critical_path=CP
        )
        names.append(f"c{i}")
    tasks = uniform_workload(
        names, n_tasks=8, ops_per_task=4, cpu_burst=0.5e-3,
        cycles=120_000, seed=29,
    )
    return run_system(
        reg, tasks, "variable", layout=layout, gc="compact",
        hold_mode="op", **extra_kw,
    )


def run_point(circuit_height: int):
    row = {}
    for layout in ("columns", "rect"):
        stats, service = run_rect_workload(circuit_height, layout)
        row[f"{layout}_ms"] = round(stats.makespan * 1e3, 2)
        row[f"{layout}_loads"] = service.metrics.n_loads
        row[f"{layout}_resident"] = len(service.residents)
    row["speedup"] = round(row["columns_ms"] / row["rect_ms"], 2)
    return row


def test_e18_2d_partitioning(benchmark):
    heights = [12, 8, 6, 4]
    result = benchmark.pedantic(
        lambda: sweep("circuit_height", heights, run_point),
        rounds=1, iterations=1,
    )
    emit("e18_2d_partitioning", format_table(
        result.rows,
        title="E18: column vs rectangular variable partitions "
              f"({N_CONFIGS} circuits of 4xH on a 12x12 device)",
    ))
    by_h = {r["circuit_height"]: r for r in result.rows}
    # Shape 1: full-height circuits tie (the layouts coincide).
    assert by_h[12]["speedup"] == pytest.approx(1.0, abs=0.05)
    # Shape 2: short circuits strongly favour 2-D.
    assert by_h[4]["speedup"] > 1.5
    assert by_h[4]["rect_loads"] < by_h[4]["columns_loads"]
    # Shape 3: the 2-D layout keeps more circuits resident.
    assert by_h[4]["rect_resident"] > by_h[4]["columns_resident"]


def test_e18_placement_strategies(benchmark):
    """2-D placement-engine cross-product on the short-circuit point
    (height 4 of 12), where packing decisions matter most."""
    strategies = ["bottom-left", "best-fit", "skyline"]

    def run_one(placement: str):
        stats, service = run_rect_workload(4, "rect",
                                           placement=placement)
        return {
            "makespan_ms": round(stats.makespan * 1e3, 2),
            "loads": service.metrics.n_loads,
            "resident": len(service.residents),
            "fragmentation": round(service.layout.fragmentation, 3),
        }

    result = benchmark.pedantic(
        lambda: sweep("placement", strategies, run_one),
        rounds=1, iterations=1,
    )
    base_stats, base_service = run_rect_workload(4, "rect")
    emit("e18_placement", format_table(
        result.rows,
        title="E18b: 2-D placement strategies, variable partitions "
              f"({N_CONFIGS} circuits of 4x4 on a 12x12 device)",
    ))
    by = {r["placement"]: r for r in result.rows}
    # The engine default (bottom-left) reproduces the unparameterized run.
    assert by["bottom-left"]["loads"] == base_service.metrics.n_loads
    assert by["bottom-left"]["makespan_ms"] == pytest.approx(
        round(base_stats.makespan * 1e3, 2)
    )
    # Every strategy completes the workload with multiple residents.
    for row in result.rows:
        assert row["loads"] >= N_CONFIGS
        assert row["resident"] > 1

