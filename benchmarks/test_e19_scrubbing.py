"""E19 — periodic configuration testing and diagnosis (paper §5).

Claim: embedded systems benefit from running "periodic system testing and
diagnosis" on the FPGA.  We apply it to the configuration memory itself:
seeded random configuration upsets hit a device with resident circuits; a
scrubber reads the frames back every ``period`` and reloads corrupted
circuits.

Sweeping the scrub period charts the classic dependability trade-off:
short periods bound the corruption exposure window tightly but burn
configuration-port bandwidth; long periods are cheap but leave circuits
corrupted for a long time.  Expected shape: mean exposure grows ~linearly
with the period (≈ period/2 plus detection latency), while scrub overhead
falls as 1/period.
"""

from _harness import emit, make_auditor, monotone_nondecreasing, monotone_nonincreasing

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry, Scrubber, UpsetInjector
from repro.device import Fpga, get_family
from repro.sim import Simulator
from repro.telemetry import EventBus

HORIZON = 2.0          # simulated seconds
UPSET_INTERVAL = 20e-3  # mean time between upsets


def run_point(period_ms: float):
    period = period_ms * 1e-3
    sim = Simulator()
    arch = get_family("VF8")
    reg = ConfigRegistry(arch)
    fpga = Fpga(arch)
    for i, name in enumerate(["a", "b"]):
        entry = reg.register_synthetic(name, 3, arch.height, n_state_bits=4)
        fpga.load(name, entry.bitstream.anchored_at(3 * i, 0))
    # Strict audit of the device-port stream: every repair's unload +
    # reload must serialize on the configuration port (the scrubber
    # installs the device telemetry hook when given a bus).
    bus = EventBus()
    auditor = make_auditor(bus, device_port=True)
    inj = UpsetInjector(sim, fpga, mean_interval=UPSET_INTERVAL, seed=31,
                        stop_after=HORIZON * 0.9, bus=bus)
    scrub = Scrubber(sim, fpga, period=period, injector=inj,
                     stop_after=HORIZON, bus=bus)
    try:
        sim.run()
    finally:
        if auditor is not None:
            auditor.finish()
    exposures = [r.exposure for r in inj.records if r.exposure is not None]
    hits = [r for r in inj.records if r.handle is not None]
    return {
        "upsets_on_circuits": len(hits),
        "repairs": scrub.n_repairs,
        "mean_exposure_ms": round(
            sum(exposures) / len(exposures) * 1e3, 2
        ) if exposures else None,
        "scrub_overhead": round(scrub.scrub_time_total / HORIZON, 4),
    }


def test_e19_scrubbing(benchmark):
    periods = [2.0, 8.0, 32.0, 128.0]
    result = benchmark.pedantic(
        lambda: sweep("period_ms", periods, run_point), rounds=1, iterations=1
    )
    emit("e19_scrubbing", format_table(
        result.rows,
        title="E19: configuration scrubbing period sweep "
              f"(mean upset interval {UPSET_INTERVAL * 1e3:.0f} ms)",
    ))
    exposure = result.column("mean_exposure_ms")
    overhead = result.column("scrub_overhead")
    # Shape: exposure grows with the period, overhead shrinks.
    assert monotone_nondecreasing(exposure, slack=0.10)
    assert monotone_nonincreasing(overhead, slack=0.01)
    assert exposure[-1] > 5 * exposure[0]
    assert overhead[0] > 5 * overhead[-1]
    # Everything that was hit eventually gets repaired (scrub keeps up).
    first = result.rows[0]
    assert first["repairs"] >= 1
