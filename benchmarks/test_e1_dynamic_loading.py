"""E1 — dynamic-loading feasibility vs configuration time (paper §2/§3).

Claim: "the applicability of dynamic loading is limited by the time
required to physically download the FPGA configuration … changing the
configuration upon explicit request is feasible if it is required not too
often with respect to the time left to the other application activities."

We sweep the configuration port's serial rate over two decades, keeping
the workload fixed (alternating configurations, so every operation needs a
download).  The independent variable is reported as the ratio of one
download to one operation's compute time; the useful-compute fraction must
collapse as the ratio passes 1.
"""

from _harness import emit, monotone_nonincreasing, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import uniform_workload

CYCLES = 200_000
CP = 25e-9  # synthetic circuit clock period
OP_SECONDS = CYCLES * CP


def run_point(serial_rate: float):
    arch = get_family("VF12").scaled(
        serial_rate=serial_rate, readback_rate=serial_rate
    )
    registry = ConfigRegistry(arch)
    registry.register_synthetic("f1", 6, arch.height, critical_path=CP)
    registry.register_synthetic("f2", 6, arch.height, critical_path=CP)
    # A single task alternating between two configurations isolates the
    # download overhead from queueing effects: every op needs a download.
    tasks = uniform_workload(
        ["f1", "f2"], n_tasks=1, ops_per_task=12,
        cpu_burst=1e-3, cycles=CYCLES, seed=3,
    )
    program = tasks[0].program
    # Interleave the two configs within the one task.
    from repro.osim import FpgaOp
    for i, step in enumerate(program):
        if isinstance(step, FpgaOp):
            program[i] = FpgaOp("f1" if (i // 2) % 2 == 0 else "f2",
                                step.cycles)
    tasks[0].configs = ["f1", "f2"]
    stats, service = run_system(registry, tasks, "dynamic")
    load_seconds = service.metrics.load_time / max(1, service.metrics.n_loads)
    return {
        "load/op ratio": round(load_seconds / OP_SECONDS, 3),
        "useful": round(stats.useful_fraction, 4),
        "makespan_ms": round(stats.makespan * 1e3, 2),
        "loads": service.metrics.n_loads,
    }


def run_load_mode(load_mode: str, serial_rate: float = 4e6):
    """The alternating-configuration workload at the knee of the sweep,
    under one reconfiguration engine.  The circuits carry flip-flop
    columns so the delta engine diffs real content."""
    arch = get_family("VF12").scaled(
        serial_rate=serial_rate, readback_rate=serial_rate
    )
    registry = ConfigRegistry(arch)
    registry.register_synthetic("f1", 6, arch.height, n_state_bits=8,
                                critical_path=CP)
    registry.register_synthetic("f2", 6, arch.height, n_state_bits=8,
                                critical_path=CP)
    tasks = uniform_workload(
        ["f1", "f2"], n_tasks=1, ops_per_task=12,
        cpu_burst=1e-3, cycles=CYCLES, seed=3,
    )
    from repro.osim import FpgaOp
    program = tasks[0].program
    for i, step in enumerate(program):
        if isinstance(step, FpgaOp):
            program[i] = FpgaOp("f1" if (i // 2) % 2 == 0 else "f2",
                                step.cycles)
    tasks[0].configs = ["f1", "f2"]
    stats, service = run_system(registry, tasks, "dynamic",
                                load_mode=load_mode)
    return {
        "loads": service.metrics.n_loads,
        "frames_written": service.metrics.frames_written,
        "port_ms": round(service.fpga.port_busy_time * 1e3, 2),
        "useful": round(stats.useful_fraction, 4),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }


def test_e1_load_modes(benchmark):
    """E1b: the delta engine moves the feasibility knee — the same
    alternating workload wastes less of its time on downloads."""
    modes = ["full", "delta", "auto"]
    result = benchmark.pedantic(
        lambda: sweep("load_mode", modes, run_load_mode),
        rounds=1, iterations=1,
    )
    emit("e1_load_modes", format_table(
        result.rows,
        title="E1b: reconfiguration engine on the alternating workload "
              "(serial rate 4 MHz — the knee of the E1 sweep)",
    ))
    by = {r["load_mode"]: r for r in result.rows}
    assert by["delta"]["loads"] == by["full"]["loads"]
    assert by["delta"]["port_ms"] < by["full"]["port_ms"]
    assert by["auto"]["port_ms"] <= by["full"]["port_ms"] + 1e-9
    # Less port time, more useful compute: the paper's feasibility
    # argument, now a function of the engine.
    assert by["delta"]["useful"] > by["full"]["useful"]


def run_fabric_sched(fabric_sched: str, serial_rate: float = 4e6):
    """E1c workload: two stateful tasks time-slicing one fabric.  Every
    quantum boundary offers a switch whose bill (victim reload + state
    movement) the fabric engine may decline."""
    from repro.osim import FpgaOp, Task

    arch = get_family("VF12").scaled(
        serial_rate=serial_rate, readback_rate=serial_rate
    )
    registry = ConfigRegistry(arch)
    for i in range(2):
        registry.register_synthetic(f"f{i}", 6, arch.height,
                                    n_state_bits=8, critical_path=CP)
    tasks = [
        Task(f"t{i}", [FpgaOp(f"f{i}", 2 * CYCLES)] * 2, arrival=i * 1e-4)
        for i in range(2)
    ]
    stats, service = run_system(
        registry, tasks, "dynamic", preemption="save-restore",
        fpga_time_slice=2e-3, fabric_sched=fabric_sched,
    )
    return {
        "loads": service.metrics.n_loads,
        "preemptions": service.metrics.n_preemptions,
        "port_ms": round(service.fpga.port_busy_time * 1e3, 2),
        "makespan_ms": round(stats.makespan * 1e3, 2),
        "useful": round(stats.useful_fraction, 4),
    }


def test_e1_fabric_schedulers(benchmark):
    """E1c: the cost-aware fabric engine declines switches whose
    reconfiguration + state bill exceeds the fabric time they buy —
    strictly less configuration-port traffic on the same workload."""
    result = benchmark.pedantic(
        lambda: sweep("fabric_sched", ["fixed-quantum", "cost-aware"],
                      run_fabric_sched),
        rounds=1, iterations=1,
    )
    emit("e1_fabric_schedulers", format_table(
        result.rows,
        title="E1c: fabric scheduling engine on a time-sliced stateful "
              "workload (2 ms fabric quantum, save-restore preemption)",
    ))
    by = {r["fabric_sched"]: r for r in result.rows}
    # The engine only ever declines switches, never invents them.
    assert (by["cost-aware"]["preemptions"]
            <= by["fixed-quantum"]["preemptions"])
    # The point of the engine: strictly less config-port time ...
    assert by["cost-aware"]["port_ms"] < by["fixed-quantum"]["port_ms"]
    # ... without giving the saved time back in makespan.
    assert (by["cost-aware"]["makespan_ms"]
            <= by["fixed-quantum"]["makespan_ms"])


def test_e1_dynamic_loading(benchmark):
    rates = [64e6, 16e6, 4e6, 1e6, 0.25e6]
    result = benchmark.pedantic(
        lambda: sweep("serial_rate", rates, run_point), rounds=1, iterations=1
    )
    emit("e1_dynamic_loading", format_table(
        result.rows,
        title="E1: dynamic loading vs configuration speed "
              f"(op compute = {OP_SECONDS * 1e3:.1f} ms)",
    ))
    useful = result.column("useful")
    ratios = result.column("load/op ratio")
    # Shape: useful fraction collapses monotonically as downloads slow.
    assert monotone_nonincreasing(useful, slack=0.02)
    assert useful[0] > 0.6, "fast port should be dominated by compute"
    assert useful[-1] < 0.15, "slow port should be dominated by configuration"
    # The knee: once a download costs about one op, usefulness < 50%.
    for ratio, u in zip(ratios, useful):
        if ratio >= 1.0:
            assert u < 0.5
