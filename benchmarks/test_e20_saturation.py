"""E20 — saturation sweep: knee point and goodput under an SLO.

The management policies so far were compared at a fixed workload; this
experiment asks the capacity question a multi-tenant deployment needs
answered first: *at what offered load does each policy fall over, and
where does the latency go when it does?*

An open-loop arrival stream (one single-operation task every
``1/rate`` seconds, configurations round-robin over three circuits
whose widths deliberately exceed the device, so reconfiguration
traffic is part of the service path) is swept across arrival rates for
three policies.  Every point runs with the full PR 8 observability
stack attached through the harness ``subscribe`` hook — an
:class:`~repro.telemetry.SloEngine` holding a p99 latency objective
and a :class:`~repro.telemetry.QueueingDecomposition` splitting every
operation into queue / reconfig / service stage time.

Per policy, the sweep reduces to the ``saturation`` summary block that
``repro bench-diff`` gates against the committed baseline: the knee of
the p99-vs-rate curve (:func:`repro.analysis.knee_point`), the
saturated throughput, the maximum goodput achieved while still
honoring the SLO, the stage shares at the saturated point, and the
number of SLO breaches over the whole sweep.  The shape assertions are
the queueing-theory sanity checks: tails rise with offered load,
throughput saturates, and the queue stage — not the service stage —
is what grows past the knee.
"""

from _harness import emit, record_run, run_system

from repro.analysis import format_table, knee_point, max_goodput_under_slo
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import FpgaOp, Task
from repro.telemetry import (
    QueueingDecomposition,
    SloEngine,
    SloObjective,
)

CYCLES = 40_000
CP = 25e-9                      # synthetic circuit clock period
OP_SECONDS = CYCLES * CP        # 1 ms of useful fabric time per op
SERIAL_RATE = 4e6               # the knee of the E1 feasibility sweep
SLO_P99 = 10e-3                 # the objective every point is held to
N_TASKS = 48
RATES = [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0]   # offered ops/sec

POLICIES = [
    ("dynamic", {}),
    ("fixed", {"n_partitions": 2}),
    ("variable", {"gc": "merge"}),
]


def build_registry() -> ConfigRegistry:
    arch = get_family("VF12").scaled(
        serial_rate=SERIAL_RATE, readback_rate=SERIAL_RATE
    )
    registry = ConfigRegistry(arch)
    # Three width-5 circuits on a 12-column device: any two fit, all
    # three do not — steady-state faults keep the reconfig stage live.
    for i in range(3):
        registry.register_synthetic(f"f{i}", 5, arch.height,
                                    critical_path=CP)
    return registry


def open_loop_tasks(rate: float):
    """One single-op task every ``1/rate`` seconds, configs round-robin."""
    return [
        Task(f"t{i}", [FpgaOp(f"f{i % 3}", CYCLES)], arrival=i / rate)
        for i in range(N_TASKS)
    ]


def run_point(policy: str, policy_kw: dict, rate: float):
    """One operating point: offered rate -> latency/throughput/stages."""
    engine = SloEngine([SloObjective(name="p99-slo", latency=SLO_P99,
                                     percentile=0.99, min_samples=4)])
    decomp = QueueingDecomposition()

    def subscribe(bus):
        bus.subscribe_all(engine)
        bus.subscribe_all(decomp)
        engine.bus = bus            # republish breaches onto this run's bus

    stats, _service = run_system(
        build_registry(), open_loop_tasks(rate), policy,
        subscribe=subscribe, **policy_kw,
    )
    engine.finish()

    spans = decomp.spans.spans
    assert len(spans) == N_TASKS, "every operation must complete"
    durations = sorted(s.duration for s in spans)
    p99 = durations[max(0, -(-99 * len(durations) // 100) - 1)]
    throughput = len(spans) / stats.makespan
    good_ops = sum(1 for d in durations if d <= SLO_P99)
    return {
        "rate": rate,
        "throughput": throughput,
        "goodput": good_ops / stats.makespan,
        "p99": p99,
        "shares": decomp.stage_shares(),
        "n_breaches": len(engine.breaches),
    }


def sweep_policy(policy: str, policy_kw: dict):
    points = [run_point(policy, policy_kw, rate) for rate in RATES]
    rates = [p["rate"] for p in points]
    p99s = [p["p99"] for p in points]
    knee = knee_point(rates, p99s)
    saturated = points[-1]
    summary = {
        "knee_rate": knee.x if knee else 0.0,
        "knee_p99": knee.y if knee else 0.0,
        "saturated_throughput": saturated["throughput"],
        "max_goodput_under_slo": max_goodput_under_slo(
            rates, [p["goodput"] for p in points], p99s, SLO_P99
        ),
        "stage_share": saturated["shares"],
        "n_breaches": sum(p["n_breaches"] for p in points),
    }
    record_run({
        "policy": f"saturation:{policy}",
        "policy_kw": {k: v for k, v in sorted(policy_kw.items())},
        "saturation": summary,
    })
    return points, summary


def test_e20_saturation(benchmark):
    results = benchmark.pedantic(
        lambda: {name: sweep_policy(name, kw) for name, kw in POLICIES},
        rounds=1, iterations=1,
    )

    rows = []
    for name, (points, summary) in results.items():
        for p in points:
            rows.append({
                "policy": name,
                "rate": f"{p['rate']:g}",
                "throughput": f"{p['throughput']:.1f}",
                "goodput": f"{p['goodput']:.1f}",
                "p99_ms": f"{p['p99'] * 1e3:.2f}",
                "queue%": f"{p['shares']['queue'] * 100:.1f}",
                "reconfig%": f"{p['shares']['reconfig'] * 100:.1f}",
                "service%": f"{p['shares']['service'] * 100:.1f}",
                "breaches": p["n_breaches"],
            })
    knee_rows = [
        {
            "policy": name,
            "knee_rate": f"{summary['knee_rate']:g}",
            "knee_p99_ms": f"{summary['knee_p99'] * 1e3:.2f}",
            "sat_throughput": f"{summary['saturated_throughput']:.1f}",
            "max_goodput@SLO": f"{summary['max_goodput_under_slo']:.1f}",
        }
        for name, (_points, summary) in results.items()
    ]
    emit("e20_saturation", format_table(
        rows,
        title=f"E20: open-loop saturation sweep ({N_TASKS} ops/point, "
              f"SLO p99 <= {SLO_P99 * 1e3:g} ms)",
    ) + "\n\n" + format_table(
        knee_rows, title="E20: knee points and goodput ceilings",
    ))

    for name, (points, summary) in results.items():
        p99s = [p["p99"] for p in points]
        throughputs = [p["throughput"] for p in points]
        # Tails rise with offered load: the heaviest point is far above
        # the lightest.
        assert p99s[-1] > p99s[0] * 2, name
        # Throughput saturates: at the heaviest point the completion
        # rate falls well short of the offered rate.
        assert throughputs[-1] < RATES[-1] * 0.8, name
        # The curve has a knee and the sweep brackets it.
        assert summary["knee_rate"] > 0.0, name
        assert RATES[0] < summary["knee_rate"] < RATES[-1], name
        # Past the knee the growth is queueing, not service: the queue
        # stage share at saturation dominates its unloaded share.
        assert points[-1]["shares"]["queue"] > points[0]["shares"]["queue"], \
            name
        # Overload breaches the objective; the breach rode the bus.
        assert summary["n_breaches"] > 0, name
