"""E2 — the merged "trivial solution" vs dynamic loading (paper §3).

Claim: "If the FPGA is large enough to accommodate contemporaneously all
circuits required by all applications, a trivial solution is to merge all
circuits into only one … The general solution is indeed dynamic loading."

Sweep the device size for a fixed four-circuit mix.  Expected shape: on
devices that hold the whole mix, the merged baseline needs zero
steady-state reconfigurations and dynamic loading converges toward it
(residency hits); below the threshold the merged system is simply
inadmissible while dynamic loading keeps working at a reconfiguration
cost.
"""

from _harness import emit, run_system

from repro.analysis import format_table, sweep
from repro.core import CapacityError, ConfigRegistry
from repro.device import get_family
from repro.osim import uniform_workload

CP = 25e-9
MIX = [("f1", 6), ("f2", 6), ("f3", 5), ("f4", 5)]  # widths, full height


def make_registry(arch):
    reg = ConfigRegistry(arch)
    for name, w in MIX:
        reg.register_synthetic(name, min(w, arch.width), arch.height,
                               critical_path=CP)
    return reg


def make_tasks(names):
    return uniform_workload(
        names, n_tasks=8, ops_per_task=4, cpu_burst=0.5e-3,
        cycles=100_000, seed=9,
    )


def run_point(family: str):
    arch = get_family(family)
    row = {"device_clbs": arch.n_clbs}
    reg = make_registry(arch)
    names = reg.names()
    try:
        stats, service = run_system(reg, make_tasks(names), "merged")
        row["merged"] = f"{stats.makespan * 1e3:.1f}ms"
        row["merged_reconfigs"] = stats.n_reconfigs
    except CapacityError:
        row["merged"] = "DOES NOT FIT"
        row["merged_reconfigs"] = "-"
    reg2 = make_registry(arch)
    stats, service = run_system(reg2, make_tasks(names), "dynamic")
    row["dynamic"] = f"{stats.makespan * 1e3:.1f}ms"
    row["dynamic_loads"] = service.metrics.n_loads
    row["dynamic_hit_rate"] = round(service.metrics.hit_rate, 3)
    return row


def test_e2_merged_vs_dynamic(benchmark):
    families = ["VF32", "VF24", "VF16", "VF12", "VF8"]
    result = benchmark.pedantic(
        lambda: sweep("family", families, run_point), rounds=1, iterations=1
    )
    emit("e2_merged_vs_dynamic", format_table(
        result.rows,
        title="E2: merged-resident baseline vs dynamic loading, device sweep "
              "(mix needs 22 columns)",
    ))
    merged = result.column("merged")
    # Shape: merged admissible only while the device holds the mix.
    assert merged[0] != "DOES NOT FIT"          # VF32 holds everything
    assert "DOES NOT FIT" in merged             # some device is too small
    # Once inadmissible, it stays inadmissible as devices shrink.
    first_fail = merged.index("DOES NOT FIT")
    assert all(m == "DOES NOT FIT" for m in merged[first_fail:])
    # Dynamic loading works on every device in the sweep.
    assert all(isinstance(r["dynamic_loads"], int) for r in result.rows)
    # On the big device the merged baseline needs no task-time reconfigs.
    assert result.rows[0]["merged_reconfigs"] == 0
