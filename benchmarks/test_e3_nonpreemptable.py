"""E3 — the non-preemptable FPGA destroys task parallelism (paper §4).

Claim: "Parallelism of the execution of application tasks may be greatly
reduced, even implicitly forcing the scheduling to a strictly FIFO
policy."

Fixed workload of FPGA-heavy tasks under a round-robin CPU scheduler;
three managers.  Expected shape: under the non-preemptable manager the
FPGA completions come out in strict arrival order and the makespan
approaches the serial sum of service times; partitioning restores overlap.
"""

from _harness import emit, run_system

from repro.analysis import format_table
from repro.core import ConfigRegistry, make_cpu_scheduler
from repro.device import get_family
from repro.osim import CpuBurst, FpgaOp, Task

CP = 25e-9
CYCLES = 400_000
N_TASKS = 6


def make_registry():
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    for i in range(3):
        reg.register_synthetic(f"f{i}", 4, arch.height, critical_path=CP)
    return reg


def make_tasks():
    return [
        Task(f"t{i}", [FpgaOp(f"f{i % 3}", CYCLES)], arrival=i * 1e-4)
        for i in range(N_TASKS)
    ]


def completion_order(tasks):
    return [
        name for _done, name in sorted(
            (t.accounting.completion, t.name) for t in tasks
        )
    ]


def test_e3_nonpreemptable(benchmark):
    def run_all():
        rows = []
        orders = {}
        for policy, kw in [
            ("nonpreemptable", {}),
            ("dynamic", {}),
            ("fixed", {"n_partitions": 3}),
        ]:
            reg = make_registry()
            tasks = make_tasks()
            stats, service = run_system(reg, tasks, policy, **kw)
            rows.append({
                "policy": policy,
                "makespan_ms": round(stats.makespan * 1e3, 2),
                "mean_turnaround_ms": round(stats.mean_turnaround * 1e3, 2),
                "loads": service.metrics.n_loads,
                "max_overlap": "yes" if policy == "fixed" else "no",
            })
            orders[policy] = completion_order(tasks)
        return rows, orders

    rows, orders = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("e3_nonpreemptable", format_table(
        rows, title="E3: non-preemptable FPGA vs alternatives "
        f"({N_TASKS} tasks x {CYCLES * CP * 1e3:.0f} ms ops)",
    ))
    # Shape 1: non-preemptable completes in strict FIFO (arrival) order.
    assert orders["nonpreemptable"] == [f"t{i}" for i in range(N_TASKS)]
    # Shape 2: its makespan is at least the serial sum of the exec times.
    serial_exec = N_TASKS * CYCLES * CP
    by_policy = {r["policy"]: r for r in rows}
    assert by_policy["nonpreemptable"]["makespan_ms"] >= serial_exec * 1e3
    # Shape 3: partitioning overlaps executions and beats both.
    assert (by_policy["fixed"]["makespan_ms"]
            < by_policy["nonpreemptable"]["makespan_ms"])
    assert (by_policy["fixed"]["makespan_ms"]
            < by_policy["dynamic"]["makespan_ms"])


# -- E3b: the CPU scheduling engine against deadlines -----------------------

SERVICE_T = 14e-3  # ≈ one task's full service time on this system


def make_deadline_tasks():
    """Arrival order is the *reverse* of urgency: the later a task
    arrives, the tighter its deadline.  The set is feasible when served
    in deadline order (each deadline sits one service time past the
    task's slot in that order) but infeasible in arrival order."""
    tasks = []
    for i in range(N_TASKS):
        if i == 0:
            deadline = (N_TASKS + 1) * SERVICE_T
        else:
            deadline = (N_TASKS + 1 - i) * SERVICE_T + 4e-3
        tasks.append(Task(
            f"t{i}",
            [CpuBurst(8e-3), FpgaOp(f"f{i % 3}", 4_000)],
            arrival=i * 1e-4,
            priority=N_TASKS - 1 - i,  # urgency mirrors the deadline
            deadline=deadline,
        ))
    return tasks


def test_e3_cpu_schedulers(benchmark):
    """E3b: deadline- and starvation-aware CPU engines against the
    seed policies on a deadline-reversed workload."""
    names = ["fifo", "rr", "priority", "edf", "aged-priority"]

    def run_all():
        rows = []
        for name in names:
            reg = make_registry()
            tasks = make_deadline_tasks()
            stats, service = run_system(
                reg, tasks, "dynamic",
                scheduler=make_cpu_scheduler(name),
            )
            rows.append({
                "cpu_sched": name,
                "deadline_misses": service.metrics.n_deadline_misses,
                "makespan_ms": round(stats.makespan * 1e3, 2),
                "mean_turnaround_ms": round(stats.mean_turnaround * 1e3, 2),
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("e3_cpu_schedulers", format_table(
        rows, title="E3b: CPU scheduling engine vs deadline misses "
        f"({N_TASKS} tasks, urgency reversed from arrival order)",
    ))
    by = {r["cpu_sched"]: r for r in rows}
    # Deadline awareness pays: EDF serves the feasible set, FIFO's
    # arrival order cannot.
    assert by["edf"]["deadline_misses"] < by["fifo"]["deadline_misses"]
    # Aging keeps priority's wins without starving anyone.
    assert (by["aged-priority"]["deadline_misses"]
            < by["fifo"]["deadline_misses"])
    assert by["edf"]["deadline_misses"] == 0
    # Every engine drives the same total work to completion.
    makespans = {r["makespan_ms"] for r in rows}
    assert max(makespans) <= min(makespans) * 1.25
