"""E3 — the non-preemptable FPGA destroys task parallelism (paper §4).

Claim: "Parallelism of the execution of application tasks may be greatly
reduced, even implicitly forcing the scheduling to a strictly FIFO
policy."

Fixed workload of FPGA-heavy tasks under a round-robin CPU scheduler;
three managers.  Expected shape: under the non-preemptable manager the
FPGA completions come out in strict arrival order and the makespan
approaches the serial sum of service times; partitioning restores overlap.
"""

from _harness import emit, run_system

from repro.analysis import format_table
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import FpgaOp, Task

CP = 25e-9
CYCLES = 400_000
N_TASKS = 6


def make_registry():
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    for i in range(3):
        reg.register_synthetic(f"f{i}", 4, arch.height, critical_path=CP)
    return reg


def make_tasks():
    return [
        Task(f"t{i}", [FpgaOp(f"f{i % 3}", CYCLES)], arrival=i * 1e-4)
        for i in range(N_TASKS)
    ]


def completion_order(tasks):
    return [
        name for _done, name in sorted(
            (t.accounting.completion, t.name) for t in tasks
        )
    ]


def test_e3_nonpreemptable(benchmark):
    def run_all():
        rows = []
        orders = {}
        for policy, kw in [
            ("nonpreemptable", {}),
            ("dynamic", {}),
            ("fixed", {"n_partitions": 3}),
        ]:
            reg = make_registry()
            tasks = make_tasks()
            stats, service = run_system(reg, tasks, policy, **kw)
            rows.append({
                "policy": policy,
                "makespan_ms": round(stats.makespan * 1e3, 2),
                "mean_turnaround_ms": round(stats.mean_turnaround * 1e3, 2),
                "loads": service.metrics.n_loads,
                "max_overlap": "yes" if policy == "fixed" else "no",
            })
            orders[policy] = completion_order(tasks)
        return rows, orders

    rows, orders = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("e3_nonpreemptable", format_table(
        rows, title="E3: non-preemptable FPGA vs alternatives "
        f"({N_TASKS} tasks x {CYCLES * CP * 1e3:.0f} ms ops)",
    ))
    # Shape 1: non-preemptable completes in strict FIFO (arrival) order.
    assert orders["nonpreemptable"] == [f"t{i}" for i in range(N_TASKS)]
    # Shape 2: its makespan is at least the serial sum of the exec times.
    serial_exec = N_TASKS * CYCLES * CP
    by_policy = {r["policy"]: r for r in rows}
    assert by_policy["nonpreemptable"]["makespan_ms"] >= serial_exec * 1e3
    # Shape 3: partitioning overlaps executions and beats both.
    assert (by_policy["fixed"]["makespan_ms"]
            < by_policy["nonpreemptable"]["makespan_ms"])
    assert (by_policy["fixed"]["makespan_ms"]
            < by_policy["dynamic"]["makespan_ms"])
