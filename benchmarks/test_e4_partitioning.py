"""E4 — partitioning reduces loading operations (paper §4).

Claim: "partitioning is an effective technique to reduce the number of
loading and, possibly, storing operations and increase the overall time
available for computation without impairing the parallelism in a relevant
way."

Fixed mix of four configurations used round-robin by eight tasks; sweep
the number of fixed partitions 1 → 4.  Expected shape: downloads fall
monotonically with partition count until the working set fits (4), then
the count flattens at the cold-miss floor; useful compute fraction rises.

A second sweep exercises the pluggable victim-selection engine on the
contended two-partition point: every
:class:`~repro.core.policies.ReplacementPolicy` drives the same workload,
with ``lru`` (the engine default) reproducing the seed numbers exactly.
"""

from _harness import emit, monotone_nonincreasing, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import uniform_workload

CP = 25e-9
N_CONFIGS = 4


def run_point(n_partitions: int, **extra_kw):
    arch = get_family("VF16")
    reg = ConfigRegistry(arch)
    names = []
    for i in range(N_CONFIGS):
        reg.register_synthetic(f"f{i}", 4, arch.height, critical_path=CP)
        names.append(f"f{i}")
    tasks = uniform_workload(
        names, n_tasks=8, ops_per_task=5, cpu_burst=0.5e-3,
        cycles=150_000, seed=4,
    )
    stats, service = run_system(
        reg, tasks, "fixed", n_partitions=n_partitions, **extra_kw
    )
    return {
        "loads": service.metrics.n_loads,
        "hit_rate": round(service.metrics.hit_rate, 3),
        "reconfig_ms": round(stats.total_fpga_reconfig * 1e3, 2),
        "useful": round(stats.useful_fraction, 3),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }


def test_e4_partitioning(benchmark):
    counts = [1, 2, 3, 4]
    result = benchmark.pedantic(
        lambda: sweep("partitions", counts, run_point), rounds=1, iterations=1
    )
    emit("e4_partitioning", format_table(
        result.rows,
        title="E4: fixed-partition count sweep "
              f"({N_CONFIGS} configurations, 8 tasks)",
    ))
    loads = result.column("loads")
    useful = result.column("useful")
    # Shape: downloads fall monotonically with partition count …
    assert monotone_nonincreasing(loads)
    # … reach the cold-miss floor once the working set fits …
    assert loads[-1] == N_CONFIGS
    # … and useful compute improves from 1 partition to 4.
    assert useful[-1] > useful[0]
    assert result.rows[-1]["hit_rate"] > 0.8


def test_e4_load_modes(benchmark):
    """E4c: the delta engine on the contended two-partition point.  The
    four configurations alternate inside each partition, so most loads
    rewrite only the frames that actually differ between them."""
    modes = ["full", "delta", "auto"]

    def run_one(load_mode: str):
        arch = get_family("VF16")
        reg = ConfigRegistry(arch)
        names = []
        for i in range(N_CONFIGS):
            reg.register_synthetic(f"f{i}", 4, arch.height,
                                   n_state_bits=2 * (i + 1),
                                   critical_path=CP)
            names.append(f"f{i}")
        tasks = uniform_workload(
            names, n_tasks=8, ops_per_task=5, cpu_burst=0.5e-3,
            cycles=150_000, seed=4,
        )
        stats, service = run_system(reg, tasks, "fixed", n_partitions=2,
                                    load_mode=load_mode)
        return {
            "loads": service.metrics.n_loads,
            "frames_written": service.metrics.frames_written,
            "port_ms": round(service.fpga.port_busy_time * 1e3, 2),
            "useful": round(stats.useful_fraction, 3),
            "makespan_ms": round(stats.makespan * 1e3, 2),
        }

    result = benchmark.pedantic(
        lambda: sweep("load_mode", modes, run_one), rounds=1, iterations=1,
    )
    emit("e4_load_modes", format_table(
        result.rows,
        title="E4c: reconfiguration engine on 2 fixed partitions "
              f"({N_CONFIGS} configurations, 8 tasks)",
    ))
    by = {r["load_mode"]: r for r in result.rows}
    assert by["delta"]["port_ms"] < by["full"]["port_ms"]
    assert by["auto"]["port_ms"] <= by["full"]["port_ms"] + 1e-9
    assert by["delta"]["frames_written"] < by["full"]["frames_written"]


def test_e4_replacement_sweep(benchmark):
    """Victim-selection engine cross-product on the contended point
    (two partitions, four configurations)."""
    policies = ["lru", "mru", "fifo", "clock", "random"]
    result = benchmark.pedantic(
        lambda: sweep(
            "replacement", policies,
            lambda p: run_point(2, replacement=p, replacement_seed=4),
        ),
        rounds=1, iterations=1,
    )
    baseline = run_point(2)  # engine default = lru
    rerun = run_point(2, replacement="random", replacement_seed=4)
    emit("e4_replacement", format_table(
        result.rows,
        title="E4b: replacement engine on 2 fixed partitions "
              f"({N_CONFIGS} configurations, 8 tasks)",
    ))
    def strip(row):  # drop the sweep bookkeeping columns
        return {k: v for k, v in row.items()
                if k not in ("replacement", "outcome")}

    by = {r["replacement"]: r for r in result.rows}
    # The default engine reproduces the seed LRU numbers exactly.
    assert strip(by["lru"]) == baseline
    # Every policy stays within the [cold floor, one-load-per-op] envelope.
    for row in result.rows:
        assert N_CONFIGS <= row["loads"] <= 8 * 5
    # Seeded random is reproducible run to run.
    assert strip(by["random"]) == rerun
