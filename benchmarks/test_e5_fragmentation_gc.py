"""E5 — variable-partition fragmentation and garbage collection (paper §4).

Claim: "a task could remain indefinitely waiting … while such a space may
be actually available even if split in more idle existing partitions.  In
such a case, a garbage-collecting procedure must be introduced to merge —
when necessary — the idle existing partitions … Relocation on partitions
is a time-consuming operation."

Churn workload of mixed-width circuits on a 16-column device, variable
partitioning under three GC modes.  Expected shape: ``gc=none`` starves
(deadlocked run, positive starvation events); ``merge`` completes; with
long-lived holders in the middle, ``compact`` is the one that also keeps
wide requests moving, paying measurable relocation time.
"""

from _harness import emit, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import CpuBurst, DeadlockError, FpgaOp, Task

CP = 25e-9


def make_registry():
    arch = get_family("VF16")
    reg = ConfigRegistry(arch)
    for name, w in [("n3a", 3), ("n3b", 3), ("n4", 4), ("n5", 5), ("w8", 8)]:
        reg.register_synthetic(name, w, arch.height, critical_path=CP)
    return reg


def make_tasks():
    """Churn: narrow circuits come and go; a long holder sits in the
    middle of the timeline; then a wide request arrives."""
    tasks = []
    for i, name in enumerate(["n3a", "n3b", "n4", "n5"]):
        tasks.append(Task(
            f"churn{i}",
            [FpgaOp(name, 50_000), CpuBurst(1e-3), FpgaOp(name, 50_000)],
            arrival=i * 0.5e-3,
        ))
    tasks.append(Task(
        "holder",
        [FpgaOp("n4", 20_000), CpuBurst(0.12), FpgaOp("n4", 20_000)],
        arrival=2.2e-3,
    ))
    tasks.append(Task("wide", [FpgaOp("w8", 80_000)], arrival=3e-2))
    return tasks


def run_point(gc: str):
    reg = make_registry()
    tasks = make_tasks()
    try:
        stats, service = run_system(reg, tasks, "variable", gc=gc)
        return {
            "completed": "yes",
            "makespan_ms": round(stats.makespan * 1e3, 2),
            "starvation_events": service.starvation_events,
            "relocations": service.metrics.n_relocations,
            "gc_state_ms": round(service.metrics.state_time * 1e3, 3),
            "fragmentation": round(service.allocator.fragmentation, 3),
        }
    except DeadlockError:
        raise


def test_e5_fragmentation_gc(benchmark):
    result = benchmark.pedantic(
        lambda: sweep("gc", ["none", "merge", "compact"], run_point,
                      expected_errors=(DeadlockError,)),
        rounds=1, iterations=1,
    )
    emit("e5_fragmentation_gc", format_table(
        result.rows,
        title="E5: variable partitions under churn, GC mode sweep "
              "(16 columns, wide request = 8)",
    ))
    by_gc = {r["gc"]: r for r in result.rows}
    # Shape: without GC the wide task starves -> the run deadlocks.
    assert by_gc["none"]["outcome"] == "DeadlockError"
    # Merging completes the run.
    assert by_gc["merge"]["outcome"] == "ok"
    # Compaction also completes and performs actual relocations.
    assert by_gc["compact"]["outcome"] == "ok"
    assert by_gc["compact"]["relocations"] >= 1
