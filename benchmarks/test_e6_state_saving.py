"""E6 — preempting sequential circuits: save/restore vs rollback (paper §3).

Claim: sequential circuits can only be preempted if their state is
observable and controllable; "the state reading and loading operations
should be as simple and fast as possible in order to minimize the
reactivation time" — otherwise rolling back (losing progress) or refusing
preemption is preferable.

Scenario: the paper's shared "service algorithm" (§3): one sequential
circuit serves every task, so context switches move *state*, never the
configuration — isolating exactly the cost §3 discusses.  A long
background operation shares it with a latency-sensitive periodic task
issuing short operations.  We sweep the background operation's length
under the three §3 policies plus the adaptive hybrid and report (a) when
the background job finishes and (b) how long the periodic task waits.

Expected shape:

* run-to-completion gives the background job its minimum time but makes
  the periodic task wait for the whole operation — the §4 parallelism
  loss;
* rollback keeps the periodic task responsive but re-does lost progress,
  so its background completion time grows super-linearly with op length;
* save/restore pays a fixed state-movement cost per interruption: cheaper
  than rollback once operations are long — a crossover the adaptive
  policy must track.
"""

from _harness import emit, run_system

from repro.analysis import crossover_x, format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import CpuBurst, FpgaOp, Task

CP = 25e-9
SLICE = 5e-3          # fabric quantum
PERIOD = 20e-3        # interferer period
INTR_CYCLES = 20_000  # 0.5 ms


def run_point(cycles: int):
    row = {"bg_op_ms": round(cycles * CP * 1e3, 1)}
    n_intr = max(4, int((cycles * CP * 3) / PERIOD))
    for policy, key in [
        ("run-to-completion", "rtc"),
        ("rollback", "rb"),
        ("save-restore", "sr"),
        ("adaptive", "ad"),
    ]:
        arch = get_family("VF12")
        reg = ConfigRegistry(arch)
        # State concentrated in one column: cheap, fast readback (§3's
        # "as simple and fast as possible").
        reg.register_synthetic("seq", 6, arch.height, n_state_bits=12,
                               critical_path=CP)
        bg = Task("bg", [FpgaOp("seq", cycles)])
        intr = Task(
            "intr",
            [s for _ in range(n_intr)
             for s in (CpuBurst(PERIOD), FpgaOp("seq", INTR_CYCLES))],
            arrival=1e-3,
        )
        stats, service = run_system(
            reg, [bg, intr], "dynamic", preemption=policy,
            fpga_time_slice=SLICE,
        )
        row[f"{key}_bg_ms"] = round(bg.accounting.completion * 1e3, 1)
        row[f"{key}_wait_ms"] = round(
            intr.accounting.fpga_wait_time / n_intr * 1e3, 2
        )
    return row


def test_e6_state_saving(benchmark):
    cycle_counts = [200_000, 800_000, 3_200_000, 12_800_000]
    result = benchmark.pedantic(
        lambda: sweep("cycles", cycle_counts, run_point), rounds=1, iterations=1
    )
    emit("e6_state_saving", format_table(
        result.rows,
        title="E6: preemption policy vs background sequential op length "
              "(periodic 0.5 ms ops every 20 ms; 12 state bits)",
    ))
    ops = result.column("bg_op_ms")
    rb_bg = result.column("rb_bg_ms")
    sr_bg = result.column("sr_bg_ms")
    rtc_wait = result.column("rtc_wait_ms")
    sr_wait = result.column("sr_wait_ms")
    ad_bg = result.column("ad_bg_ms")
    # Shape 1: run-to-completion blocks the periodic task ever longer.
    assert rtc_wait[-1] > rtc_wait[0]
    assert rtc_wait[-1] > 4 * sr_wait[-1]
    # Shape 2: save/restore beats rollback for long background ops.
    assert sr_bg[-1] < rb_bg[-1]
    # Shape 3: there is a rollback/save-restore crossover in op length.
    cross = crossover_x(ops, rb_bg, sr_bg)
    assert cross is not None
    # Shape 4: adaptive tracks the cheaper policy (within 20%).
    for a, r, s in zip(ad_bg, rb_bg, sr_bg):
        assert a <= min(r, s) * 1.2
