"""E7 — overlaying: keep frequent common functions resident (paper §2).

Claim: "overlaying configures part of the FPGA to compute common functions
which are frequently used, while the remaining part is used to download
specific functions which are typically rarely used or mutually exclusive."

Zipf-distributed function popularity over six configurations; sweep how
many of the hottest functions are pinned (0 = pure dynamic loading of one
circuit at a time in the whole array … 3 = three pinned + overlay).
Expected shape: hit rate tracks the Zipf mass of the pinned set, and total
reconfiguration time falls as the resident set grows.
"""

from _harness import emit, monotone_nondecreasing, monotone_nonincreasing, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry
from repro.device import get_family
from repro.osim import zipf_workload

CP = 25e-9
N_CONFIGS = 6
WIDTH = 3  # columns per circuit; device has 16


def make_registry():
    arch = get_family("VF16")
    reg = ConfigRegistry(arch)
    for i in range(N_CONFIGS):
        reg.register_synthetic(f"f{i}", WIDTH, arch.height, critical_path=CP)
    return reg


def make_tasks(names):
    # zipf_workload makes f0 hottest, f5 coldest (s = 1.4).
    return zipf_workload(
        names, n_tasks=6, ops_per_task=10, cpu_burst=0.5e-3,
        cycles=100_000, seed=13, s=1.4,
    )


def run_point(n_pinned: int):
    reg = make_registry()
    names = reg.names()
    tasks = make_tasks(names)
    if n_pinned == 0:
        stats, service = run_system(reg, tasks, "dynamic")
    else:
        stats, service = run_system(
            reg, tasks, "overlay", resident_names=names[:n_pinned]
        )
    return {
        "hit_rate": round(service.metrics.hit_rate, 3),
        "loads": service.metrics.n_loads,
        "reconfig_ms": round(stats.total_fpga_reconfig * 1e3, 2),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }


def test_e7_overlay(benchmark):
    pinned_counts = [0, 1, 2, 3]
    result = benchmark.pedantic(
        lambda: sweep("pinned", pinned_counts, run_point), rounds=1, iterations=1
    )
    emit("e7_overlay", format_table(
        result.rows,
        title="E7: overlay resident-set sweep (Zipf s=1.4 over "
              f"{N_CONFIGS} functions)",
    ))
    hits = result.column("hit_rate")
    reconfig = result.column("reconfig_ms")
    # Shape: hit rate grows with the pinned set, reconfig time falls.
    assert monotone_nondecreasing(hits)
    assert monotone_nonincreasing(reconfig, slack=0.05)
    assert hits[-1] > hits[0] + 0.3
    assert reconfig[-1] < reconfig[0] / 2
