"""E8 — pagination vs segmentation: page size and replacement (paper §2).

Claims: "segmentation decomposes the function … into smaller parts
computing a self-contained sub-function and, as a consequence, having
variable size; pagination partitions the function … into smaller portions
of fixed size."  The classic virtual-memory trade-offs must appear:

* small pages → many faults (per-fault overhead dominates); large pages →
  internal fragmentation (fewer frames, more capacity misses);
* replacement policy matters: on a cyclic sweep larger than the frame
  pool, LRU faults every access while MRU keeps most of the loop
  resident;
* variable-size segments avoid internal fragmentation but pay allocator
  work and external fragmentation.
"""

import numpy as np
from _harness import emit, run_system

from repro.analysis import format_table, sweep
from repro.core import ConfigRegistry, make_paged_circuit, make_segmented_circuit
from repro.device import get_family
from repro.osim import FpgaOp, Task

CP = 25e-9
VIRTUAL_COLUMNS = 24   # the virtual circuit's total width (device: 12)
ACCESSES = 60


def run_page_size(page_width: int):
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    n_pages = VIRTUAL_COLUMNS // page_width
    circ = make_paged_circuit(
        reg, "virt", n_pages=n_pages, page_width=page_width,
        critical_path=CP, pattern="zipf", seed=21,
    )
    tasks = [Task("t", [FpgaOp("virt", ACCESSES)])]
    stats, service = run_system(
        reg, tasks, "paged", circuits=[circ], frame_width=page_width,
        replacement="lru", cycles_per_access=40_000,
    )
    return {
        "n_pages": n_pages,
        "frames": service.n_frames,
        "faults": service.metrics.n_page_faults,
        "fault_rate": round(service.metrics.fault_rate, 3),
        "reconfig_ms": round(stats.total_fpga_reconfig * 1e3, 2),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }


def run_replacement(replacement: str):
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    # Cyclic sweep over 5 pages with only 4 frames: the adversarial case.
    circ = make_paged_circuit(
        reg, "virt", n_pages=5, page_width=3, critical_path=CP,
        pattern="looping", working_set=5, seed=7,
    )
    tasks = [Task("t", [FpgaOp("virt", ACCESSES)])]
    stats, service = run_system(
        reg, tasks, "paged", circuits=[circ], frame_width=3,
        replacement=replacement, cycles_per_access=40_000,
    )
    return {
        "faults": service.metrics.n_page_faults,
        "fault_rate": round(service.metrics.fault_rate, 3),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }


def run_segmented(**extra_kw):
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    # Same 24 virtual columns, but cut along "natural" boundaries.
    circ = make_segmented_circuit(
        reg, "virt", widths=[5, 3, 6, 4, 2, 4], critical_path=CP,
        pattern="zipf", seed=21,
    )
    tasks = [Task("t", [FpgaOp("virt", ACCESSES)])]
    stats, service = run_system(
        reg, tasks, "segmented", circuits=[circ],
        replacement="lru", cycles_per_access=40_000, **extra_kw,
    )
    return {
        "scheme": "segmentation (widths 5,3,6,4,2,4)",
        "faults": service.metrics.n_page_faults,
        "fault_rate": round(service.metrics.fault_rate, 3),
        "reconfig_ms": round(stats.total_fpga_reconfig * 1e3, 2),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }


def test_e8_page_size_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: sweep("page_width", [2, 3, 4, 6], run_page_size),
        rounds=1, iterations=1,
    )
    seg_row = run_segmented()
    table = format_table(
        result.rows,
        title="E8a: page-size sweep (24 virtual columns on a 12-column "
              "device, Zipf accesses, LRU)",
    ) + "\n\n" + format_table([seg_row], title="E8b: segmentation, same "
                              "virtual circuit cut at natural boundaries")
    emit("e8_paging_segmentation", table)
    # Shape: per-fault cost grows with page width (bigger downloads) …
    reconfig = result.column("reconfig_ms")
    faults = result.column("faults")
    per_fault = [r / max(1, f) for r, f in zip(reconfig, faults)]
    assert per_fault[-1] > per_fault[0]
    # … while the *number* of frames shrinks (internal fragmentation):
    assert result.rows[-1]["frames"] < result.rows[0]["frames"]
    # Segmentation loads exactly the columns each sub-function needs, so
    # its per-fault download cost beats the largest fixed page (which
    # carries internal fragmentation on every fault) — while its *fault
    # count* may exceed pagination's: variable sizes suffer external
    # fragmentation instead (the paper's trade-off, both directions).
    seg_per_fault = seg_row["reconfig_ms"] / max(1, seg_row["faults"])
    assert seg_per_fault < per_fault[-1]
    assert seg_row["faults"] <= ACCESSES


def test_e8_replacement_policies(benchmark):
    policies = ["fifo", "lru", "mru", "clock", "random"]
    result = benchmark.pedantic(
        lambda: sweep("policy", policies, run_replacement),
        rounds=1, iterations=1,
    )
    emit("e8_replacement", format_table(
        result.rows,
        title="E8c: replacement policy on a cyclic sweep of 5 pages over "
              "4 frames",
    ))
    by = {r["policy"]: r for r in result.rows}
    # The classic result: LRU degenerates on the loop, MRU keeps it.
    assert by["mru"]["faults"] * 2 < by["lru"]["faults"]
    assert by["mru"]["makespan_ms"] < by["lru"]["makespan_ms"]


def run_load_mode(load_mode: str):
    """The paging workload under one reconfiguration engine.  Pages carry
    real flip-flop columns so delta has honest (non-zero) frames to diff."""
    arch = get_family("VF12")
    reg = ConfigRegistry(arch)
    circ = make_paged_circuit(
        reg, "virt", n_pages=8, page_width=3, state_bits_per_page=4,
        critical_path=CP, pattern="zipf", seed=21,
    )
    tasks = [Task("t", [FpgaOp("virt", ACCESSES)])]
    stats, service = run_system(
        reg, tasks, "paged", circuits=[circ], frame_width=3,
        replacement="lru", cycles_per_access=40_000, load_mode=load_mode,
    )
    return {
        "faults": service.metrics.n_page_faults,
        "frames_written": service.metrics.frames_written,
        "port_ms": round(service.fpga.port_busy_time * 1e3, 2),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }, service.fpga.ram.frames.copy()


def test_e8_load_modes(benchmark):
    """E8e: the delta engine on the paging arm.  Acceptance: ≥30% less
    charged config-port time than full, identical resident bits, and
    auto never worse than full."""
    modes = ["full", "delta", "auto"]
    results = benchmark.pedantic(
        lambda: {m: run_load_mode(m) for m in modes}, rounds=1, iterations=1,
    )
    rows = [dict(load_mode=m, **results[m][0]) for m in modes]
    emit("e8_load_modes", format_table(
        rows,
        title="E8e: reconfiguration engine on the paging workload "
              "(8 pages x 3 columns on a 12-column device, Zipf, LRU)",
    ))
    by = {r["load_mode"]: r for r in rows}
    # Same access stream, same faults — only the port charging differs.
    assert by["delta"]["faults"] == by["full"]["faults"]
    # The resident configuration is bit-for-bit identical across engines.
    assert np.array_equal(results["full"][1], results["delta"][1])
    assert np.array_equal(results["full"][1], results["auto"][1])
    # Acceptance bar: delta cuts charged port time by at least 30%.
    reduction = 1 - by["delta"]["port_ms"] / by["full"]["port_ms"]
    assert reduction >= 0.30, f"delta saved only {reduction:.0%}"
    # Auto is never worse than full on this arm.
    assert by["auto"]["port_ms"] <= by["full"]["port_ms"] + 1e-9
    # The saving is visible in the written-frame count, not just time.
    assert by["delta"]["frames_written"] < by["full"]["frames_written"]


def test_e8_segment_placement(benchmark):
    """Placement-engine cross-product over the segmented workload: the
    allocator's span choice (first/best/worst fit) is a pluggable
    :class:`~repro.core.placement.PlacementStrategy`."""
    strategies = ["column-first-fit", "column-best-fit",
                  "column-worst-fit"]

    def run_one(placement: str):
        row = run_segmented(placement=placement)
        row.pop("scheme")
        return row

    result = benchmark.pedantic(
        lambda: sweep("placement", strategies, run_one),
        rounds=1, iterations=1,
    )
    baseline = run_segmented()  # engine default = column-first-fit
    baseline.pop("scheme")
    emit("e8_segment_placement", format_table(
        result.rows,
        title="E8d: placement engine over variable-size segments "
              "(24 virtual columns on a 12-column device, Zipf, LRU)",
    ))

    def strip(row):
        return {k: v for k, v in row.items()
                if k not in ("placement", "outcome")}

    by = {r["placement"]: r for r in result.rows}
    # The default engine reproduces the seed first-fit numbers exactly.
    assert strip(by["column-first-fit"]) == baseline
    # Every strategy services the same access stream.
    for row in result.rows:
        assert 0 < row["faults"] <= ACCESSES
