"""E9 — I/O pin multiplexing (paper §2).

Claim: "input and output multiplexing is used … to increase the number of
inputs and outputs when there are not enough physically available."

Two views:

* **static model** — sweep the virtual:physical pin ratio; effective
  per-pin bandwidth must scale like physical/virtual beyond 1, latency
  like the oversubscription factor;
* **system view** — tasks with I/O-heavy operations run concurrently;
  as their summed virtual pins exceed the device's pads, measured
  transfer time dilates by the same factor.
"""

from _harness import emit, monotone_nondecreasing, run_system

from repro.analysis import format_series, format_table, sweep
from repro.core import ConfigRegistry, PinMultiplexer
from repro.device import get_family
from repro.osim import FpgaOp, Task

CP = 25e-9
WORDS = 5_000


def run_static(ratio: float):
    mux = PinMultiplexer(n_physical_pins=100, word_rate=2e6)
    virtual = int(100 * ratio)
    t = mux.transfer_time(WORDS, virtual_pins=virtual)
    return {
        "virtual_pins": virtual,
        "factor": round(t.factor, 3),
        "transfer_ms": round(t.seconds * 1e3, 3),
        "per_pin_bw": round(1.0 / t.factor, 3),
    }


def run_system_point(n_tasks: int):
    arch = get_family("VF12")  # 96 pins
    reg = ConfigRegistry(arch)
    names = []
    for i in range(n_tasks):
        reg.register_synthetic(f"f{i}", 2, arch.height, critical_path=CP,
                               io_pins=40)
        names.append(f"f{i}")
    # All tasks transfer simultaneously (long overlapping ops).
    # Long transfers (20 ms) so the configuration-port stagger between
    # task start-ups is small relative to the overlapping I/O window.
    tasks = [
        Task(f"t{i}", [FpgaOp(names[i], 200_000, io_words=8 * WORDS)])
        for i in range(n_tasks)
    ]
    stats, service = run_system(reg, tasks, "variable", gc="merge")
    demand = 40 * n_tasks
    return {
        "virtual_pins": demand,
        "oversub": round(max(1.0, demand / arch.n_pins), 2),
        "io_ms_per_task": round(stats.total_fpga_io / n_tasks * 1e3, 3),
        "makespan_ms": round(stats.makespan * 1e3, 2),
    }


def test_e9_io_mux(benchmark):
    ratios = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    static = benchmark.pedantic(
        lambda: sweep("ratio", ratios, run_static), rounds=1, iterations=1
    )
    dynamic = sweep("tasks", [1, 2, 3, 4], run_system_point)
    text = format_table(
        static.rows,
        title="E9a: static pin-multiplexing model (100 physical pins, "
              f"{WORDS} words)",
    )
    text += "\n\n" + format_series(
        static.column("ratio"), static.column("per_pin_bw"),
        x_label="virt/phys", y_label="per-pin bandwidth",
        title="E9a: effective per-virtual-pin bandwidth",
    )
    text += "\n\n" + format_table(
        dynamic.rows,
        title="E9b: concurrent I/O-heavy tasks on a 96-pin device "
              "(40 virtual pins each)",
    )
    emit("e9_io_mux", text)
    # Shape: below the physical limit nothing dilates …
    assert all(r["factor"] == 1.0 for r in static.rows if r["ratio"] <= 1.0)
    # … beyond it, transfer time dilates linearly with the ratio.
    over = [r for r in static.rows if r["ratio"] > 1.0]
    for r in over:
        assert r["factor"] == r["ratio"]
    # System view: the mux factor shows up in measured per-task I/O time.
    io = dynamic.column("io_ms_per_task")
    assert monotone_nondecreasing(io, slack=0.01)
    assert io[-1] > io[0] * 1.2  # 4 tasks: 160/96 oversubscription visible
