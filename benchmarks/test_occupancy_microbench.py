"""Occupancy-grid microbenchmark: incremental vs rebuild-from-scratch.

:class:`~repro.core.rect_alloc.RectAllocator` keeps its boolean occupancy
grid up to date inside ``allocate``/``release`` instead of rebuilding it
from the resident list on every fragmentation probe (the seed behavior,
kept as ``_rebuild_occupancy`` for validation).  On large fabrics with
many residents the rebuild is O(residents × area) per probe while the
incremental grid is O(1); this microbenchmark checks the two never
disagree during heavy churn and quantifies the probe-side win.
"""

import time

import numpy as np
from _harness import emit

from repro.analysis import format_table
from repro.core import RectAllocator

FABRIC = (128, 128)
N_OPS = 300
SIZES = [(6, 4), (3, 8), (5, 5), (2, 9), (7, 3), (4, 6)]


def churn(alloc: RectAllocator, probe) -> int:
    """Deterministic allocate/release churn; ``probe`` runs per step and
    must return the occupancy grid it would answer queries from."""
    live = []
    checks = 0
    for i in range(N_OPS):
        w, h = SIZES[i % len(SIZES)]
        anchor = alloc.allocate(w, h)
        if anchor is not None:
            live.append((anchor, w, h))
        # Interleave releases (every third op) so the resident list churns
        # instead of only growing.
        if i % 3 == 2 and live:
            (x, y), rw, rh = live.pop(len(live) // 2)
            alloc.release(x, y, rw, rh)
        grid = probe(alloc)
        assert np.array_equal(grid, alloc._rebuild_occupancy())
        checks += 1
    return checks


def test_occupancy_incremental_matches_rebuild():
    """The incremental grid equals the reference rebuild at every step."""
    alloc = RectAllocator(*FABRIC)
    checks = churn(alloc, lambda a: a._occupancy())
    assert checks == N_OPS
    assert alloc.resident  # the churn actually exercised the ledger


def test_occupancy_microbench(benchmark):
    def timed(probe):
        """Probe-only seconds over the churn (allocation time excluded:
        both arms pay it identically and it would drown the probe)."""
        alloc = RectAllocator(*FABRIC)
        live = []
        probe_s = 0.0
        for i in range(N_OPS):
            w, h = SIZES[i % len(SIZES)]
            anchor = alloc.allocate(w, h)
            if anchor is not None:
                live.append((anchor, w, h))
            if i % 3 == 2 and live:
                (x, y), rw, rh = live.pop(len(live) // 2)
                alloc.release(x, y, rw, rh)
            t0 = time.perf_counter()
            probe(alloc)
            probe_s += time.perf_counter() - t0
        return probe_s, len(alloc.resident)

    def run():
        inc_s, n_resident = timed(lambda a: a._occupancy())
        reb_s, _ = timed(lambda a: a._rebuild_occupancy())
        return inc_s, reb_s, n_resident

    inc_s, reb_s, n_resident = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit("occupancy_microbench", format_table(
        [{
            "fabric": f"{FABRIC[0]}x{FABRIC[1]}",
            "ops": N_OPS,
            "final residents": n_resident,
            "incremental_ms": round(inc_s * 1e3, 2),
            "rebuild_ms": round(reb_s * 1e3, 2),
            "speedup": round(reb_s / max(inc_s, 1e-9), 1),
        }],
        title="occupancy grid: incremental bookkeeping vs per-probe "
              "rebuild (probe time only, one probe per allocate/release)",
    ))
    # The incremental grid must win: the rebuild is O(residents x area)
    # per probe, the incremental probe O(1).  The margin is ~100x; assert
    # a conservative bound so machine noise can never flake the gate.
    assert inc_s < reb_s
