#!/usr/bin/env python
"""Embedded controller with overlaid periodic diagnostics (paper §5).

"In embedded control systems, execution of different non-frequent
functions (e.g., periodic system testing and diagnosis as well as tuning
of the operating parameters) can benefit from the performance achieved by
FPGAs with respect to microprocessors."

Scenario: a controller runs a control-law datapath (accumulator + ALU) on
the FPGA continuously, while three *rarely used* functions — a built-in
self test (random logic), a comparator-based limit checker and a parity
scrubber — fire periodically.  The device is far too small to hold all of
them at once.  We compare:

* running the non-frequent functions in **software** (the paper's
  microprocessor fallback),
* **overlaying** them into the columns left next to the resident control
  law.

Run:  python examples/embedded_diagnostics.py
"""

from repro.analysis import fmt_pct, fmt_time, format_table
from repro.core import ConfigRegistry, make_service
from repro.device import get_family
from repro.netlist import accumulator, comparator, parity_tree, random_logic
from repro.osim import CpuBurst, FpgaOp, Kernel, PriorityScheduler, Task
from repro.sim import Simulator


def build_registry(arch):
    reg = ConfigRegistry(arch)
    reg.compile_and_register(accumulator(4), name="control_law",
                             seed=1, effort="greedy", shape="columns")
    reg.compile_and_register(random_logic(40, 8, 4, seed=3), name="self_test",
                             seed=1, effort="greedy", shape="columns")
    reg.compile_and_register(comparator(4), name="limit_check",
                             seed=1, effort="greedy", shape="columns")
    reg.compile_and_register(parity_tree(8), name="mem_scrub",
                             seed=1, effort="greedy", shape="columns")
    return reg


def workload():
    """One high-priority control task + three periodic diagnostics."""
    control = Task(
        "control",
        [step for _ in range(8)
         for step in (CpuBurst(0.2e-3), FpgaOp("control_law", 80_000))],
        priority=0,
    )
    diags = []
    for i, name in enumerate(["self_test", "limit_check", "mem_scrub"]):
        diags.append(Task(
            f"diag_{name}",
            [step for _ in range(3)
             for step in (CpuBurst(1e-3), FpgaOp(name, 40_000))],
            priority=5,
            arrival=(i + 1) * 2e-3,
        ))
    return [control] + diags


def run(policy, registry, **kw):
    sim = Simulator()
    service = make_service(policy, registry, **kw)
    kernel = Kernel(sim, PriorityScheduler(time_slice=0.5e-3), service)
    tasks = workload()
    kernel.spawn_all(tasks)
    stats = kernel.run()
    control = next(t for t in tasks if t.name == "control")
    return stats, service, control


def main() -> None:
    arch = get_family("VF10")
    registry = build_registry(arch)
    widths = {n: registry.get(n).bitstream.region.w for n in registry.names()}
    print(f"device: {arch.name} ({arch.width} columns); circuit widths: "
          + ", ".join(f"{n}={w}" for n, w in widths.items()))
    total = sum(widths.values())
    print(f"all four circuits need {total} columns — they cannot all be "
          "resident.\n")

    rows = []
    # Software fallback: diagnostics never touch the FPGA (the control law
    # must also run somewhere, so everything is software here).
    stats, svc, control = run("software", registry, slowdown=25.0)
    rows.append({
        "strategy": "all software (25x slower)",
        "makespan": fmt_time(stats.makespan),
        "control turnaround": fmt_time(control.accounting.turnaround),
        "downloads": svc.metrics.n_loads,
        "useful": fmt_pct(stats.useful_fraction),
    })

    stats, svc, control = run(
        "overlay", registry, resident_names=["control_law"]
    )
    rows.append({
        "strategy": "VFPGA overlay (control pinned)",
        "makespan": fmt_time(stats.makespan),
        "control turnaround": fmt_time(control.accounting.turnaround),
        "downloads": svc.metrics.n_loads,
        "useful": fmt_pct(stats.useful_fraction),
    })

    print(format_table(rows, title="embedded control + periodic diagnostics"))
    print("\nthe control law never leaves the fabric; the rare diagnostics "
          "borrow the overlay columns only when they fire — hardware speed "
          "for everything on a device that holds half the circuits.")


if __name__ == "__main__":
    main()
