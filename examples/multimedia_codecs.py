#!/usr/bin/env python
"""Multimedia codec switching on one small FPGA (paper §5).

"Multimedia systems can benefit from the use of VFPGA implementing
different voice and image compression/decompression algorithms in order to
accommodate different standards efficiently on a limited-size FPGA."

Scenario: a media terminal handles concurrent streams, each requiring a
codec pipeline (modelled as FIR filter / CRC / parity / ALU circuits of
realistic relative sizes).  Stream popularity is skewed: most traffic uses
the house codec, a long tail needs the others.  We compare:

* a **large dedicated device** holding every codec at once (the costly
  option the paper wants to avoid),
* a **small device with pure dynamic loading** (every codec switch is a
  download),
* the **same small device with overlaying** — the hot codec stays
  resident, the tail time-shares the overlay area.

Run:  python examples/multimedia_codecs.py
"""

from repro.analysis import fmt_pct, fmt_time, format_table
from repro.core import CapacityError, ConfigRegistry, make_service
from repro.device import get_family
from repro.netlist import alu, moving_sum_fir, parity_tree, serial_crc
from repro.osim import Kernel, RoundRobin, zipf_workload
from repro.sim import Simulator


def build_registry(arch, shape="columns"):
    reg = ConfigRegistry(arch)
    # Column-shaped regions pack the column-granular managers densely
    # (the big-device baseline uses squares: it shelf-packs 2-D).
    for netlist, name in [
        (moving_sum_fir(3, 3), "voice_fir"),
        (serial_crc(8, 0x07), "stream_crc"),
        (parity_tree(8), "sync_parity"),
        (alu(3), "pixel_alu"),
    ]:
        reg.compile_and_register(
            netlist, name=name, seed=1, effort="greedy", shape=shape
        )
    return reg


def run(arch_name: str, policy: str, shape="columns", **kw):
    arch = get_family(arch_name)
    registry = build_registry(arch, shape=shape)
    tasks = zipf_workload(
        registry.names(), n_tasks=8, ops_per_task=6,
        cpu_burst=0.5e-3, cycles=150_000, seed=11, s=1.4,
    )
    sim = Simulator()
    service = make_service(policy, registry, **kw)
    kernel = Kernel(sim, RoundRobin(time_slice=1e-3), service)
    kernel.spawn_all(tasks)
    stats = kernel.run()
    return stats, service


def main() -> None:
    rows = []

    # Large device: everything fits, nothing ever reconfigures.
    stats, svc = run("VF24", "merged", shape="square")
    big_gates = get_family("VF24").equivalent_gates
    rows.append({
        "system": "VF24 merged (big, costly)",
        "gates": big_gates,
        "makespan": fmt_time(stats.makespan),
        "reconfig time": fmt_time(stats.total_fpga_reconfig),
        "useful": fmt_pct(stats.useful_fraction),
    })

    # Small device: the merged approach simply does not fit.
    try:
        run("VF12", "merged", shape="square")
        raise AssertionError("expected the small device to overflow")
    except CapacityError:
        rows.append({
            "system": "VF12 merged", "gates": get_family("VF12").equivalent_gates,
            "makespan": "DOES NOT FIT", "reconfig time": "-", "useful": "-",
        })

    # Small device virtualized two ways.
    stats, svc = run("VF12", "dynamic")
    rows.append({
        "system": "VF12 dynamic loading",
        "gates": get_family("VF12").equivalent_gates,
        "makespan": fmt_time(stats.makespan),
        "reconfig time": fmt_time(stats.total_fpga_reconfig),
        "useful": fmt_pct(stats.useful_fraction),
    })

    stats, svc = run("VF12", "overlay", resident_names=["voice_fir"])
    rows.append({
        "system": "VF12 overlay (FIR pinned)",
        "gates": get_family("VF12").equivalent_gates,
        "makespan": fmt_time(stats.makespan),
        "reconfig time": fmt_time(stats.total_fpga_reconfig),
        "useful": fmt_pct(stats.useful_fraction),
    })

    print(format_table(
        rows, title="multimedia codec switching: one device, four codecs"
    ))
    small, big = get_family("VF12"), get_family("VF24")
    print(f"\nthe VF12 has {big.equivalent_gates / small.equivalent_gates:.0f}x "
          "fewer gates than the VF24; overlaying keeps the hot codec "
          "resident so most operations run download-free.")


if __name__ == "__main__":
    main()
