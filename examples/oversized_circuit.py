#!/usr/bin/env python
"""A circuit larger than the device, run anyway (paper §1/§2).

"In many applications, very large circuits should be realized without
requiring either a very large FPGA or many FPGAs."

This script takes a real circuit (a 4x4 array multiplier), verifies it is
too large for a small device, *cuts it into self-contained segments*
(cut nets become segment ports — paper §2 segmentation), compiles every
segment for the small device, and then:

A. functionally evaluates the segmented multiplier by streaming the
   segments through the device one at a time, forwarding cut-net values —
   proving the decomposition computes the same products as the monolith;
B. runs a task workload over the segmented circuit under the demand-
   loading segmentation manager and reports the fault/overhead economics.

Run:  python examples/oversized_circuit.py
"""

import random

from repro.analysis import fmt_pct, fmt_time, format_table
from repro.cad import PlacementError, compile_netlist
from repro.core import ConfigRegistry, SegmentedCircuit, make_service, segment_netlist
from repro.device import Fpga, get_family
from repro.netlist import LogicSimulator, array_multiplier
from repro.osim import FpgaOp, Kernel, RoundRobin, Task
from repro.sim import Simulator

WIDTH = 5
N_SEGMENTS = 5


def main() -> None:
    arch = get_family("VF8")
    big = array_multiplier(WIDTH)
    print(f"circuit: {big.name} ({len(big)} cells)")
    try:
        compile_netlist(big, arch, region=arch.full_rect, seed=1,
                        effort="greedy")
        raise AssertionError("expected the monolith not to fit")
    except PlacementError as exc:
        print(f"monolithic compile on {arch.name}: DOES NOT FIT ({exc})\n")

    # -- segmentation -----------------------------------------------------
    segments = segment_netlist(big, N_SEGMENTS)
    reg = ConfigRegistry(arch)
    names = []
    for seg in segments:
        entry = reg.compile_and_register(seg, seed=1, effort="greedy")
        names.append(entry.name)
        r = entry.bitstream.region
        print(f"  segment {entry.name}: {len(seg)} cells -> {r.w}x{r.h} region")
    print()

    # -- A. functional streaming ---------------------------------------------
    fpga = Fpga(arch)
    rng = random.Random(7)
    golden = LogicSimulator(big)
    checked = 0
    for _ in range(6):
        a, b = rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH)
        stim = {
            **LogicSimulator.pack_bus("a", a, WIDTH),
            **LogicSimulator.pack_bus("b", b, WIDTH),
        }
        values = dict(stim)
        outputs = {}
        for seg, name in zip(segments, names):
            entry = reg.get(name)
            if name not in fpga.resident:
                for other in list(fpga.resident):  # one segment at a time
                    fpga.unload(other)
                fpga.load(name, entry.bitstream.anchored_at(0, 0))
            view = fpga.view(name)
            seg_in = {c.name: values[c.name] for c in seg.primary_inputs}
            out = view.evaluate(seg_in)
            sim = LogicSimulator(seg)
            seg_vals = sim._settle(seg_in)
            for cell in seg.cells.values():
                if cell.kind.value not in ("input", "output"):
                    values[cell.name] = seg_vals[cell.name]
            for port, v in out.items():
                if port.endswith("__cut_out"):
                    values[port[: -len("__cut_out")]] = v
                else:
                    outputs[port] = v
        got = LogicSimulator.unpack_bus(outputs, "p")
        want_all = golden.evaluate(stim)
        want = LogicSimulator.unpack_bus(want_all, "p")
        assert got == want == a * b, (a, b, got, want)
        checked += 1
    print(f"A. streamed {checked} random products through the device "
          f"segment-by-segment — all equal to {WIDTH}x{WIDTH} golden "
          "multiplication.\n")

    # -- B. managed demand loading ------------------------------------------------
    circ = SegmentedCircuit(
        name="mult_virtual", segment_names=tuple(names),
        pattern="sequential", seed=3,
    )
    rows = []
    for replacement in ("lru", "mru"):
        sim = Simulator()
        service = make_service(
            "segmented", reg, circuits=[circ], replacement=replacement,
            cycles_per_access=50_000,
        )
        kernel = Kernel(sim, RoundRobin(time_slice=1e-3), service)
        tasks = [Task(f"t{i}", [FpgaOp("mult_virtual", 12)]) for i in range(2)]
        kernel.spawn_all(tasks)
        stats = kernel.run()
        rows.append({
            "replacement": replacement,
            "makespan": fmt_time(stats.makespan),
            "segment faults": f"{service.metrics.n_page_faults}"
                              f"/{service.metrics.n_page_accesses}",
            "reconfig": fmt_time(stats.total_fpga_reconfig),
            "useful": fmt_pct(stats.useful_fraction),
        })
    print(format_table(
        rows, title="B. demand-loaded segmented multiplier, two tasks"
    ))
    total = sum(reg.get(n).area for n in names)
    print(f"\nvirtual area {total} CLBs on a {arch.n_clbs}-CLB device — the "
          "paper's 'larger circuits on smaller FPGAs', literally.")


if __name__ == "__main__":
    main()
