#!/usr/bin/env python
"""Quickstart: a Virtual FPGA in ~60 lines.

1. Create a virtual FPGA over a catalog device.
2. Compile three circuits onto it (netlist → place → route → bitstream).
3. Use them interactively as if each owned the whole device — the manager
   downloads configurations behind your back and counts what that cost.
4. Run a multitasking workload under two OS management policies and
   compare.

Run:  python examples/quickstart.py [--trace out.json] [--report]

``--trace`` additionally captures the second policy run's full telemetry
stream as a Chrome ``trace_event`` file — open it in
https://ui.perfetto.dev to see every download, transfer and execution on
a per-task timeline.  ``--report`` prints the end-of-run summary tables
(latency percentiles, utilization gauges, per-task breakdown) for the
same run — the ``repro report`` view, inline.
"""

import argparse

from repro.analysis import fmt_pct, fmt_time, format_table
from repro.core import VirtualFpga
from repro.netlist import LogicSimulator, counter, parity_tree, ripple_adder
from repro.osim import uniform_workload
from repro.telemetry import (
    EventBus,
    EventLog,
    MetricsAggregator,
    SpanBuilder,
    render_report,
    to_chrome_trace,
)


def main(trace_path: str | None = None, report: bool = False) -> None:
    # -- 1. the virtual device ------------------------------------------------
    vf = VirtualFpga("VF12")  # 12x12 CLBs, 96 pins, partial reconfig
    print(f"device: {vf.arch.name} ({vf.arch.n_clbs} CLBs, "
          f"{vf.arch.n_pins} pins, full config "
          f"{fmt_time(vf.arch.full_config_time)})\n")

    # -- 2. compile circuits ----------------------------------------------------
    for netlist in (ripple_adder(4), counter(4), parity_tree(6)):
        entry = vf.add_circuit(netlist, effort="greedy", seed=1)
        print(f"compiled {entry.name:10s} -> region "
              f"{entry.bitstream.region.w}x{entry.bitstream.region.h}, "
              f"clock {fmt_time(entry.critical_path)}, "
              f"{entry.n_state_bits} state bits")

    # -- 3. interactive use: every circuit thinks it owns the device -------------
    a, b = 9, 5
    out = vf.evaluate("adder4", {
        **LogicSimulator.pack_bus("a", a, 4),
        **LogicSimulator.pack_bus("b", b, 4),
        "cin": 0,
    })
    total = LogicSimulator.unpack_bus(out, "s") | (out["cout"] << 4)
    print(f"\nadder4:   {a} + {b} = {total}")

    for _ in range(5):
        out = vf.step("counter4", {"en": 1})
    print(f"counter4: after 5 enabled clocks q = "
          f"{LogicSimulator.unpack_bus(out, 'q')}")

    word = 0b101101
    out = vf.evaluate("parity6", LogicSimulator.pack_bus("d", word, 6))
    print(f"parity6:  parity({word:06b}) = {out['p']}")

    print(f"\nhidden cost: the manager performed {vf.interactive_loads} "
          f"reconfigurations ({fmt_time(vf.interactive_load_time)}) "
          "so each circuit could pretend the device was its own.")

    # -- 4. managed multitasking -------------------------------------------------
    rows = []
    report_parts = None
    for policy, kw in [("nonpreemptable", {}), ("variable", {"gc": "compact"})]:
        tasks = uniform_workload(
            vf.circuits, n_tasks=6, ops_per_task=4,
            cpu_burst=1e-3, cycles=100_000, seed=7,
        )
        bus = log = aggregator = spans = None
        if (trace_path or report) and policy == "variable":
            bus = EventBus()
            if trace_path:
                log = EventLog(bus)
            if report:
                aggregator = MetricsAggregator(bus,
                                               clb_capacity=vf.arch.n_clbs)
                spans = SpanBuilder(bus)
        stats = vf.simulate(tasks, policy=policy, bus=bus, **kw)
        if log is not None:
            to_chrome_trace(log.events, trace_path,
                            run_name=f"quickstart:{policy}")
            print(f"\ntelemetry: wrote {len(log.events)} events to "
                  f"{trace_path} (open in https://ui.perfetto.dev)")
        if aggregator is not None:
            report_parts = render_report(aggregator, spans,
                                         title=f"quickstart:{policy}")
        m = vf.last_service.metrics
        rows.append({
            "policy": policy,
            "makespan": fmt_time(stats.makespan),
            "mean turnaround": fmt_time(stats.mean_turnaround),
            "reconfigs": m.n_loads,
            "useful FPGA time": fmt_pct(stats.useful_fraction),
        })
    print()
    print(format_table(rows, title="six tasks sharing one physical FPGA"))
    if report_parts is not None:
        print()
        print(report_parts)
    print("\npartitioned virtualization keeps circuits resident and runs "
          "them side by side — fewer downloads, more useful time.")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", metavar="OUT.json", default=None,
                    help="export the managed run's telemetry as a Chrome "
                         "trace_event file")
    ap.add_argument("--report", action="store_true",
                    help="print the managed run's end-of-run summary "
                         "(latency percentiles, utilization gauges, "
                         "per-task breakdown)")
    ns = ap.parse_args()
    main(trace_path=ns.trace, report=ns.report)
