#!/usr/bin/env python
"""Adaptive telecom line card: protocol circuits swapped per partner (§5).

"In telecommunication, modems, faxes, switching systems … can adapt their
operating mode changing the compression and encoding algorithms according
to the partners involved in the communication."

Two stories in one script:

**A. Functional**: a line card computes real CRCs in hardware.  Two
connections use different CRC standards; the VFPGA swaps the encoder
circuits mid-stream *with state save/restore*, and both running CRCs come
out identical to a pure-software reference — the paper's §3 preemption
machinery, demonstrated bit-exactly on the device model.

**B. Quantitative**: many connections with per-partner protocols share the
card under fixed partitioning vs whole-device dynamic loading.

Run:  python examples/telecom_modem.py
"""

import random

from repro.analysis import fmt_pct, fmt_time, format_table
from repro.core import ConfigRegistry, VirtualFpga, make_service
from repro.netlist import serial_crc
from repro.osim import Kernel, RoundRobin, uniform_workload
from repro.sim import Simulator


def software_crc(bits, width, poly):
    reg = 0
    for bit in bits:
        fb = bit ^ ((reg >> (width - 1)) & 1)
        reg = (reg << 1) & ((1 << width) - 1)
        if fb:
            reg ^= poly | 1
    return reg


def functional_demo() -> None:
    print("A. two CRC standards sharing one device, state preserved\n")
    vf = VirtualFpga("VF10")
    vf.add_circuit(serial_crc(8, 0x07), name="crc8_atm", effort="greedy", seed=1)
    vf.add_circuit(serial_crc(5, 0x15 & 0x1F), name="crc5_usb", effort="greedy",
                   seed=1)

    rng = random.Random(2026)
    stream_a = [rng.randint(0, 1) for _ in range(48)]
    stream_b = [rng.randint(0, 1) for _ in range(48)]

    # Interleave the two connections: every 12 bits the device is handed
    # to the other protocol; the manager saves/restores the CRC registers.
    state = {"crc8_atm": None, "crc5_usb": None}
    cursors = {"crc8_atm": 0, "crc5_usb": 0}
    streams = {"crc8_atm": stream_a, "crc5_usb": stream_b}
    swaps = 0
    for turn in range(8):
        name = "crc8_atm" if turn % 2 == 0 else "crc5_usb"
        if state[name] is not None:
            vf.write_state(name, state[name])     # controllability (§3)
        else:
            vf.write_state(name, {k: 0 for k in vf.read_state(name)})
        start = cursors[name]
        for bit in streams[name][start:start + 12]:
            vf.step(name, {"din": bit})
        cursors[name] = start + 12
        state[name] = vf.read_state(name)         # observability (§3)
        swaps += 1

    got_a = sum(state["crc8_atm"][f"c{i}_ff"] << i for i in range(8))
    got_b = sum(state["crc5_usb"][f"c{i}_ff"] << i for i in range(5))
    want_a = software_crc(stream_a, 8, 0x07)
    want_b = software_crc(stream_b, 5, 0x15 & 0x1F)
    print(f"  connection A (CRC-8):  device={got_a:#04x} software={want_a:#04x}")
    print(f"  connection B (CRC-5):  device={got_b:#04x} software={want_b:#04x}")
    assert got_a == want_a and got_b == want_b
    print(f"  {swaps} protocol swaps, {vf.interactive_loads} reconfigurations "
          f"({fmt_time(vf.interactive_load_time)}) — both running CRCs exact.\n")


def capacity_demo() -> None:
    print("B. sixteen connections, four protocols, one line card\n")
    from repro.device import get_family

    arch = get_family("VF16")
    reg = ConfigRegistry(arch)
    for width, poly, name in [
        (8, 0x07, "crc8_atm"),
        (5, 0x15 & 0x1F, "crc5_usb"),
        (4, 0x3, "crc4_itu"),
        (6, 0x03, "crc6_gsm"),
    ]:
        reg.compile_and_register(serial_crc(width, poly), name=name,
                                 seed=1, effort="greedy", shape="columns")

    rows = []
    for policy, kw in [
        ("dynamic", {}),
        ("fixed", {"n_partitions": 4}),
        ("variable", {"gc": "compact"}),
    ]:
        tasks = uniform_workload(
            reg.names(), n_tasks=16, ops_per_task=5,
            cpu_burst=0.3e-3, cycles=120_000, seed=5, arrival_spread=5e-3,
        )
        sim = Simulator()
        service = make_service(policy, reg, **kw)
        kernel = Kernel(sim, RoundRobin(time_slice=1e-3), service)
        kernel.spawn_all(tasks)
        stats = kernel.run()
        rows.append({
            "policy": policy + (f" {kw}" if kw else ""),
            "makespan": fmt_time(stats.makespan),
            "downloads": service.metrics.n_loads,
            "hit rate": fmt_pct(service.metrics.hit_rate),
            "useful": fmt_pct(stats.useful_fraction),
        })
    print(format_table(rows, title="per-partner protocol adaptation"))
    print("\npartitioning keeps each protocol resident: the per-connection "
          "downloads of whole-device dynamic loading disappear.")


if __name__ == "__main__":
    functional_demo()
    capacity_demo()
