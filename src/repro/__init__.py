"""repro — Virtual FPGA (VFPGA) reproduction library.

A from-scratch, simulation-based reproduction of

    W. Fornaciari and V. Piuri, "Virtual FPGAs: Some Steps Behind the
    Physical Barriers", IPPS 1998 workshops.

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event simulation kernel.
``repro.netlist``
    Gate/LUT/flip-flop netlists, circuit generators and a logic simulator.
``repro.device``
    Symmetrical-array FPGA device model with frame-organised configuration
    RAM and a configuration-port timing model.
``repro.cad``
    Technology mapping, packing, placement, routing, timing analysis and
    bitstream generation for the device model.
``repro.osim``
    Simulated multitasking operating system (tasks, schedulers, kernel).
``repro.core``
    The paper's contribution: the VFPGA manager — dynamic loading,
    partitioning, overlaying, segmentation, pagination and I/O multiplexing.
``repro.analysis``
    Sweep harness, run statistics and table rendering for the experiments.
"""

__version__ = "1.0.0"
