"""Experiment harness: sweeps, run statistics, table/series rendering."""

from .knee import KneePoint, knee_point, max_goodput_under_slo
from .stats import Summary, crossover_x, geometric_mean, summarize
from .sweep import SweepResult, sweep
from .tables import fmt_pct, fmt_ratio, fmt_time, format_series, format_table

__all__ = [
    "KneePoint",
    "Summary",
    "SweepResult",
    "crossover_x",
    "fmt_pct",
    "fmt_ratio",
    "fmt_time",
    "format_series",
    "format_table",
    "geometric_mean",
    "knee_point",
    "max_goodput_under_slo",
    "summarize",
    "sweep",
]
