"""Experiment harness: sweeps, run statistics, table/series rendering."""

from .stats import Summary, crossover_x, geometric_mean, summarize
from .sweep import SweepResult, sweep
from .tables import fmt_pct, fmt_ratio, fmt_time, format_series, format_table

__all__ = [
    "Summary",
    "SweepResult",
    "crossover_x",
    "fmt_pct",
    "fmt_ratio",
    "fmt_time",
    "format_series",
    "format_table",
    "geometric_mean",
    "summarize",
    "sweep",
]
