"""Saturation analysis: knee points and goodput under an SLO.

A load sweep produces a latency-vs-offered-rate curve that is flat
until the system approaches saturation, then turns sharply upward (the
classic open-loop queueing hockey stick).  The *knee* is the operating
point past which each additional unit of offered load buys
disproportionate latency — the capacity number an operator actually
provisions to, as opposed to the asymptotic throughput ceiling.

:func:`knee_point` finds it with the maximum-distance-to-chord method
(the geometric core of the Kneedle algorithm): normalize both axes to
``[0, 1]``, draw the chord from the first to the last point, and take
the point farthest from it.  No smoothing, no derivatives, no
dependencies — deterministic on any monotone sweep, which is what lets
``BENCH_e20`` gate the knee in CI.

:func:`max_goodput_under_slo` reads the same sweep the other way: of
the operating points whose tail latency still honors the objective,
which achieved the highest *goodput* (useful completed work per
second)?  Together the two numbers summarize a saturation sweep in a
form a bench-diff can gate: where the curve bends, and how much work
the system does before it bends.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import hypot
from typing import Optional, Sequence

__all__ = ["KneePoint", "knee_point", "max_goodput_under_slo"]


@dataclass(frozen=True)
class KneePoint:
    """The detected knee of a curve.

    ``strength`` is the normalized perpendicular distance from the
    knee to the first→last chord (0 = the curve is a straight line,
    larger = sharper bend); useful as a "was there actually a knee?"
    confidence signal.
    """

    x: float
    y: float
    index: int
    strength: float


def knee_point(xs: Sequence[float], ys: Sequence[float]) -> Optional[KneePoint]:
    """Find the knee of ``ys`` vs ``xs`` by maximum distance to chord.

    Returns ``None`` when no knee is decidable: fewer than three
    points, a degenerate axis (all ``x`` or all ``y`` equal), or a
    chord of zero length.  Ties break toward the *earliest* point (the
    conservative capacity estimate).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n < 3:
        return None
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo or y_hi == y_lo:
        return None
    # Normalize both axes to [0, 1] so "distance" is scale-free.
    nx = [(x - x_lo) / (x_hi - x_lo) for x in xs]
    ny = [(y - y_lo) / (y_hi - y_lo) for y in ys]
    x0, y0 = nx[0], ny[0]
    dx, dy = nx[-1] - x0, ny[-1] - y0
    chord = hypot(dx, dy)
    if chord == 0:
        return None
    best_i = -1
    best_d = 0.0
    for i in range(1, n - 1):
        # Perpendicular distance from point i to the chord.
        d = abs(dx * (ny[i] - y0) - dy * (nx[i] - x0)) / chord
        if d > best_d:
            best_d, best_i = d, i
    if best_i < 0 or best_d <= 0.0:
        return None
    return KneePoint(x=xs[best_i], y=ys[best_i], index=best_i,
                     strength=best_d)


def max_goodput_under_slo(
    rates: Sequence[float],
    goodputs: Sequence[float],
    p99s: Sequence[Optional[float]],
    slo: float,
) -> float:
    """Highest goodput among operating points whose p99 honors ``slo``.

    Points with an unknown tail latency (``None``) are treated as
    violating — an unmeasured point cannot certify an objective.
    Returns 0.0 when no point qualifies (the system violates the SLO
    even at the lightest offered load).
    """
    if not (len(rates) == len(goodputs) == len(p99s)):
        raise ValueError("rates, goodputs and p99s must have equal length")
    best = 0.0
    for goodput, p99 in zip(goodputs, p99s):
        if p99 is not None and p99 <= slo and goodput > best:
            best = goodput
    return best
