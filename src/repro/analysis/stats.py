"""Small statistics helpers for experiment reductions."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "summarize", "geometric_mean", "crossover_x"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric across repetitions."""

    n: int
    mean: float
    std: float
    min: float
    max: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    vals = list(values)
    if not vals:
        raise ValueError("no values")
    n = len(vals)
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    return Summary(n=n, mean=mean, std=math.sqrt(var), min=min(vals), max=max(vals))


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def crossover_x(
    xs: Sequence[float], ya: Sequence[float], yb: Sequence[float]
) -> float | None:
    """First x where series *a* stops beating series *b* (linear
    interpolation between samples); None if no crossover.

    Used by E6 to locate the rollback ↔ save/restore switch point.
    """
    if not (len(xs) == len(ya) == len(yb)):
        raise ValueError("series lengths differ")
    for i in range(1, len(xs)):
        d_prev = ya[i - 1] - yb[i - 1]
        d_cur = ya[i] - yb[i]
        if d_prev == 0:
            return float(xs[i - 1])
        if (d_prev < 0) != (d_cur < 0):
            # Linear interpolation on the difference.
            t = abs(d_prev) / (abs(d_prev) + abs(d_cur))
            return float(xs[i - 1] + t * (xs[i] - xs[i - 1]))
    return None
