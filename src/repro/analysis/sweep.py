"""Parameter-sweep harness used by every benchmark.

A sweep maps one independent variable over a run function that returns a
dict row; rows accumulate into a table the benchmark prints and asserts
shape properties on.  Runs are independent simulations, so a failure in
one point (e.g. an intentional starvation deadlock in E5) can be recorded
as an outcome instead of aborting the sweep.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple, Type

__all__ = ["sweep", "SweepResult"]


class SweepResult:
    """Rows of a completed sweep with simple column access."""

    def __init__(self, variable: str, rows: List[Dict[str, Any]]) -> None:
        self.variable = variable
        self.rows = rows

    def column(self, name: str) -> List[Any]:
        return [r.get(name) for r in self.rows]

    def xs(self) -> List[Any]:
        return self.column(self.variable)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def sweep(
    variable: str,
    values: Sequence[Any],
    run: Callable[[Any], Dict[str, Any]],
    expected_errors: Tuple[Type[BaseException], ...] = (),
) -> SweepResult:
    """Run ``run(v)`` for every value; each row records the variable.

    Exceptions listed in ``expected_errors`` become ``outcome`` column
    entries (class name) instead of propagating — a starved/deadlocked
    configuration is itself a measurement.
    """
    rows: List[Dict[str, Any]] = []
    for v in values:
        row: Dict[str, Any] = {variable: v}
        try:
            result = run(v)
            row.update(result)
            row.setdefault("outcome", "ok")
        except expected_errors as exc:
            row["outcome"] = type(exc).__name__
        rows.append(row)
    return SweepResult(variable, rows)
