"""ASCII table/series rendering for the experiment harness.

Every benchmark prints its results through these helpers so the output of
``pytest benchmarks/ --benchmark-only`` doubles as the paper-style tables
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "fmt_time", "fmt_pct", "fmt_ratio"]


def fmt_time(seconds: float) -> str:
    """Human scale: ns/µs/ms/s."""
    a = abs(seconds)
    if a == 0:
        return "0"
    if a < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if a < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if a < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def fmt_pct(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"


def fmt_ratio(x: float) -> str:
    return f"{x:.2f}x"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns:
        cols = list(columns)
    else:  # union of keys, first-seen order (rows may be ragged)
        cols = list(dict.fromkeys(k for r in rows for k in r))
    grid: List[List[str]] = [[_cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in grid)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in grid:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    width: int = 40,
) -> str:
    """Render one (x, y) series with a proportional ASCII bar per point —
    the "figure" analogue of :func:`format_table`."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        return f"{title or 'series'}: (no points)"
    y_max = max(abs(y) for y in ys) or 1.0
    lines = []
    if title:
        lines.append(title)
    x_w = max(len(x_label), *(len(_cell(x)) for x in xs))
    y_w = max(len(y_label), *(len(_cell(y)) for y in ys))
    lines.append(f"{x_label.ljust(x_w)} | {y_label.ljust(y_w)} |")
    for x, y in zip(xs, ys):
        bar = "#" * max(0, round(width * abs(y) / y_max))
        lines.append(f"{_cell(x).ljust(x_w)} | {_cell(y).ljust(y_w)} | {bar}")
    return "\n".join(lines)
