"""CAD flow: technology mapping → packing → placement → routing → timing
→ bitstream generation → functional verification.

The entry point is :func:`repro.cad.compile_netlist`; everything else is
exposed for tests, ablation benchmarks (E13) and curious users.
"""

from .cache import CompileCache, netlist_digest
from .flow import (
    CompileError,
    CompileResult,
    PinCapacityError,
    compile_netlist,
    minimal_region,
    virtual_pin_capacity,
)
from .instrument import (
    PHASES,
    CadAnnealStep,
    CadCacheLookup,
    CadInstrumentation,
    CadPhaseEnd,
    CadPhaseStart,
    CadRouteIteration,
    CompileProfile,
)
from .pack import Ble, PackedDesign, PackError, nets_of, pack
from .place import VECTOR_MIN_BLES, Placement, PlacementError, hpwl, place
from .route import NetSpec, RoutedNet, Router, RoutingError
from .rrg import RoutingGraph
from .techmap import TechmapError, absorb_fanin, check_mapped, gate_truth, technology_map
from .timing import TimingError, TimingReport, analyze_timing
from .verify import VerificationError, verify_bitstream

__all__ = [
    "PHASES",
    "VECTOR_MIN_BLES",
    "Ble",
    "CadAnnealStep",
    "CadCacheLookup",
    "CadInstrumentation",
    "CadPhaseEnd",
    "CadPhaseStart",
    "CadRouteIteration",
    "CompileCache",
    "CompileError",
    "CompileProfile",
    "CompileResult",
    "NetSpec",
    "PackError",
    "PackedDesign",
    "PinCapacityError",
    "Placement",
    "PlacementError",
    "RoutedNet",
    "Router",
    "RoutingError",
    "RoutingGraph",
    "TechmapError",
    "TimingError",
    "TimingReport",
    "VerificationError",
    "absorb_fanin",
    "analyze_timing",
    "check_mapped",
    "compile_netlist",
    "gate_truth",
    "hpwl",
    "minimal_region",
    "netlist_digest",
    "nets_of",
    "pack",
    "place",
    "technology_map",
    "verify_bitstream",
    "virtual_pin_capacity",
]
