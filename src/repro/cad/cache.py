"""Content-addressed compile cache over the whole CAD flow.

PR 5's :class:`~repro.core.bitcache.BitstreamCache` made repeat *loads*
content-addressed: the frame encoder runs once per distinct
configuration content and every later port of the same circuit is a
metadata hit.  This module applies the same discipline one layer up, to
the compile path itself: a :class:`CompileCache` memoises
:func:`~repro.cad.flow.compile_netlist` end-to-end, keyed on the
*netlist content digest* plus everything else that determines the
result — device family, region, seed, effort, router iteration cap —
so recompiling a circuit family is a dictionary lookup instead of a
map→pack→place→route→bitgen walk.

Three stage caches ride along for *partial* hits when only downstream
knobs change:

* ``pack``  — keyed ``(digest, k)``: a new seed/region/effort reuses
  technology mapping + packing;
* ``place`` — keyed downstream of ``pack`` plus ``(region, seed,
  effort)``: a new router iteration cap reuses the placement;
* ``route`` — keyed downstream of ``place`` plus ``(family, mode,
  cap)``: stores the routing graph with the routed trees, so a hit
  skips RRG construction too.

Every lookup is published as a typed
:class:`~repro.cad.instrument.CadCacheLookup` event when the flow runs
instrumented, so :class:`~repro.cad.instrument.CompileProfile`,
``repro compile-report`` and the benchmark artifacts all see cache
behavior.  Cached values are shared between hits — callers must treat
them as read-only (the BitstreamCache contract).

The engine knob (scalar vs vector kernels) is deliberately *not* part
of any key: the kernels are pinned bit-identical, so their results are
interchangeable cache content.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..device import Architecture
    from .flow import CompileResult
    from .instrument import CadInstrumentation

__all__ = ["CompileCache", "netlist_digest"]

#: Cache keys are plain tuples of hashables (digest + flow options).
CacheKey = Tuple


def netlist_digest(netlist: Netlist) -> str:
    """Content digest of a netlist: name plus every cell (name, kind,
    fanin, truth table, initial value) in insertion order.

    Insertion order is part of the content on purpose — downstream
    passes iterate cells in that order, so two netlists with the same
    cells in different order can compile differently.  Computed fresh on
    every call (no instance memo): netlists are mutable via ``add`` /
    ``replace`` and a stale digest would alias distinct designs.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(netlist.name.encode())
    for cell in netlist.cells.values():
        h.update(b"\x00")
        h.update(cell.name.encode())
        h.update(b"\x01")
        h.update(cell.kind.value.encode())
        for src in cell.fanin:
            h.update(b"\x02")
            h.update(src.encode())
        h.update(f"\x03{cell.truth}\x04{cell.init}".encode())
    return h.hexdigest()


class CompileCache:
    """Memoises compile results end-to-end and per stage.

    One instance is typically shared by everything compiling against one
    device (each :class:`~repro.core.registry.ConfigRegistry` owns one,
    next to its ``bitcache``); an instance is also safely shareable
    across families, since every key carries the family parameters that
    matter to its stage.
    """

    #: Stage names with partial-hit caches, in flow order.
    STAGES = ("pack", "place", "route")

    def __init__(self) -> None:
        self._results: Dict[CacheKey, "CompileResult"] = {}
        self._stages: Dict[str, Dict[CacheKey, object]] = {
            name: {} for name in self.STAGES
        }
        self.hits = 0
        self.misses = 0
        self.stage_hits: Dict[str, int] = {name: 0 for name in self.STAGES}
        self.stage_misses: Dict[str, int] = {name: 0 for name in self.STAGES}
        #: Configuration bytes served from end-to-end hits (the frames a
        #: fresh compile would have had to regenerate).
        self.bytes_served = 0
        self._result_bytes: Dict[CacheKey, int] = {}

    # -- keys --------------------------------------------------------------
    def flow_key(
        self,
        digest: str,
        arch: "Architecture",
        *,
        mode: str,
        region_token: Tuple,
        seed: int,
        effort: str,
        max_route_iterations: int,
    ) -> CacheKey:
        """End-to-end key: everything :func:`compile_netlist` result
        content depends on (the engine knob excluded — see module
        docstring)."""
        return (digest, arch.name, mode, region_token, seed, effort,
                max_route_iterations)

    # -- end-to-end --------------------------------------------------------
    def lookup_result(
        self, key: CacheKey,
        instrument: Optional["CadInstrumentation"] = None,
    ) -> Optional["CompileResult"]:
        result = self._results.get(key)
        if result is not None:
            self.hits += 1
            served = self._result_bytes.get(key, 0)
            self.bytes_served += served
            if instrument is not None:
                instrument.cache_lookup("flow", "hit", key[0],
                                        bytes_served=served)
        else:
            self.misses += 1
            if instrument is not None:
                instrument.cache_lookup("flow", "miss", key[0])
        return result

    def store_result(self, key: CacheKey, result: "CompileResult",
                     arch: "Architecture") -> None:
        """Store one successful compile (failures are never cached — a
        raised flow leaves no entry).  The profile is stripped: it
        describes the *storing* run, and hits attach their own."""
        from dataclasses import replace

        bs = result.bitstream
        self._result_bytes[key] = (
            len(bs.frames_touched(arch)) * arch.frame_bits // 8
        )
        self._results[key] = replace(result, profile=None)

    # -- stages ------------------------------------------------------------
    def lookup_stage(
        self, stage: str, key: CacheKey,
        instrument: Optional["CadInstrumentation"] = None,
    ) -> Optional[object]:
        value = self._stages[stage].get(key)
        if value is not None:
            self.stage_hits[stage] += 1
        else:
            self.stage_misses[stage] += 1
        if instrument is not None:
            instrument.cache_lookup(
                stage, "hit" if value is not None else "miss", key[0]
            )
        return value

    def store_stage(self, stage: str, key: CacheKey, value: object) -> None:
        self._stages[stage][key] = value

    # -- reporting ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot (the compile-path analogue of
        ``BitstreamCache.stats``)."""
        return {
            "entries": len(self._results),
            "hits": self.hits,
            "misses": self.misses,
            "stage_hits": dict(self.stage_hits),
            "stage_misses": dict(self.stage_misses),
            "bytes_served": self.bytes_served,
        }
