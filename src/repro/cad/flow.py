"""The complete CAD flow: netlist → bitstream.

``compile_netlist`` chains technology mapping, packing, placement, virtual
pin (or pad) assignment, routing, timing analysis and configuration
generation, producing a :class:`repro.device.Bitstream` ready for the
VFPGA manager.

Two modes:

* ``relocatable`` (default) — compile into a region anchored at the
  given rectangle (or an automatically sized one at the origin); primary
  I/O binds to *virtual pins* on the region's boundary channels; the
  result translates to any anchor (paper §4's relocatable circuits).
* ``dedicated`` — compile for the whole device with primary I/O bonded
  to physical IOB pads (the classic single-application configuration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from ..device import (
    Architecture,
    Bitstream,
    ClbConfig,
    Coord,
    IobConfig,
    IobDirection,
    Rect,
    Wire,
    clb_input_candidates,
    clb_output_candidates,
    iob_sites,
)
from ..netlist import Netlist
from .cache import CompileCache, netlist_digest
from .instrument import CadInstrumentation, CompileProfile
from .pack import PackedDesign, nets_of, pack
from .place import Placement, place
from .route import NetSpec, Router, RoutingError
from .rrg import RoutingGraph
from .techmap import technology_map
from .timing import TimingReport, analyze_timing

__all__ = [
    "compile_netlist",
    "CompileResult",
    "CompileError",
    "PinCapacityError",
    "minimal_region",
]


class _NullPhase:
    """``with`` target used when instrumentation is disabled: zero work,
    zero timestamps (the disabled flow must not even read a clock)."""

    __slots__ = ("size",)

    def __init__(self) -> None:
        self.size = 0

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


def _phase(instrument: Optional[CadInstrumentation], name: str,
           size: int = 0):
    if instrument is None:
        return _NullPhase()
    return instrument.phase(name, size=size)


class CompileError(Exception):
    """Umbrella error for compilation failures."""


class PinCapacityError(CompileError):
    """The circuit needs more I/O than the target offers — the paper's
    pin-count physical barrier (§1)."""


@dataclass
class CompileResult:
    """Everything the flow produced for one circuit."""

    bitstream: Bitstream
    design: PackedDesign
    placement: Placement
    timing: TimingReport
    #: Total routed wirelength (wire segments over all nets).
    wirelength: int
    #: Net count actually routed.
    n_nets: int
    #: Compile telemetry aggregation (``None`` unless the flow ran with a
    #: :class:`~repro.cad.instrument.CadInstrumentation` hook).
    profile: Optional[CompileProfile] = None

    @property
    def critical_path(self) -> float:
        return self.timing.critical_path


def virtual_pin_capacity(arch: Architecture, region: Rect) -> int:
    """Number of boundary wires available as virtual pins: the bottom
    horizontal channel plus the left vertical channel of the region."""
    return arch.channel_width * (region.w + region.h)


def _virtual_pin_pool(arch: Architecture, region: Rect) -> List[Wire]:
    """Deterministic virtual-pin candidate order.

    With disjoint switch boxes a net whose source is a fixed wire is
    confined to that wire's *track plane*, so consecutive pins must land on
    different tracks as well as different channel spans.  The pool stripes
    diagonally over (position, track): entry ``i`` uses position ``i % P``
    and track ``(i % P + i // P) % cw``, which enumerates every boundary
    wire exactly once while spreading both coordinates.
    """
    cw = arch.channel_width
    positions: List[Wire] = [Wire("H", x, region.y, 0) for x in region.columns()]
    positions += [Wire("V", region.x, y, 0) for y in range(region.y, region.y2)]
    n_pos = len(positions)
    pool: List[Wire] = []
    for rnd in range(cw):
        for p, base in enumerate(positions):
            t = (p + rnd) % cw
            pool.append(Wire(base.kind, base.x, base.y, t))
    assert len(set(pool)) == n_pos * cw
    return pool


def minimal_region(
    design_clbs: int, io_count: int, arch: Architecture,
    utilization: float = 0.5, shape: str = "square",
) -> Rect:
    """Smallest region (anchored at the origin) with enough CLBs at the
    given target utilization and enough virtual-pin capacity.

    ``shape="square"`` grows both dimensions together (minimum wirelength);
    ``shape="columns"`` uses full-height column spans (minimum width),
    which is what the column-granular partitioning/paging services pack
    most densely.
    """
    if not 0 < utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    if shape not in ("square", "columns"):
        raise ValueError(f"unknown region shape {shape!r}")
    if shape == "columns":
        w = max(1, math.ceil(design_clbs / (arch.height * utilization)))
        while True:
            region = Rect(0, 0, min(w, arch.width), arch.height)
            enough_area = region.area >= design_clbs
            enough_pins = virtual_pin_capacity(arch, region) >= io_count
            if (enough_area and enough_pins) or region.w >= arch.width:
                return region
            w += 1
    side = max(1, math.ceil(math.sqrt(design_clbs / utilization)))
    while True:
        region = Rect(0, 0, min(side, arch.width), min(side, arch.height))
        enough_area = region.area >= design_clbs
        enough_pins = virtual_pin_capacity(arch, region) >= io_count
        if enough_area and enough_pins:
            return region
        if region.w >= arch.width and region.h >= arch.height:
            return region  # caller's placement/pin check will raise
        side += 1


def compile_netlist(
    netlist: Netlist,
    arch: Architecture,
    region: Optional[Rect] = None,
    mode: str = "relocatable",
    seed: int = 0,
    effort: str = "sa",
    max_route_iterations: int = 24,
    shape: str = "square",
    instrument: Optional[CadInstrumentation] = None,
    engine: str = "auto",
    cache: Optional[CompileCache] = None,
) -> CompileResult:
    """Compile ``netlist`` for ``arch``.

    ``instrument`` (a :class:`~repro.cad.instrument.CadInstrumentation`)
    opts the run into compile telemetry: phase brackets, SA cost curve
    and router convergence events, aggregated into
    :attr:`CompileResult.profile`.  The hook only observes — placements
    and bitstreams are bit-identical with instrumentation on or off.
    Auto-region retries accumulate into the same instrument, so the
    profile records the *whole* compile including discarded attempts.

    ``engine`` selects the placement/routing kernels (``"auto"``,
    ``"scalar"``, ``"vector"``); the kernels are bit-identical, so the
    result does not depend on it.  ``cache`` (a
    :class:`~repro.cad.cache.CompileCache`) memoises the flow end-to-end
    by netlist content digest plus per-stage (pack on digest alone,
    place/route keyed downstream); hits return without re-running the
    skipped phases, and every lookup is published as a
    :class:`~repro.cad.instrument.CadCacheLookup` event when
    instrumented.  Cached results are shared — callers must treat them
    as read-only, exactly like the frame images the
    :class:`~repro.core.bitcache.BitstreamCache` serves.

    Raises
    ------
    PlacementError
        Circuit needs more CLBs than the region holds.
    PinCapacityError
        Circuit needs more I/O than the pads / virtual pins available.
    RoutingError
        Congestion did not resolve.
    """
    if mode not in ("relocatable", "dedicated"):
        raise ValueError(f"unknown mode {mode!r}")
    if mode == "relocatable" and region is None:
        flow_key = None
        if cache is not None:
            flow_key = cache.flow_key(
                netlist_digest(netlist), arch, mode=mode,
                region_token=("auto", shape), seed=seed, effort=effort,
                max_route_iterations=max_route_iterations,
            )
            hit = cache.lookup_result(flow_key, instrument=instrument)
            if hit is not None:
                return replace(
                    hit,
                    profile=instrument.profile() if instrument is not None
                    else None,
                )
        # Auto-sized regions: retry with progressively roomier regions when
        # routing congestion does not resolve (standard relax-and-retry).
        last_exc: Optional[RoutingError] = None
        for utilization in (0.5, 0.33, 0.22):
            mapped = technology_map(netlist, arch.k)
            design = pack(mapped, arch.k)
            io_count = len(design.inputs) + len(design.outputs)
            auto = minimal_region(design.n_clbs, io_count, arch,
                                  utilization=utilization, shape=shape)
            try:
                result = compile_netlist(
                    netlist, arch, region=auto, mode=mode, seed=seed,
                    effort=effort, max_route_iterations=max_route_iterations,
                    shape=shape, instrument=instrument, engine=engine,
                    cache=cache,
                )
                if cache is not None and flow_key is not None:
                    cache.store_result(flow_key, result, arch)
                return result
            except RoutingError as exc:
                last_exc = exc
                if auto == arch.full_rect:
                    break
        raise last_exc  # even the roomiest region failed
    if mode == "dedicated" and region is not None and region != arch.full_rect:
        raise ValueError("dedicated mode always targets the full device")

    digest = ""
    flow_key = None
    if cache is not None:
        digest = netlist_digest(netlist)
        region_token: Tuple = (
            _rect_token(arch.full_rect) if mode == "dedicated"
            else _rect_token(region) if region is not None
            else ("auto", shape)
        )
        flow_key = cache.flow_key(
            digest, arch, mode=mode, region_token=region_token, seed=seed,
            effort=effort, max_route_iterations=max_route_iterations,
        )
        hit = cache.lookup_result(flow_key, instrument=instrument)
        if hit is not None:
            return replace(
                hit,
                profile=instrument.profile() if instrument is not None
                else None,
            )

    pack_key = (digest, arch.k)
    design = (cache.lookup_stage("pack", pack_key, instrument=instrument)
              if cache is not None else None)
    if design is None:
        with _phase(instrument, "techmap", size=len(netlist.cells)) as ph:
            mapped = technology_map(netlist, arch.k)
            ph.size = len(mapped.cells)
        with _phase(instrument, "pack", size=len(mapped.cells)) as ph:
            design = pack(mapped, arch.k)
            ph.size = design.n_clbs
        if cache is not None:
            cache.store_stage("pack", pack_key, design)
    io_count = len(design.inputs) + len(design.outputs)

    if mode == "dedicated":
        region = arch.full_rect
        if io_count > arch.n_pins:
            raise PinCapacityError(
                f"{netlist.name!r} needs {io_count} pins, device has {arch.n_pins}"
            )
    else:
        if region is None:
            region = minimal_region(design.n_clbs, io_count, arch, shape=shape)
        capacity = virtual_pin_capacity(arch, region)
        if io_count > capacity:
            raise PinCapacityError(
                f"{netlist.name!r} needs {io_count} virtual pins, region "
                f"{region} offers {capacity}"
            )

    place_key = pack_key + (_rect_token(region), seed, effort)
    placement = (cache.lookup_stage("place", place_key, instrument=instrument)
                 if cache is not None else None)
    if placement is None:
        with _phase(instrument, "place", size=design.n_clbs) as ph:
            placement = place(design, region, seed=seed, effort=effort,
                              instrument=instrument, engine=engine)
            ph.size = design.n_clbs
        if cache is not None:
            cache.store_stage("place", place_key, placement)

    # -- I/O binding ---------------------------------------------------------
    virtual_inputs: Dict[str, Wire] = {}
    virtual_outputs: Dict[str, Wire] = {}
    pad_inputs: Dict[str, object] = {}
    pad_outputs: Dict[str, object] = {}
    if mode == "relocatable":
        pool = _virtual_pin_pool(arch, region)
        for i, port in enumerate(design.inputs):
            virtual_inputs[port] = pool[i]
        for j, port in enumerate(sorted(design.outputs)):
            virtual_outputs[port] = pool[len(pool) - 1 - j]
        overlap = set(virtual_inputs.values()) & set(virtual_outputs.values())
        if overlap:
            raise PinCapacityError(
                f"virtual pin pool exhausted for {netlist.name!r}"
            )
    else:
        sites = iob_sites(arch)
        for i, port in enumerate(design.inputs):
            pad_inputs[port] = sites[i]
        for j, port in enumerate(sorted(design.outputs)):
            pad_outputs[port] = sites[len(sites) - 1 - j]

    # -- net construction -------------------------------------------------------
    ble_names = {b.name for b in design.bles}
    specs: Dict[str, NetSpec] = {}
    for src, sinks in nets_of(design).items():
        if src in ble_names:
            source = ("clb", placement.coords[src])
        elif mode == "relocatable":
            source = ("wire", virtual_inputs[src])
        else:
            source = ("pad", pad_inputs[src])
        sink_eps = [
            ("clbpin", placement.coords[ble_name], pin) for ble_name, pin in sinks
        ]
        specs[src] = NetSpec(name=src, source=source, sinks=sink_eps)
    for port, src in design.outputs.items():
        if src not in specs:
            specs[src] = NetSpec(
                name=src, source=("clb", placement.coords[src]), sinks=[]
            )
        if mode == "relocatable":
            specs[src].sinks.append(("wire", virtual_outputs[port]))
        else:
            specs[src].sinks.append(("pad", pad_outputs[port]))

    route_key = place_key + (arch.name, mode, max_route_iterations)
    cached_route = (
        cache.lookup_stage("route", route_key, instrument=instrument)
        if cache is not None else None
    )
    if cached_route is not None:
        # Graph and routes are deterministic for this key; reusing them
        # skips the rrg + route phases entirely.
        graph, routed = cached_route
    else:
        with _phase(instrument, "rrg") as ph:
            graph = RoutingGraph(
                arch,
                region=None if mode == "dedicated" else region,
                include_pads=(mode == "dedicated"),
            )
            ph.size = len(graph)
        # Virtual-pin wires are interface terminals: reserve each for the
        # net that owns it so no other net can route through (an *unused*
        # input's wire would otherwise be free routing stock and its
        # external driver would short into whatever used it).
        reserved: Dict[int, str] = {}
        for port, wire in virtual_inputs.items():
            reserved[graph.wire_id(wire)] = port
        for port, wire in virtual_outputs.items():
            reserved[graph.wire_id(wire)] = design.outputs[port]
        router = Router(graph, max_iterations=max_route_iterations,
                        reserved=reserved, engine=engine)
        net_list = [specs[name] for name in sorted(specs)]
        with _phase(instrument, "route", size=len(net_list)) as ph:
            routed = router.route(net_list, instrument=instrument)
            ph.size = len(routed)
        if cache is not None:
            cache.store_stage("route", route_key, (graph, routed))

    with _phase(instrument, "timing", size=len(routed)) as ph:
        timing = analyze_timing(arch, placement, routed)
        ph.size = timing.n_timing_paths
    wirelength = sum(
        sum(1 for nid in rn.nodes if graph.is_wire(nid)) for rn in routed.values()
    )

    # -- configuration generation ------------------------------------------------
    with _phase(instrument, "bitgen", size=len(routed)) as ph:
        bitstream = _generate_bitstream(
            netlist, arch, region, mode, design, placement, routed, graph,
            timing, virtual_inputs, virtual_outputs, pad_inputs, pad_outputs,
        )
        if instrument is not None:
            ph.size = len(bitstream.frames_touched(arch))
    result = CompileResult(
        bitstream=bitstream,
        design=design,
        placement=placement,
        timing=timing,
        wirelength=wirelength,
        n_nets=len(routed),
        profile=instrument.profile() if instrument is not None else None,
    )
    if cache is not None and flow_key is not None:
        cache.store_result(flow_key, result, arch)
    return result


def _rect_token(region: Rect) -> Tuple[int, int, int, int]:
    """Hashable cache-key view of a region rectangle."""
    return (region.x, region.y, region.w, region.h)


def _generate_bitstream(
    netlist: Netlist,
    arch: Architecture,
    region: Rect,
    mode: str,
    design: PackedDesign,
    placement: Placement,
    routed: Dict[str, "RoutedNet"],
    graph: RoutingGraph,
    timing: TimingReport,
    virtual_inputs: Dict[str, Wire],
    virtual_outputs: Dict[str, Wire],
    pad_inputs: Dict[str, object],
    pad_outputs: Dict[str, object],
) -> Bitstream:
    """Configuration generation: routed design -> validated bitstream
    (the flow's final phase, split out so instrumentation can bracket
    it)."""
    clbs: Dict[Coord, ClbConfig] = {}
    for ble in design.bles:
        coord = placement.coords[ble.name]
        in_cands = clb_input_candidates(arch, coord.x, coord.y)
        out_cands = clb_output_candidates(arch, coord.x, coord.y)
        sels = [0] * arch.k
        for pin, _src in enumerate(ble.lut_inputs):
            rn = routed.get(_src)
            if rn is None:
                continue
            tap = rn.sink_taps.get(("clbpin", coord, pin))
            if tap is None:
                raise CompileError(
                    f"net {_src!r} missing tap for {ble.name!r} pin {pin}"
                )
            sels[pin] = in_cands.index(graph.nodes[tap]) + 1
        drives: Set[int] = set()
        rn = routed.get(ble.name)
        if rn is not None:
            for tap in rn.source_taps:
                drives.add(out_cands.index(graph.nodes[tap]))
        clbs[coord] = ClbConfig(
            lut_truth=ble.lut_truth,
            ff_enable=ble.registered,
            ff_init=ble.ff_init if ble.registered else 0,
            out_registered=ble.registered,
            input_sel=tuple(sels),
            out_drives=frozenset(drives),
        )

    switches: Dict[Coord, Set[Tuple[int, int]]] = {}
    pad_cfg: Dict[object, IobConfig] = {}
    for rn in routed.values():
        for (bx, by, track, pair_idx) in rn.switches:
            switches.setdefault(Coord(bx, by), set()).add((track, pair_idx))
        for site, track in rn.pad_taps.items():
            direction = (
                IobDirection.INPUT
                if site in pad_inputs.values()
                else IobDirection.OUTPUT
            )
            pad_cfg[site] = IobConfig(
                enable=True, direction=direction, track_sel=track + 1
            )

    bitstream = Bitstream(
        name=netlist.name,
        arch_name=arch.name,
        region=region,
        clbs=clbs,
        switches={c: frozenset(s) for c, s in switches.items()},
        iobs=dict(pad_cfg),
        relocatable=(mode == "relocatable"),
        state_bits={
            b.ff_name: placement.coords[b.name]
            for b in design.bles
            if b.registered
        },
        virtual_inputs=virtual_inputs,
        virtual_outputs=virtual_outputs,
        pad_inputs=dict(pad_inputs),
        pad_outputs=dict(pad_outputs),
        critical_path=timing.critical_path,
    )
    bitstream.validate(arch)
    return bitstream
