"""CAD-flow instrumentation: compile telemetry over the event bus.

The runtime side of the stack publishes simulation-time facts into the
:class:`~repro.telemetry.bus.EventBus`; this module extends the same
spine into the *offline* compile path (techmap → pack → place → route →
timing → bitgen), whose wall-clock cost is a first-class virtualization
overhead (compile time bounds how fast new circuits can enter a virtual
fabric).  Three pieces:

* **Typed CAD events** — :class:`CadPhaseStart`/:class:`CadPhaseEnd`
  bracket each flow phase (the end event carries wall ``seconds`` and a
  ``size`` describing the phase's output: cells mapped, BLEs packed,
  RRG nodes built, nets routed, frames generated);
  :class:`CadAnnealStep` records one simulated-annealing temperature
  step (temperature, moves evaluated, acceptance rate, running HPWL
  cost); :class:`CadRouteIteration` records one PathFinder rip-up round
  (overused wires, nets ripped up, pressure factor).  All four are
  registered on the live event registry, so recorded JSONL streams
  round-trip through :func:`~repro.telemetry.exporters.read_jsonl` and
  open in the same Chrome ``trace_event`` viewer as runtime traces.
* **:class:`CadInstrumentation`** — the opt-in hook threaded through
  :func:`~repro.cad.flow.compile_netlist`,
  :func:`~repro.cad.place.place` and
  :meth:`~repro.cad.route.Router.route`.  ``None`` (the default) means
  the flow runs exactly as before; when present, the hook only *reads*
  flow state and timestamps it — it never touches the placement RNG or
  any routing cost, so placements and bitstreams are bit-identical with
  instrumentation on or off (asserted by tests/cad/test_instrument.py).
* **:class:`CompileProfile`** — the aggregation attached to
  :class:`~repro.cad.flow.CompileResult`: per-phase wall-clock
  breakdown, the SA cost/acceptance curve, the router convergence
  curve, and the peak RRG node count.  Built purely from the event
  list, so a recorded stream reduces to the identical profile
  (``repro compile-report`` live-vs-recorded parity).

Event ``time`` is wall seconds since the instrumentation epoch (first
event), not simulation time: the compile path has no simulator, and a
relative wall clock keeps traces readable and recordings reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Sequence

from ..telemetry.bus import EventBus
from ..telemetry.events import TelemetryEvent, register_event_type

__all__ = [
    "CadPhaseStart",
    "CadPhaseEnd",
    "CadAnnealStep",
    "CadRouteIteration",
    "CadCacheLookup",
    "CadInstrumentation",
    "CompileProfile",
    "PHASES",
]

#: Canonical flow phase order (auto-region retries may repeat a prefix).
PHASES = ("techmap", "pack", "place", "rrg", "route", "timing", "bitgen")


@register_event_type
@dataclass(frozen=True)
class CadPhaseStart(TelemetryEvent):
    """A CAD flow phase began.  ``size`` is the phase's *input* measure
    (cells entering techmap, nets entering the router, …; 0 = n/a)."""

    phase: str = ""
    size: int = 0
    kind: ClassVar[Optional[str]] = None

    @property
    def detail(self) -> str:
        return self.phase


@register_event_type
@dataclass(frozen=True)
class CadPhaseEnd(TelemetryEvent):
    """A CAD flow phase finished.

    Published at the phase's *start* instant with its wall-clock
    ``seconds`` known (same convention as the runtime charge events), so
    it renders as a complete ("X") Chrome trace event spanning the
    phase.  ``size`` is the phase's *output* measure: cells mapped, BLEs
    packed, RRG nodes built, nets routed, timing paths, frames touched.
    """

    phase: str = ""
    seconds: float = 0.0
    size: int = 0
    kind: ClassVar[Optional[str]] = None

    @property
    def detail(self) -> str:
        return f"{self.phase} ({self.size})"


@register_event_type
@dataclass(frozen=True)
class CadAnnealStep(TelemetryEvent):
    """One simulated-annealing temperature step of the placer.

    ``acceptance`` is accepted/evaluated for the step (evaluated counts
    only moves that actually priced a swap — self-moves are skipped
    before pricing, exactly as the annealer always did); ``cost`` is the
    running HPWL total *after* the step.  ``wall_seconds`` is the wall
    time the step took (kept off the ``seconds`` duration attribute so
    per-phase and per-step times are not double-counted by profilers).
    """

    step: int = 0
    temperature: float = 0.0
    moves: int = 0
    accepted: int = 0
    cost: float = 0.0
    wall_seconds: float = 0.0
    kind: ClassVar[Optional[str]] = None

    @property
    def acceptance(self) -> float:
        return 0.0 if self.moves == 0 else self.accepted / self.moves

    @property
    def detail(self) -> str:
        return (f"T={self.temperature:.3g} cost={self.cost:.6g} "
                f"acc={self.acceptance:.0%}")


@register_event_type
@dataclass(frozen=True)
class CadRouteIteration(TelemetryEvent):
    """One PathFinder negotiated-congestion iteration.

    ``overused`` is the number of wires carrying more than one net
    after the iteration (0 = converged); ``ripped_up`` how many nets
    were re-routed this round; ``pressure`` the congestion pressure
    factor in force *during* the iteration.
    """

    iteration: int = 0
    overused: int = 0
    ripped_up: int = 0
    pressure: float = 0.0
    wall_seconds: float = 0.0
    kind: ClassVar[Optional[str]] = None

    @property
    def detail(self) -> str:
        return (f"iter {self.iteration}: {self.overused} overused, "
                f"{self.ripped_up} ripped")


@register_event_type
@dataclass(frozen=True)
class CadCacheLookup(TelemetryEvent):
    """One compile-cache consultation.

    ``stage`` is ``"flow"`` for the end-to-end result lookup or a stage
    cache name (``"pack"``, ``"place"``, ``"route"``); ``outcome`` is
    ``"hit"`` or ``"miss"``.  ``digest`` carries the netlist content
    digest the key was built from; ``bytes_served`` the configuration
    bytes a flow hit avoided regenerating (0 for stage lookups, whose
    value is the skipped phase wall-clock, visible in the phase table).
    """

    stage: str = ""
    outcome: str = ""
    digest: str = ""
    bytes_served: int = 0
    kind: ClassVar[Optional[str]] = None

    @property
    def detail(self) -> str:
        return f"{self.stage}: {self.outcome}"


class _PhaseHandle:
    """Mutable box a phase context yields so callers can set the output
    ``size`` discovered mid-phase (e.g. cells after mapping)."""

    __slots__ = ("size",)

    def __init__(self) -> None:
        self.size = 0


class _PhaseContext:
    def __init__(self, instr: "CadInstrumentation", phase: str,
                 size: int) -> None:
        self._instr = instr
        self._phase = phase
        self._size = size
        self._t0 = 0.0
        self._handle = _PhaseHandle()

    def __enter__(self) -> _PhaseHandle:
        self._t0 = self._instr._now()
        self._instr._emit(CadPhaseStart(
            time=self._t0, source=self._instr.source,
            phase=self._phase, size=self._size,
        ))
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> None:
        # Phases are recorded even when they raise (a RoutingError after
        # 24 iterations is exactly the wall-clock one wants to see).
        self._instr._emit(CadPhaseEnd(
            time=self._t0, source=self._instr.source,
            phase=self._phase, seconds=self._instr._now() - self._t0,
            size=self._handle.size,
        ))


class CadInstrumentation:
    """The opt-in compile-telemetry hook.

    Parameters
    ----------
    bus:
        Publish every event onto this bus as well (``None`` = collect
        only).  Events are always collected in :attr:`events` so the
        profile can be built without a subscriber.
    clock:
        Wall-clock source (injectable for deterministic tests).
    source:
        Event attribution string (the trace lane for phase events).

    The hook is **provably RNG-neutral**: no method touches a
    ``random.Random`` or mutates any flow structure — every hook point
    passes already-computed numbers in.  Disabled (``instrument=None``)
    flows publish nothing and take no timestamps.
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 source: str = "cad") -> None:
        self.bus = bus
        self.source = source
        self._clock = clock
        self._epoch: Optional[float] = None
        self.events: List[TelemetryEvent] = []

    # -- plumbing ----------------------------------------------------------
    def _now(self) -> float:
        now = self._clock()
        if self._epoch is None:
            self._epoch = now
        return now - self._epoch

    def now(self) -> float:
        """Wall seconds since the instrumentation epoch (for hook sites
        that time their own sub-steps with the injected clock)."""
        return self._now()

    def _emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)
        if self.bus is not None:
            self.bus.publish(event)

    # -- hook points -------------------------------------------------------
    def phase(self, name: str, size: int = 0) -> _PhaseContext:
        """Bracket one flow phase; yields a handle whose ``size`` becomes
        the :class:`CadPhaseEnd` output measure."""
        return _PhaseContext(self, name, size)

    def anneal_step(self, step: int, temperature: float, moves: int,
                    accepted: int, cost: float,
                    wall_seconds: float = 0.0) -> None:
        self._emit(CadAnnealStep(
            time=self._now(), source=self.source, step=step,
            temperature=temperature, moves=moves, accepted=accepted,
            cost=cost, wall_seconds=wall_seconds,
        ))

    def route_iteration(self, iteration: int, overused: int, ripped_up: int,
                        pressure: float, wall_seconds: float = 0.0) -> None:
        self._emit(CadRouteIteration(
            time=self._now(), source=self.source, iteration=iteration,
            overused=overused, ripped_up=ripped_up, pressure=pressure,
            wall_seconds=wall_seconds,
        ))

    def cache_lookup(self, stage: str, outcome: str, digest: str,
                     bytes_served: int = 0) -> None:
        self._emit(CadCacheLookup(
            time=self._now(), source=self.source, stage=stage,
            outcome=outcome, digest=digest, bytes_served=bytes_served,
        ))

    def profile(self) -> "CompileProfile":
        """Reduce the collected events to a :class:`CompileProfile`."""
        return CompileProfile.from_events(self.events)


@dataclass
class CompileProfile:
    """Aggregated compile telemetry of one flow run.

    Built purely from the event stream (:meth:`from_events`), so a
    recorded JSONL replay reduces to the identical profile — the
    compile-path analogue of the PR 2 live-vs-replay metrics parity.
    """

    #: Phase records in completion order: {"phase", "seconds", "size"}.
    phases: List[Dict[str, object]] = field(default_factory=list)
    #: SA curve: {"step", "temperature", "moves", "accepted",
    #: "acceptance", "cost"} per temperature step.
    sa_curve: List[Dict[str, object]] = field(default_factory=list)
    #: Router curve: {"iteration", "overused", "ripped_up", "pressure"}.
    route_curve: List[Dict[str, object]] = field(default_factory=list)
    #: Compile-cache consultations: {"stage", "outcome", "bytes_served"}.
    cache_lookups: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: Sequence[TelemetryEvent]) -> "CompileProfile":
        prof = cls()
        for ev in events:
            if isinstance(ev, CadPhaseEnd):
                prof.phases.append({
                    "phase": ev.phase,
                    "seconds": ev.seconds,
                    "size": ev.size,
                })
            elif isinstance(ev, CadAnnealStep):
                prof.sa_curve.append({
                    "step": ev.step,
                    "temperature": ev.temperature,
                    "moves": ev.moves,
                    "accepted": ev.accepted,
                    "acceptance": ev.acceptance,
                    "cost": ev.cost,
                })
            elif isinstance(ev, CadRouteIteration):
                prof.route_curve.append({
                    "iteration": ev.iteration,
                    "overused": ev.overused,
                    "ripped_up": ev.ripped_up,
                    "pressure": ev.pressure,
                })
            elif isinstance(ev, CadCacheLookup):
                prof.cache_lookups.append({
                    "stage": ev.stage,
                    "outcome": ev.outcome,
                    "bytes_served": ev.bytes_served,
                })
        return prof

    # -- views -------------------------------------------------------------
    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Wall seconds summed per phase name (retries accumulate)."""
        out: Dict[str, float] = {}
        for rec in self.phases:
            name = str(rec["phase"])
            out[name] = out.get(name, 0.0) + float(rec["seconds"])  # type: ignore[arg-type]
        return out

    @property
    def total_seconds(self) -> float:
        return sum(float(rec["seconds"]) for rec in self.phases)  # type: ignore[arg-type]

    @property
    def peak_rrg_nodes(self) -> int:
        """Largest routing graph built (auto-region retries may build
        several)."""
        sizes = [int(rec["size"]) for rec in self.phases  # type: ignore[arg-type]
                 if rec["phase"] == "rrg"]
        return max(sizes, default=0)

    @property
    def sa_steps(self) -> int:
        return len(self.sa_curve)

    @property
    def route_iterations(self) -> int:
        return len(self.route_curve)

    @property
    def final_cost(self) -> float:
        """HPWL cost after the last SA step (0.0 = no annealing ran)."""
        return float(self.sa_curve[-1]["cost"]) if self.sa_curve else 0.0  # type: ignore[arg-type]

    @property
    def final_overuse(self) -> int:
        return int(self.route_curve[-1]["overused"]) if self.route_curve else 0  # type: ignore[arg-type]

    # -- cache views -------------------------------------------------------
    def _cache_count(self, outcome: str, flow: bool) -> int:
        return sum(
            1 for rec in self.cache_lookups
            if rec["outcome"] == outcome and (rec["stage"] == "flow") is flow
        )

    @property
    def cache_hits(self) -> int:
        """End-to-end compile-cache hits (whole flow served)."""
        return self._cache_count("hit", flow=True)

    @property
    def cache_misses(self) -> int:
        return self._cache_count("miss", flow=True)

    @property
    def cache_stage_hits(self) -> int:
        """Stage-partial hits (pack/place/route served, rest recompiled)."""
        return self._cache_count("hit", flow=False)

    @property
    def cache_bytes_served(self) -> int:
        return sum(int(rec["bytes_served"]) for rec in self.cache_lookups)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view: the ``compile`` block of ``BENCH_*.json``."""
        return {
            "phases": [dict(rec) for rec in self.phases],
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
            "total_seconds": self.total_seconds,
            "peak_rrg_nodes": self.peak_rrg_nodes,
            "sa_steps": self.sa_steps,
            "sa_curve": [dict(rec) for rec in self.sa_curve],
            "final_cost": self.final_cost,
            "route_iterations": self.route_iterations,
            "route_curve": [dict(rec) for rec in self.route_curve],
            "final_overuse": self.final_overuse,
            "cache": {
                "lookups": [dict(rec) for rec in self.cache_lookups],
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "stage_partial_hits": self.cache_stage_hits,
                "bytes_served": self.cache_bytes_served,
            },
        }

    def render(self, title: str = "compile profile") -> str:
        """The ``repro compile-report`` tables: per-phase wall-clock,
        the SA cost/acceptance curve, the router convergence curve."""
        from ..analysis import format_table

        total = self.total_seconds
        phase_rows = [
            {
                "phase": rec["phase"],
                "size": rec["size"],
                "wall": _fmt_wall(float(rec["seconds"])),  # type: ignore[arg-type]
                "share": (f"{float(rec['seconds']) / total:6.1%}"  # type: ignore[arg-type]
                          if total > 0 else "-"),
            }
            for rec in self.phases
        ]
        phase_rows.append({
            "phase": "total", "size": "",
            "wall": _fmt_wall(total), "share": "100.0%" if total > 0 else "-",
        })
        parts = [format_table(
            phase_rows, title=f"{title} — per-phase wall clock"
        )]
        if self.sa_curve:
            sa_rows = [
                {
                    "step": rec["step"],
                    "temperature": f"{float(rec['temperature']):.4g}",  # type: ignore[arg-type]
                    "moves": rec["moves"],
                    "accepted": rec["accepted"],
                    "acceptance": f"{float(rec['acceptance']):.1%}",  # type: ignore[arg-type]
                    "hpwl": f"{float(rec['cost']):.6g}",  # type: ignore[arg-type]
                }
                for rec in _downsample(self.sa_curve)
            ]
            parts.append(format_table(
                sa_rows,
                title=f"{title} — SA cost curve ({self.sa_steps} steps)",
            ))
        if self.route_curve:
            route_rows = [
                {
                    "iteration": rec["iteration"],
                    "overused": rec["overused"],
                    "ripped_up": rec["ripped_up"],
                    "pressure": f"{float(rec['pressure']):.4g}",  # type: ignore[arg-type]
                }
                for rec in _downsample(self.route_curve)
            ]
            parts.append(format_table(
                route_rows,
                title=f"{title} — PathFinder convergence "
                      f"({self.route_iterations} iterations, "
                      f"peak RRG {self.peak_rrg_nodes} nodes)",
            ))
        if self.cache_lookups:
            stages = []
            for rec in self.cache_lookups:
                if rec["stage"] not in stages:
                    stages.append(rec["stage"])
            cache_rows = [
                {
                    "stage": stage,
                    "hits": sum(1 for r in self.cache_lookups
                                if r["stage"] == stage
                                and r["outcome"] == "hit"),
                    "misses": sum(1 for r in self.cache_lookups
                                  if r["stage"] == stage
                                  and r["outcome"] == "miss"),
                    "bytes_served": sum(
                        int(r["bytes_served"]) for r in self.cache_lookups  # type: ignore[arg-type]
                        if r["stage"] == stage
                    ),
                }
                for stage in stages
            ]
            parts.append(format_table(
                cache_rows,
                title=f"{title} — compile cache "
                      f"({self.cache_hits} flow hits, "
                      f"{self.cache_stage_hits} stage-partial hits, "
                      f"{self.cache_bytes_served} bytes served)",
            ))
        return "\n\n".join(parts)


def _fmt_wall(seconds: float) -> str:
    """Wall-clock formatting (µs–s range, compile phases are fast)."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} us"


def _downsample(rows: List[Dict[str, object]],
                limit: int = 24) -> List[Dict[str, object]]:
    """At most ``limit`` rows, always keeping the first and last (long
    SA schedules stay readable in a terminal)."""
    if len(rows) <= limit:
        return rows
    stride = (len(rows) - 1) / (limit - 1)
    picked = [rows[round(i * stride)] for i in range(limit - 1)]
    picked.append(rows[-1])
    return picked
