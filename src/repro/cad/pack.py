"""Packing: mapped netlists → basic logic elements (one per CLB).

A BLE is what one CLB implements: a LUT, optionally feeding the CLB's
flip-flop, with one output net.  Packing fuses each DFF with its driving
LUT when that LUT has no other reader (the classic BLE pattern); DFFs
whose driver is shared (or is a primary input / another DFF) get a
pass-through identity LUT.  Primary outputs fed directly by primary
inputs receive a feed-through BLE so there is always CLB logic to route
through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..netlist import CellKind, Netlist
from .techmap import check_mapped

__all__ = ["Ble", "PackedDesign", "pack", "PackError"]

#: Identity LUT over one input: out = in.
IDENTITY_TRUTH = 0b10


class PackError(Exception):
    """The mapped netlist cannot be packed."""


@dataclass(frozen=True)
class Ble:
    """One basic logic element (will occupy one CLB).

    ``name`` doubles as the BLE's output net name: consumers of the packed
    design reference BLE outputs by it.
    """

    name: str
    lut_inputs: Tuple[str, ...]
    lut_truth: int
    registered: bool = False
    ff_name: str | None = None
    ff_init: int = 0

    def __post_init__(self) -> None:
        if self.registered and self.ff_name is None:
            raise PackError(f"registered BLE {self.name!r} must carry its FF name")


@dataclass
class PackedDesign:
    """A netlist expressed as BLEs + port bindings."""

    name: str
    k: int
    bles: List[Ble] = field(default_factory=list)
    inputs: List[str] = field(default_factory=list)
    #: primary output port name → source net (a BLE name or primary input).
    outputs: Dict[str, str] = field(default_factory=dict)

    @property
    def n_clbs(self) -> int:
        return len(self.bles)

    @property
    def state_bit_names(self) -> List[str]:
        return [b.ff_name for b in self.bles if b.registered]

    def ble_by_name(self) -> Dict[str, Ble]:
        return {b.name: b for b in self.bles}

    def validate(self) -> None:
        names = set(self.inputs)
        for ble in self.bles:
            if ble.name in names:
                raise PackError(f"duplicate net name {ble.name!r}")
            names.add(ble.name)
        for ble in self.bles:
            if len(ble.lut_inputs) > self.k:
                raise PackError(f"BLE {ble.name!r} has {len(ble.lut_inputs)} inputs")
            for net in ble.lut_inputs:
                if net not in names:
                    raise PackError(f"BLE {ble.name!r} reads unknown net {net!r}")
        for port, src in self.outputs.items():
            if src not in names:
                raise PackError(f"output {port!r} reads unknown net {src!r}")


def pack(netlist: Netlist, k: int) -> PackedDesign:
    """Pack a mapped netlist (see :func:`repro.cad.techmap.technology_map`)."""
    check_mapped(netlist, k)
    design = PackedDesign(name=netlist.name, k=k)
    design.inputs = [c.name for c in netlist.primary_inputs]

    absorbed: Dict[str, str] = {}  # LUT name -> DFF that absorbed it
    for dff in netlist.flipflops:
        driver_name = dff.fanin[0]
        driver = netlist.cells.get(driver_name)
        if (
            driver is not None
            and driver.kind is CellKind.LUT
            and netlist.fanout(driver_name) == [dff.name]
            and driver_name not in absorbed
        ):
            absorbed[driver_name] = dff.name

    for dff in netlist.flipflops:
        driver_name = dff.fanin[0]
        if absorbed.get(driver_name) == dff.name:
            driver = netlist.cells[driver_name]
            design.bles.append(
                Ble(
                    name=dff.name,
                    lut_inputs=driver.fanin,
                    lut_truth=driver.truth,
                    registered=True,
                    ff_name=dff.name,
                    ff_init=dff.init,
                )
            )
        else:
            design.bles.append(
                Ble(
                    name=dff.name,
                    lut_inputs=(driver_name,),
                    lut_truth=IDENTITY_TRUTH,
                    registered=True,
                    ff_name=dff.name,
                    ff_init=dff.init,
                )
            )

    for cell in netlist.cells.values():
        if cell.kind is CellKind.LUT and cell.name not in absorbed:
            design.bles.append(
                Ble(name=cell.name, lut_inputs=cell.fanin, lut_truth=cell.truth)
            )

    input_set = set(design.inputs)
    feedthroughs: Dict[str, str] = {}
    for out in netlist.primary_outputs:
        src = out.fanin[0]
        if src in input_set:
            feed = feedthroughs.get(src)
            if feed is None:
                feed = f"{src}__feed"
                design.bles.append(
                    Ble(name=feed, lut_inputs=(src,), lut_truth=IDENTITY_TRUTH)
                )
                feedthroughs[src] = feed
            design.outputs[out.name] = feed
        else:
            design.outputs[out.name] = src

    design.validate()
    return design


def nets_of(design: PackedDesign) -> Dict[str, List[Tuple[str, int]]]:
    """Signal nets of a packed design: source net → [(ble name, pin)].

    Primary-output taps are not included (they terminate at pads or
    virtual pins, which the router handles separately).  Nets with no
    sinks at all are omitted.
    """
    nets: Dict[str, List[Tuple[str, int]]] = {}
    for ble in design.bles:
        for pin, src in enumerate(ble.lut_inputs):
            nets.setdefault(src, []).append((ble.name, pin))
    return nets
