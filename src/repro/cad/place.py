"""Placement: assign each BLE to a CLB site inside the target region.

Two effort levels:

* ``greedy`` — connectivity-ordered constructive placement only (fast, for
  tests and small circuits);
* ``sa`` — the greedy start refined by seeded simulated annealing over
  half-perimeter wirelength (HPWL), with swap/relocate moves.  This is the
  default and what experiment E13 ablates against ``greedy``.

Placement is always *region-relative feasible*: every site lies inside the
region, so the result translates with the region (relocatable bitstreams).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..device import Coord, Rect
from .pack import PackedDesign, nets_of

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cost
    from .instrument import CadInstrumentation

__all__ = ["Placement", "place", "PlacementError", "hpwl"]


class PlacementError(Exception):
    """The design does not fit the region."""


@dataclass
class Placement:
    """BLE → CLB site assignment for one design in one region."""

    design: PackedDesign
    region: Rect
    coords: Dict[str, Coord] = field(default_factory=dict)

    def validate(self) -> None:
        seen: Dict[Coord, str] = {}
        for name, c in self.coords.items():
            if not self.region.contains(c):
                raise PlacementError(f"BLE {name!r} at {c} outside {self.region}")
            if c in seen:
                raise PlacementError(f"site {c} double-booked: {seen[c]!r}, {name!r}")
            seen[c] = name
        missing = {b.name for b in self.design.bles} - set(self.coords)
        if missing:
            raise PlacementError(f"unplaced BLEs: {sorted(missing)[:5]}")

    def wirelength(self) -> float:
        return hpwl(self.design, self.coords)


def _net_terminals(design: PackedDesign) -> List[List[str]]:
    """BLE-name terminal lists per net (primary ports excluded — their
    position is a boundary decided later by pin assignment)."""
    ble_names = {b.name for b in design.bles}
    nets: List[List[str]] = []
    for src, sinks in nets_of(design).items():
        terms = [name for name, _pin in sinks]
        if src in ble_names:
            terms.append(src)
        terms = list(dict.fromkeys(terms))
        if len(terms) >= 2:
            nets.append(terms)
    return nets


def hpwl(design: PackedDesign, coords: Dict[str, Coord]) -> float:
    """Total half-perimeter wirelength over multi-terminal nets."""
    total = 0.0
    for terms in _net_terminals(design):
        xs = [coords[t].x for t in terms]
        ys = [coords[t].y for t in terms]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def place(
    design: PackedDesign,
    region: Rect,
    seed: int = 0,
    effort: str = "sa",
    instrument: Optional["CadInstrumentation"] = None,
) -> Placement:
    """Place ``design`` into ``region``.

    ``instrument`` (a :class:`~repro.cad.instrument.CadInstrumentation`)
    receives one :class:`~repro.cad.instrument.CadAnnealStep` per SA
    temperature step; it is never consulted for decisions, so results
    are bit-identical with or without it.

    Raises :class:`PlacementError` when the design needs more CLBs than
    the region offers — the paper's "circuit too large" admission failure.
    """
    if effort not in ("greedy", "sa"):
        raise ValueError(f"unknown effort {effort!r}")
    n = design.n_clbs
    if n > region.area:
        raise PlacementError(
            f"{design.name!r} needs {n} CLBs but region {region} has {region.area}"
        )
    sites = list(region.coords())
    # Constructive start: BFS over connectivity from the most-connected BLE
    # so related logic lands on nearby (column-major-adjacent) sites.
    order = _connectivity_order(design)
    coords = {name: sites[i] for i, name in enumerate(order)}
    placement = Placement(design=design, region=region, coords=coords)
    placement.validate()
    if effort == "sa" and n >= 2:
        _anneal(placement, sites, seed, instrument)
        placement.validate()
    return placement


def _connectivity_order(design: PackedDesign) -> List[str]:
    """BFS order over the BLE adjacency graph, highest-degree seed first."""
    adj: Dict[str, List[str]] = {b.name: [] for b in design.bles}
    for terms in _net_terminals(design):
        for a in terms:
            for b in terms:
                if a != b:
                    adj[a].append(b)
    order: List[str] = []
    visited = set()
    remaining = sorted(adj, key=lambda n: -len(adj[n]))
    for seed_name in remaining:
        if seed_name in visited:
            continue
        queue = [seed_name]
        visited.add(seed_name)
        while queue:
            cur = queue.pop(0)
            order.append(cur)
            for nxt in adj[cur]:
                if nxt not in visited:
                    visited.add(nxt)
                    queue.append(nxt)
    return order


def _anneal(
    placement: Placement,
    sites: List[Coord],
    seed: int,
    instrument: Optional["CadInstrumentation"] = None,
) -> None:
    """In-place simulated-annealing refinement of ``placement.coords``.

    The ``instrument`` hook observes each temperature step after its
    moves are decided (the RNG draw sequence is a function of the seed
    and the move outcomes alone), keeping instrumented and plain runs
    bit-identical.
    """
    rng = random.Random(seed)
    design = placement.design
    coords = placement.coords
    nets = _net_terminals(design)
    nets_of_ble: Dict[str, List[int]] = {b.name: [] for b in design.bles}
    for i, terms in enumerate(nets):
        for t in terms:
            nets_of_ble[t].append(i)

    def net_cost(i: int) -> float:
        xs = [coords[t].x for t in nets[i]]
        ys = [coords[t].y for t in nets[i]]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    site_to_ble: Dict[Coord, Optional[str]] = {s: None for s in sites}
    for name, c in coords.items():
        site_to_ble[c] = name
    names = [b.name for b in design.bles]
    cost = sum(net_cost(i) for i in range(len(nets)))
    temp = max(1.0, cost * 0.2)
    moves_per_temp = max(16, 8 * len(names))
    step = 0
    while temp > 0.05:
        step_t0 = instrument.now() if instrument is not None else 0.0
        accepted = 0
        evaluated = 0
        for _ in range(moves_per_temp):
            a = rng.choice(names)
            target = rng.choice(sites)
            ca = coords[a]
            if target == ca:
                continue
            evaluated += 1
            b = site_to_ble[target]
            affected = set(nets_of_ble[a])
            if b is not None:
                affected |= set(nets_of_ble[b])
            before = sum(net_cost(i) for i in affected)
            coords[a] = target
            site_to_ble[target] = a
            if b is not None:
                coords[b] = ca
                site_to_ble[ca] = b
            else:
                site_to_ble[ca] = None
            after = sum(net_cost(i) for i in affected)
            delta = after - before
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                cost += delta
                accepted += 1
            else:  # revert
                coords[a] = ca
                site_to_ble[ca] = a
                if b is not None:
                    coords[b] = target
                    site_to_ble[target] = b
                else:
                    site_to_ble[target] = None
        if instrument is not None:
            instrument.anneal_step(
                step=step, temperature=temp, moves=evaluated,
                accepted=accepted, cost=cost,
                wall_seconds=instrument.now() - step_t0,
            )
        step += 1
        temp *= 0.8
        if accepted == 0:
            break
