"""Placement: assign each BLE to a CLB site inside the target region.

Two effort levels:

* ``greedy`` — connectivity-ordered constructive placement only (fast, for
  tests and small circuits);
* ``sa`` — the greedy start refined by seeded simulated annealing over
  half-perimeter wirelength (HPWL), with swap/relocate moves.  This is the
  default and what experiment E13 ablates against ``greedy``.

Two annealing engines behind one RNG contract:

* ``scalar`` — the reference implementation: per-net python ``max``/``min``
  sums, exactly as the annealer has always priced moves;
* ``vector`` — numpy array state: BLE→site coordinates live in one int
  array, nets are flattened terminal-index slices, and a move's affected
  nets are re-priced with two ``reduceat`` reductions over a precomputed
  per-BLE (or per-pair) slice table.

HPWL is integer-valued, so both engines compute *exactly* the same deltas,
consume the RNG stream identically (``random()`` is drawn only when
``delta > 0``) and therefore accept exactly the same moves — pinned
bit-identical by tests/cad/test_place_parity.py, the same discipline the
FrameCodec vs. reference codec equality tests use.  ``engine="auto"``
(the default) picks ``vector`` above :data:`VECTOR_MIN_BLES` BLEs, where
the numpy per-call overhead is amortized by net fanout.

Placement is always *region-relative feasible*: every site lies inside the
region, so the result translates with the region (relocatable bitstreams).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..device import Coord, Rect
from .pack import PackedDesign, nets_of

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cost
    from .instrument import CadInstrumentation

__all__ = ["Placement", "place", "PlacementError", "hpwl", "VECTOR_MIN_BLES"]

#: ``engine="auto"`` switches to the numpy annealer at this design size.
#: Below it the fixed per-move numpy call cost outweighs what vectorized
#: max/min saves on the few, narrow nets a move touches (measured
#: break-even ~0.98x at 12 BLEs, ~2x from ~46 BLEs up).
VECTOR_MIN_BLES = 24


class PlacementError(Exception):
    """The design does not fit the region."""


@dataclass
class Placement:
    """BLE → CLB site assignment for one design in one region."""

    design: PackedDesign
    region: Rect
    coords: Dict[str, Coord] = field(default_factory=dict)

    def validate(self) -> None:
        seen: Dict[Coord, str] = {}
        for name, c in self.coords.items():
            if not self.region.contains(c):
                raise PlacementError(f"BLE {name!r} at {c} outside {self.region}")
            if c in seen:
                raise PlacementError(f"site {c} double-booked: {seen[c]!r}, {name!r}")
            seen[c] = name
        missing = {b.name for b in self.design.bles} - set(self.coords)
        if missing:
            raise PlacementError(f"unplaced BLEs: {sorted(missing)[:5]}")

    def wirelength(self) -> float:
        return hpwl(self.design, self.coords)


#: Instance-memo attribute for :func:`_net_terminals` (same discipline as
#: the bitstream content digest in :mod:`repro.core.bitcache`).
_NET_TERMINALS_ATTR = "_repro_net_terminals"


def _net_terminals(design: PackedDesign) -> List[List[str]]:
    """BLE-name terminal lists per net (primary ports excluded — their
    position is a boundary decided later by pin assignment).

    Memoised per design instance: ``hpwl`` is called once per
    :meth:`Placement.wirelength` and both placement effort levels walk
    the same extraction, while a :class:`PackedDesign` is immutable in
    practice after :func:`~repro.cad.pack.pack` returns.  Callers must
    treat the returned lists as read-only.
    """
    cached = getattr(design, _NET_TERMINALS_ATTR, None)
    if cached is not None:
        return cached
    ble_names = {b.name for b in design.bles}
    nets: List[List[str]] = []
    for src, sinks in nets_of(design).items():
        terms = [name for name, _pin in sinks]
        if src in ble_names:
            terms.append(src)
        terms = list(dict.fromkeys(terms))
        if len(terms) >= 2:
            nets.append(terms)
    setattr(design, _NET_TERMINALS_ATTR, nets)
    return nets


def hpwl(design: PackedDesign, coords: Dict[str, Coord]) -> float:
    """Total half-perimeter wirelength over multi-terminal nets."""
    total = 0.0
    for terms in _net_terminals(design):
        xs = [coords[t].x for t in terms]
        ys = [coords[t].y for t in terms]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def place(
    design: PackedDesign,
    region: Rect,
    seed: int = 0,
    effort: str = "sa",
    instrument: Optional["CadInstrumentation"] = None,
    engine: str = "auto",
) -> Placement:
    """Place ``design`` into ``region``.

    ``instrument`` (a :class:`~repro.cad.instrument.CadInstrumentation`)
    receives one :class:`~repro.cad.instrument.CadAnnealStep` per SA
    temperature step; it is never consulted for decisions, so results
    are bit-identical with or without it.

    ``engine`` selects the annealing kernel: ``"scalar"`` (the reference
    implementation), ``"vector"`` (numpy array state) or ``"auto"``
    (vector above :data:`VECTOR_MIN_BLES` BLEs).  The engines accept the
    same moves and produce the same coordinates for the same seed.

    Raises :class:`PlacementError` when the design needs more CLBs than
    the region offers — the paper's "circuit too large" admission failure.
    """
    if effort not in ("greedy", "sa"):
        raise ValueError(f"unknown effort {effort!r}")
    if engine not in ("auto", "scalar", "vector"):
        raise ValueError(f"unknown placement engine {engine!r}")
    n = design.n_clbs
    if n > region.area:
        raise PlacementError(
            f"{design.name!r} needs {n} CLBs but region {region} has {region.area}"
        )
    sites = list(region.coords())
    # Constructive start: BFS over connectivity from the most-connected BLE
    # so related logic lands on nearby (column-major-adjacent) sites.
    order = _connectivity_order(design)
    coords = {name: sites[i] for i, name in enumerate(order)}
    placement = Placement(design=design, region=region, coords=coords)
    placement.validate()
    if effort == "sa" and n >= 2:
        _anneal(placement, sites, seed, instrument, engine=engine)
        placement.validate()
    return placement


def _connectivity_order(design: PackedDesign) -> List[str]:
    """BFS order over the BLE adjacency graph, highest-degree seed first."""
    adj: Dict[str, List[str]] = {b.name: [] for b in design.bles}
    for terms in _net_terminals(design):
        for a in terms:
            for b in terms:
                if a != b:
                    adj[a].append(b)
    order: List[str] = []
    visited = set()
    remaining = sorted(adj, key=lambda n: -len(adj[n]))
    for seed_name in remaining:
        if seed_name in visited:
            continue
        queue = deque([seed_name])
        visited.add(seed_name)
        while queue:
            cur = queue.popleft()
            order.append(cur)
            for nxt in adj[cur]:
                if nxt not in visited:
                    visited.add(nxt)
                    queue.append(nxt)
    return order


def _anneal(
    placement: Placement,
    sites: List[Coord],
    seed: int,
    instrument: Optional["CadInstrumentation"] = None,
    engine: str = "auto",
) -> None:
    """In-place simulated-annealing refinement of ``placement.coords``.

    The ``instrument`` hook observes each temperature step after its
    moves are decided (the RNG draw sequence is a function of the seed
    and the move outcomes alone), keeping instrumented and plain runs
    bit-identical.  ``engine`` picks the kernel; the result does not
    depend on it.
    """
    if engine == "auto":
        engine = "vector" if len(placement.design.bles) >= VECTOR_MIN_BLES \
            else "scalar"
    if engine == "vector":
        _anneal_vector(placement, sites, seed, instrument)
    else:
        _anneal_scalar(placement, sites, seed, instrument)


def _anneal_scalar(
    placement: Placement,
    sites: List[Coord],
    seed: int,
    instrument: Optional["CadInstrumentation"] = None,
) -> None:
    """The reference annealer: per-net python max/min move pricing.

    Kept verbatim as the behavioral pin for the vector engine — the
    parity tests compare every accepted move and final coordinate
    against this implementation.
    """
    rng = random.Random(seed)
    design = placement.design
    coords = placement.coords
    nets = _net_terminals(design)
    nets_of_ble: Dict[str, List[int]] = {b.name: [] for b in design.bles}
    for i, terms in enumerate(nets):
        for t in terms:
            nets_of_ble[t].append(i)

    def net_cost(i: int) -> float:
        xs = [coords[t].x for t in nets[i]]
        ys = [coords[t].y for t in nets[i]]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    site_to_ble: Dict[Coord, Optional[str]] = {s: None for s in sites}
    for name, c in coords.items():
        site_to_ble[c] = name
    names = [b.name for b in design.bles]
    cost = sum(net_cost(i) for i in range(len(nets)))
    temp = max(1.0, cost * 0.2)
    moves_per_temp = max(16, 8 * len(names))
    step = 0
    while temp > 0.05:
        step_t0 = instrument.now() if instrument is not None else 0.0
        accepted = 0
        evaluated = 0
        for _ in range(moves_per_temp):
            a = rng.choice(names)
            target = rng.choice(sites)
            ca = coords[a]
            if target == ca:
                continue
            evaluated += 1
            b = site_to_ble[target]
            affected = set(nets_of_ble[a])
            if b is not None:
                affected |= set(nets_of_ble[b])
            before = sum(net_cost(i) for i in affected)
            coords[a] = target
            site_to_ble[target] = a
            if b is not None:
                coords[b] = ca
                site_to_ble[ca] = b
            else:
                site_to_ble[ca] = None
            after = sum(net_cost(i) for i in affected)
            delta = after - before
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                cost += delta
                accepted += 1
            else:  # revert
                coords[a] = ca
                site_to_ble[ca] = a
                if b is not None:
                    coords[b] = target
                    site_to_ble[target] = b
                else:
                    site_to_ble[target] = None
        if instrument is not None:
            instrument.anneal_step(
                step=step, temperature=temp, moves=evaluated,
                accepted=accepted, cost=cost,
                wall_seconds=instrument.now() - step_t0,
            )
        step += 1
        temp *= 0.8
        if accepted == 0:
            break


#: One precomputed move-pricing table: ``flat2`` indexes the combined
#: x|y coordinate array for every terminal of every affected net (the x
#: block first, then the y block offset by ``n``), ``starts2`` are the
#: matching ``reduceat`` segment boundaries, ``netids`` the affected net
#: indices and ``k`` their count.
_MoveTable = Tuple[np.ndarray, np.ndarray, np.ndarray, int]


def _anneal_vector(
    placement: Placement,
    sites: List[Coord],
    seed: int,
    instrument: Optional["CadInstrumentation"] = None,
) -> None:
    """The numpy annealer — bit-identical to :func:`_anneal_scalar`.

    Array state: BLE coordinates live in one ``(2n,)`` int64 array
    (x block then y block), nets in a flattened terminal-index CSR.
    A move re-prices exactly its affected nets with one fancy index and
    two ``reduceat`` reductions over a per-BLE (relocate) or per-pair
    (swap, built lazily) slice table; the untouched nets' spans are
    served from a per-net span cache, so ``before`` costs nothing.

    Exactness: HPWL spans are integers, every delta is an exact int in
    both engines, and the acceptance draw ``rng.random()`` happens only
    when ``delta > 0`` — so the RNG stream, the accepted-move sequence,
    the running cost and the final coordinates all match the scalar
    reference bit for bit.
    """
    rng = random.Random(seed)
    design = placement.design
    coords = placement.coords
    nets = _net_terminals(design)
    names = [b.name for b in design.bles]
    n = len(names)
    idx = {nm: i for i, nm in enumerate(names)}

    # Net CSR: flattened terminal indices + per-net extents.
    term_flat = np.array(
        [idx[t] for terms in nets for t in terms], dtype=np.int64
    )
    net_ptr = np.zeros(len(nets) + 1, dtype=np.int64)
    for i, terms in enumerate(nets):
        net_ptr[i + 1] = net_ptr[i] + len(terms)

    # Incidence: BLE index -> net indices touching it.
    nets_of_ble: List[List[int]] = [[] for _ in range(n)]
    for i, terms in enumerate(nets):
        for t in terms:
            nets_of_ble[idx[t]].append(i)

    def make_table(netids: List[int]) -> _MoveTable:
        parts = [term_flat[net_ptr[i]:net_ptr[i + 1]] for i in netids]
        flat = np.concatenate(parts) if parts else np.zeros(0, np.int64)
        k = len(netids)
        starts = np.zeros(k, dtype=np.int64)
        off = 0
        for j, i in enumerate(netids):
            starts[j] = off
            off += int(net_ptr[i + 1] - net_ptr[i])
        flat2 = np.concatenate([flat, flat + n])
        starts2 = np.concatenate([starts, starts + len(flat)])
        return flat2, starts2, np.asarray(netids, dtype=np.int64), k

    ble_tab: List[_MoveTable] = [make_table(l) for l in nets_of_ble]
    pair_tab: Dict[Tuple[int, int], _MoveTable] = {}

    # Combined coordinate array: CXY[:n] = x, CXY[n:] = y.
    cxy = np.empty(2 * n, dtype=np.int64)
    for i in range(n):
        c = coords[names[i]]
        cxy[i] = c.x
        cxy[n + i] = c.y
    site_owner: Dict[Coord, int] = {
        coords[names[i]]: i for i in range(n)
    }

    # Per-net span cache (x extent + y extent, exact ints).
    xs = cxy[term_flat]
    ys = cxy[term_flat + n]
    seg = net_ptr[:-1]
    netspans = (
        np.maximum.reduceat(xs, seg) - np.minimum.reduceat(xs, seg)
        + np.maximum.reduceat(ys, seg) - np.minimum.reduceat(ys, seg)
    ) if len(nets) else np.zeros(0, np.int64)
    cost = int(netspans.sum())
    temp = max(1.0, cost * 0.2)
    moves_per_temp = max(16, 8 * n)
    step = 0
    maxr = np.maximum.reduceat
    minr = np.minimum.reduceat
    while temp > 0.05:
        step_t0 = instrument.now() if instrument is not None else 0.0
        accepted = 0
        evaluated = 0
        for _ in range(moves_per_temp):
            a = rng.choice(names)
            target = rng.choice(sites)
            ai = idx[a]
            cax = cxy[ai]
            cay = cxy[n + ai]
            if target[0] == cax and target[1] == cay:
                continue
            evaluated += 1
            bi = site_owner.get(target)
            if bi is None:
                flat2, starts2, netids, k = ble_tab[ai]
            else:
                key = (ai, bi) if ai <= bi else (bi, ai)
                tab = pair_tab.get(key)
                if tab is None:
                    union = np.union1d(ble_tab[ai][2], ble_tab[bi][2])
                    tab = make_table([int(i) for i in union])
                    pair_tab[key] = tab
                flat2, starts2, netids, k = tab
            if k:
                before = int(netspans[netids].sum())
                cxy[ai] = target[0]
                cxy[n + ai] = target[1]
                if bi is not None:
                    cxy[bi] = cax
                    cxy[n + bi] = cay
                v = cxy[flat2]
                s = maxr(v, starts2) - minr(v, starts2)
                spans = s[:k] + s[k:]
                delta = int(spans.sum()) - before
            else:  # isolated BLE(s): no net touched, free move
                cxy[ai] = target[0]
                cxy[n + ai] = target[1]
                if bi is not None:
                    cxy[bi] = cax
                    cxy[n + bi] = cay
                spans = netspans[:0]
                delta = 0
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                cost += delta
                accepted += 1
                netspans[netids] = spans
                old = Coord(int(cax), int(cay))
                site_owner[target] = ai
                if bi is not None:
                    site_owner[old] = bi
                else:
                    del site_owner[old]
            else:  # revert
                cxy[ai] = cax
                cxy[n + ai] = cay
                if bi is not None:
                    cxy[bi] = target[0]
                    cxy[n + bi] = target[1]
        if instrument is not None:
            instrument.anneal_step(
                step=step, temperature=temp, moves=evaluated,
                accepted=accepted, cost=cost,
                wall_seconds=instrument.now() - step_t0,
            )
        step += 1
        temp *= 0.8
        if accepted == 0:
            break
    for i, nm in enumerate(names):
        coords[nm] = Coord(int(cxy[i]), int(cxy[n + i]))
