"""Negotiated-congestion routing (PathFinder-style).

Every signal net is routed as a Steiner tree over the routing graph; all
nets share wires freely in early iterations, then congestion cost and an
accumulating history term force them apart until every wire carries at
most one net.  Each routed net records enough structure (source taps, sink
taps, enabled switches, pad taps, per-sink path lengths) to be turned
directly into configuration bits and timing numbers.

Router state (occupancy, history, the long-line base-cost mask) lives in
numpy arrays.  Two cost engines share it:

* ``scalar`` — the reference: :meth:`Router._node_cost` priced per node
  inside the Dijkstra loop, exactly as the router has always worked;
* ``vector`` — one elementwise cost vector
  ``base * (1 + history) * (1 + pressure * occupancy)`` computed per
  ``_route_net`` call and indexed by the Dijkstra loop.

The vector is exact, not an approximation: within one ``_route_net``
call the only occupancy that changes is the net's own committed nodes,
and for those the scalar path subtracts the net-membership unit again —
so the per-node cost is invariant across the call, float64 arithmetic is
elementwise-identical, and routes are node-for-node the same (pinned by
tests/cad/test_route_parity.py).  Overuse detection and the history bump
between iterations are single array ops under both engines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..device import Coord, IobSite, clb_input_candidates, clb_output_candidates
from .rrg import RoutingGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cost
    from .instrument import CadInstrumentation

__all__ = ["NetSpec", "RoutedNet", "Router", "RoutingError"]


class RoutingError(Exception):
    """The design is unroutable in this graph (congestion never resolved)."""


#: A net endpoint.  Kinds:
#:   ("clb", Coord)            — CLB output (source only)
#:   ("clbpin", Coord, pin)    — CLB input pin (sink only)
#:   ("wire", Wire)            — a specific wire (virtual pin, either end)
#:   ("pad", IobSite)          — an IOB pad (either end)
Endpoint = Tuple

#: Key identifying one sink within a net (the endpoint tuple itself).
SinkKey = Hashable


@dataclass
class NetSpec:
    """One signal net to route."""

    name: str
    source: Endpoint
    sinks: List[Endpoint]


@dataclass
class RoutedNet:
    """The routed tree of one net."""

    name: str
    nodes: Set[int] = field(default_factory=set)
    #: Wire ids driven directly by the CLB output / pad (for out_drives).
    source_taps: Set[int] = field(default_factory=set)
    #: sink endpoint -> wire id tapped (or pad id for pad sinks).
    sink_taps: Dict[SinkKey, int] = field(default_factory=dict)
    #: Enabled switch edges: (box_x, box_y, track, pair_index).
    switches: Set[Tuple[int, int, int, int]] = field(default_factory=set)
    #: Pad taps used: site -> track.
    pad_taps: Dict[IobSite, int] = field(default_factory=dict)
    #: sink endpoint -> (n_wires, n_switches, n_long_wires) on its
    #: source→sink path.
    sink_path_stats: Dict[SinkKey, Tuple[int, int, int]] = field(
        default_factory=dict
    )


class Router:
    """Routes a set of nets over one :class:`RoutingGraph`.

    Parameters
    ----------
    graph:
        The routing graph (full-device or region scope).
    max_iterations:
        PathFinder rip-up/re-route rounds before declaring unroutability.
    seed_order:
        Nets are routed in the given order each iteration (deterministic).
    """

    def __init__(
        self,
        graph: RoutingGraph,
        max_iterations: int = 24,
        reserved: Optional[Dict[int, str]] = None,
        engine: str = "auto",
    ) -> None:
        if engine not in ("auto", "scalar", "vector"):
            raise ValueError(f"unknown router engine {engine!r}")
        self.graph = graph
        self.max_iterations = max_iterations
        #: ``scalar`` prices nodes one by one (the reference), ``vector``
        #: precomputes one cost vector per net; ``auto`` means vector
        #: (the precompute amortizes at every graph size measured).
        self.engine = engine
        #: node id -> owning net name: nobody else may even pass through
        #: (virtual pins are interface wires, not routing stock — an
        #: unused input's pin must stay electrically private).
        self.reserved: Dict[int, str] = dict(reserved or {})
        n = len(graph)
        self.occupancy = np.zeros(n, dtype=np.int64)
        self.history = np.zeros(n, dtype=np.float64)
        #: Per-node base cost (the long-line mask applied once, not per
        #: Dijkstra visit).
        self._base = np.fromiter(
            (self.LONG_BASE_COST if graph.is_long(nid) else 1.0
             for nid in range(n)),
            dtype=np.float64, count=n,
        )
        self._pressure = 0.5
        #: Overused-wire count after each PathFinder iteration of the
        #: last :meth:`route` call (the convergence curve; also embedded
        #: in the :class:`RoutingError` message on failure).
        self.overuse_history: List[int] = []

    # -- cost model --------------------------------------------------------
    #: Base cost of entering a long line: they are scarce, device-global
    #: resources, so casual short hops should prefer segments.
    LONG_BASE_COST = 2.5

    def _node_cost(self, node: int, net_nodes: Set[int],
                   net_name: Optional[str] = None) -> float:
        """The reference per-node cost (the ``scalar`` engine)."""
        owner = self.reserved.get(node)
        if owner is not None and owner != net_name:
            return float("inf")
        occ = self.occupancy[node]
        if node in net_nodes:
            occ -= 1
        over = max(0, occ)  # sharing beyond capacity 1
        base = self.LONG_BASE_COST if self.graph.is_long(node) else 1.0
        return base * (1.0 + self.history[node]) * (1.0 + self._pressure * over)

    def _net_cost_vector(self, net_name: Optional[str]) -> List[float]:
        """All node costs for one :meth:`_route_net` call (the ``vector``
        engine), as python floats for the Dijkstra heap.

        Computed against an *empty* net tree, which stays exact for the
        whole call: a node the net commits gains one occupancy unit but
        also net membership, and :meth:`_node_cost` subtracts membership
        back out — ``max(0, occ+1-1) == max(0, occ)``.  Nothing else
        mutates occupancy, history or pressure mid-call, and the
        elementwise float64 products match the scalar expression bit for
        bit.
        """
        cost = (self._base * (1.0 + self.history)
                * (1.0 + self._pressure * self.occupancy))
        out: List[float] = cost.tolist()
        for nid, owner in self.reserved.items():
            if owner != net_name:
                out[nid] = float("inf")
        return out

    # -- endpoint expansion ----------------------------------------------------
    def _source_seeds(self, source: Endpoint) -> List[Tuple[int, tuple]]:
        """(node id, entry descriptor) pairs a net may start from."""
        kind = source[0]
        g = self.graph
        if kind == "clb":
            coord: Coord = source[1]
            seeds = []
            for idx, wire in enumerate(
                clb_output_candidates(g.arch, coord.x, coord.y)
            ):
                nid = g.index.get(wire)
                if nid is not None:
                    seeds.append((nid, ("opin", coord, idx)))
            if not seeds:
                raise RoutingError(f"CLB output at {coord} has no wires in scope")
            return seeds
        if kind == "wire":
            nid = g.index.get(source[1])
            if nid is None:
                raise RoutingError(f"source wire {source[1]} outside scope")
            return [(nid, ("vpin",))]
        if kind == "pad":
            nid = g.index.get(source[1])
            if nid is None:
                raise RoutingError(f"source pad {source[1]} not in graph")
            return [(nid, ("padsrc",))]
        raise ValueError(f"bad source endpoint {source!r}")

    def _sink_targets(self, sink: Endpoint) -> Dict[int, tuple]:
        """node id -> arrival descriptor for one sink."""
        kind = sink[0]
        g = self.graph
        if kind == "clbpin":
            coord, pin = sink[1], sink[2]
            targets = {}
            for idx, wire in enumerate(clb_input_candidates(g.arch, coord.x, coord.y)):
                nid = g.index.get(wire)
                if nid is not None:
                    targets[nid] = ("ipin", coord, pin, idx)
            if not targets:
                raise RoutingError(f"CLB pin {coord}/{pin} has no wires in scope")
            return targets
        if kind == "wire":
            nid = g.index.get(sink[1])
            if nid is None:
                raise RoutingError(f"sink wire {sink[1]} outside scope")
            return {nid: ("vpin",)}
        if kind == "pad":
            nid = g.index.get(sink[1])
            if nid is None:
                raise RoutingError(f"sink pad {sink[1]} not in graph")
            return {nid: ("padsink",)}
        raise ValueError(f"bad sink endpoint {sink!r}")

    # -- single-net routing ----------------------------------------------------------
    def _route_net(self, net: NetSpec) -> RoutedNet:
        g = self.graph
        routed = RoutedNet(name=net.name)
        seeds = self._source_seeds(net.source)
        # The vector engine prices every node once per net call; the
        # scalar engine prices inside the loop (see _net_cost_vector for
        # why both give identical costs).
        cost_vec = (self._net_cost_vector(net.name)
                    if self.engine != "scalar" else None)
        #: node -> (n_wires, n_switches) from the source, for timing.
        depth: Dict[int, Tuple[int, int]] = {}

        for sink in net.sinks:
            targets = self._sink_targets(sink)
            # Dijkstra from the current tree (cost 0) + fresh source taps.
            dist: Dict[int, float] = {}
            prev: Dict[int, Tuple[Optional[int], tuple]] = {}
            heap: List[Tuple[float, int]] = []
            for nid in routed.nodes:
                dist[nid] = 0.0
                prev[nid] = (None, ("tree",))
                heapq.heappush(heap, (0.0, nid))
            for nid, entry in seeds:
                cost = (cost_vec[nid] if cost_vec is not None
                        else self._node_cost(nid, routed.nodes, net.name))
                if cost == float("inf"):
                    continue
                if nid not in dist or cost < dist[nid]:
                    dist[nid] = cost
                    prev[nid] = (None, entry)
                    heapq.heappush(heap, (cost, nid))
            found: Optional[int] = None
            while heap:
                d, nid = heapq.heappop(heap)
                if d > dist.get(nid, float("inf")):
                    continue
                if nid in targets:
                    found = nid
                    break
                for nxt, edge in g.adj[nid]:
                    step = (cost_vec[nxt] if cost_vec is not None
                            else self._node_cost(nxt, routed.nodes, net.name))
                    if step == float("inf"):
                        continue
                    nd = d + step
                    if nd < dist.get(nxt, float("inf")):
                        dist[nxt] = nd
                        prev[nxt] = (nid, edge)
                        heapq.heappush(heap, (nd, nxt))
            if found is None:
                raise RoutingError(
                    f"net {net.name!r}: no path to sink {sink!r}"
                )
            # Backtrack, committing nodes/edges to the tree.
            path_nodes: List[int] = []
            path_edges: List[tuple] = []
            cur = found
            while True:
                path_nodes.append(cur)
                parent, via = prev[cur]
                if parent is None:
                    if via[0] == "opin":
                        routed.source_taps.add(cur)
                    break
                path_edges.append(via)
                cur = parent
            join = cur  # node where path met the tree (or a source seed)
            path_nodes.reverse()
            path_edges.reverse()
            for nid in path_nodes:
                if nid not in routed.nodes:
                    routed.nodes.add(nid)
                    self.occupancy[nid] += 1
            if join not in depth:
                if g.is_long(join):
                    depth[join] = (0, 0, 1)
                elif g.is_wire(join):
                    depth[join] = (1, 0, 0)
                else:
                    depth[join] = (0, 0, 0)
            w, s, lw = depth[join]
            for nid, via in zip(path_nodes[1:], path_edges):
                if via[0] == "sw":
                    routed.switches.add(via[1:])
                    s += 1
                elif via[0] == "pad":
                    routed.pad_taps[via[1]] = via[2]
                if g.is_long(nid):
                    lw += 1
                elif g.is_wire(nid):
                    w += 1
                depth[nid] = (w, s, lw)
            routed.sink_taps[sink] = found
            routed.sink_path_stats[sink] = depth.get(
                found, (1 if g.is_wire(found) else 0, 0, 0)
            )
        return routed

    # -- full PathFinder loop ----------------------------------------------------------
    def route(
        self,
        nets: Sequence[NetSpec],
        instrument: Optional["CadInstrumentation"] = None,
    ) -> Dict[str, RoutedNet]:
        """Route all nets to legality; raises :class:`RoutingError` if the
        congestion never resolves within ``max_iterations``.

        ``instrument`` (a :class:`~repro.cad.instrument.CadInstrumentation`)
        receives one :class:`~repro.cad.instrument.CadRouteIteration` per
        rip-up round; it never influences net order or cost, so routes
        are identical with or without it.
        """
        names = [n.name for n in nets]
        if len(set(names)) != len(names):
            raise ValueError("duplicate net names")
        results: Dict[str, RoutedNet] = {}
        self.overuse_history = []
        for iteration in range(self.max_iterations):
            iter_t0 = instrument.now() if instrument is not None else 0.0
            ripped = 0
            for net in nets:
                old = results.get(net.name)
                if old is not None:
                    if iteration > 0 and not self._net_is_congested(old):
                        continue  # keep legal routes; rip up only offenders
                    for nid in old.nodes:
                        self.occupancy[nid] -= 1
                    ripped += 1
                results[net.name] = self._route_net(net)
            overused = np.flatnonzero(self.occupancy > 1)
            self.overuse_history.append(int(overused.size))
            if instrument is not None:
                instrument.route_iteration(
                    iteration=iteration, overused=int(overused.size),
                    ripped_up=ripped, pressure=self._pressure,
                    wall_seconds=instrument.now() - iter_t0,
                )
            if not overused.size:
                return results
            self.history[overused] += 1.0
            self._pressure *= 1.8
        raise RoutingError(
            f"congestion unresolved after {self.max_iterations} iterations "
            f"({int(np.count_nonzero(self.occupancy > 1))} overused wires; "
            f"final pressure {self._pressure:.4g}; overused per iteration "
            f"{self.overuse_history})"
        )

    def _net_is_congested(self, routed: RoutedNet) -> bool:
        return any(self.occupancy[nid] > 1 for nid in routed.nodes)
