"""Routing resource graph (RRG) construction.

The RRG is the integer-indexed graph the router searches: nodes are routing
wires (plus IOB pads in dedicated mode), edges are programmable switches
(plus pad taps).  Every edge carries the description needed to turn a
routed tree back into configuration bits, so routing output is directly
encodable.

Two scopes:

* **full-device** (``region=None``) — all wires, all switch boxes, pads
  included: used for dedicated (IOB-bound) compiles;
* **region** — only the wires/switch boxes *owned* by the region (see
  :func:`repro.device.interconnect.wire_in_region`): used for relocatable
  compiles, guaranteeing the route translates with the region.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..device import (
    SWITCH_PAIRS,
    Architecture,
    IobSite,
    Rect,
    Wire,
    all_wires,
    iob_candidates,
    iob_sites,
    long_switch_stubs,
    switch_stubs,
    switchboxes_in_region,
    wires_in_region,
)

__all__ = ["RoutingGraph", "SwitchEdge", "PadEdge"]

#: Edge through a switch box: ("sw", box_x, box_y, track, pair_index).
SwitchEdge = Tuple[str, int, int, int, int]
#: Edge through an IOB tap: ("pad", site, track).
PadEdge = Tuple[str, IobSite, int]


class RoutingGraph:
    """Integer-indexed routing graph for one architecture/scope.

    Attributes
    ----------
    nodes:
        Node id → :class:`Wire` or :class:`IobSite`.
    index:
        Reverse mapping.
    adj:
        Node id → list of ``(neighbour id, edge descriptor)``.
    n_wires:
        Wire nodes occupy ids ``0 .. n_wires-1``; pads follow.
    """

    def __init__(
        self,
        arch: Architecture,
        region: Optional[Rect] = None,
        include_pads: bool = False,
    ) -> None:
        if region is not None and include_pads:
            raise ValueError("region-scoped graphs cannot include pads")
        self.arch = arch
        self.region = region
        if region is None:
            # Full-device scope: includes the device-global long lines
            # (paper §2's long-distance busses).
            wires = all_wires(arch)
            boxes = [
                (x, y)
                for x in range(arch.width + 1)
                for y in range(arch.height + 1)
            ]
        else:
            if not arch.full_rect.contains_rect(region):
                raise ValueError(f"region {region} outside device")
            wires = wires_in_region(arch, region)
            boxes = switchboxes_in_region(region)
        self.nodes: List = list(wires)
        self.index: Dict = {w: i for i, w in enumerate(wires)}
        self.n_wires = len(wires)
        self.adj: List[List[Tuple[int, tuple]]] = [[] for _ in wires]

        for (bx, by) in boxes:
            for t in range(arch.channel_width):
                stubs = switch_stubs(arch, bx, by, t)
                ids = [
                    self.index.get(s) if s is not None else None for s in stubs
                ]
                for pair_idx, (i, j) in enumerate(SWITCH_PAIRS):
                    a, b = ids[i], ids[j]
                    if a is None or b is None:
                        continue
                    edge: SwitchEdge = ("sw", bx, by, t, pair_idx)
                    self.adj[a].append((b, edge))
                    self.adj[b].append((a, edge))
            if region is None:
                for l in range(arch.long_per_channel):
                    for pseudo, (long_wire, stub) in zip(
                        (6, 7), long_switch_stubs(arch, bx, by, l)
                    ):
                        a = self.index.get(long_wire)
                        b = self.index.get(stub) if stub is not None else None
                        if a is None or b is None:
                            continue
                        edge = ("sw", bx, by, l, pseudo)
                        self.adj[a].append((b, edge))
                        self.adj[b].append((a, edge))

        self.pads: List[IobSite] = []
        if include_pads:
            for site in iob_sites(arch):
                pad_id = len(self.nodes)
                self.nodes.append(site)
                self.index[site] = pad_id
                self.adj.append([])
                self.pads.append(site)
                for t, wire in enumerate(iob_candidates(arch, site)):
                    wid = self.index.get(wire)
                    if wid is None:
                        continue
                    edge: PadEdge = ("pad", site, t)
                    self.adj[pad_id].append((wid, edge))
                    self.adj[wid].append((pad_id, edge))

    def __len__(self) -> int:
        return len(self.nodes)

    def wire_id(self, wire: Wire) -> int:
        """Node id of ``wire``; raises KeyError if outside this scope."""
        return self.index[wire]

    def is_wire(self, node_id: int) -> bool:
        return node_id < self.n_wires

    def is_long(self, node_id: int) -> bool:
        """Whether the node is a long line (timing/cost differ)."""
        return (
            node_id < self.n_wires
            and self.nodes[node_id].kind in ("HL", "VL")
        )
