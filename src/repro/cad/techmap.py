"""Technology mapping: arbitrary gate netlists → K-LUT + DFF netlists.

The mapper performs three passes:

1. **Decompose** gates wider than K into balanced trees of K-ary gates
   (associative kinds only; inverted kinds split into gate + inverter).
2. **LUT-ify** every combinational cell 1:1 — each gate becomes a LUT with
   the same (deduplicated) support and the gate's truth table.
3. **Cone-pack** greedily in topological order: a LUT absorbs a fanin LUT
   whenever that fanin has fanout 1 and the merged support stays ≤ K.
   This is the classical fanout-free-cone heuristic; it is not
   depth-optimal like FlowMap but is area-effective and deterministic.

Dead logic (LUTs unreachable from any primary output or flip-flop) is
swept at the end.  The result contains only INPUT / OUTPUT / LUT / DFF
cells — exactly what :mod:`repro.cad.pack` consumes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..netlist import Cell, CellKind, Netlist, evaluate_kind

__all__ = ["technology_map", "gate_truth", "absorb_fanin", "check_mapped", "TechmapError"]


class TechmapError(Exception):
    """The netlist cannot be expressed in the target LUT architecture."""


def gate_truth(kind: CellKind, support: Sequence[str], fanin: Sequence[str]) -> int:
    """Truth table of ``kind`` over the unique ``support`` given the gate's
    (possibly repeating) ``fanin`` pin list."""
    index_of = {net: i for i, net in enumerate(support)}
    truth = 0
    for pattern in range(1 << len(support)):
        values = tuple((pattern >> index_of[net]) & 1 for net in fanin)
        if evaluate_kind(kind, values):
            truth |= 1 << pattern
    return truth


def absorb_fanin(
    node_support: Sequence[str],
    node_truth: int,
    position: int,
    sub_support: Sequence[str],
    sub_truth: int,
) -> Tuple[List[str], int]:
    """Substitute the LUT ``sub`` into pin ``position`` of ``node``.

    Returns the merged (unique) support and the composed truth table.
    """
    merged: List[str] = [n for i, n in enumerate(node_support) if i != position]
    for net in sub_support:
        if net not in merged:
            merged.append(net)
    pos_in_merged = {net: i for i, net in enumerate(merged)}
    new_truth = 0
    for pattern in range(1 << len(merged)):
        sub_index = 0
        for j, net in enumerate(sub_support):
            sub_index |= ((pattern >> pos_in_merged[net]) & 1) << j
        sub_value = (sub_truth >> sub_index) & 1
        node_index = 0
        for i, net in enumerate(node_support):
            bit = sub_value if i == position else (pattern >> pos_in_merged[net]) & 1
            node_index |= bit << i
        if (node_truth >> node_index) & 1:
            new_truth |= 1 << pattern
    return merged, new_truth


#: Associative gate kinds that decompose into balanced trees directly.
_ASSOCIATIVE = {CellKind.AND, CellKind.OR, CellKind.XOR}
#: Inverted kinds: (tree kind, invert output).
_INVERTED = {CellKind.NAND: CellKind.AND, CellKind.NOR: CellKind.OR,
             CellKind.XNOR: CellKind.XOR}


def _decompose_wide(netlist: Netlist, k: int) -> Netlist:
    """Split gates with more than ``k`` unique fanins into K-ary trees."""
    out = Netlist(netlist.name)
    counter = [0]

    def fresh(stem: str) -> str:
        counter[0] += 1
        return f"{stem}__tm{counter[0]}"

    def tree(kind: CellKind, operands: List[str], final_name: str) -> str:
        level = list(operands)
        while len(level) > k:
            nxt: List[str] = []
            for i in range(0, len(level), k):
                chunk = level[i : i + k]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    name = fresh(final_name)
                    out.add(Cell(name, kind, tuple(chunk)))
                    nxt.append(name)
            level = nxt
        out.add(Cell(final_name, kind, tuple(level)))
        return final_name

    for cell in netlist.cells.values():
        unique = list(dict.fromkeys(cell.fanin))
        if cell.is_combinational and len(unique) > k:
            if cell.kind in _ASSOCIATIVE:
                tree(cell.kind, unique, cell.name)
            elif cell.kind in _INVERTED:
                inner = fresh(cell.name)
                tree(_INVERTED[cell.kind], unique, inner)
                out.add(Cell(cell.name, CellKind.NOT, (inner,)))
            else:
                raise TechmapError(
                    f"cell {cell.name!r}: {cell.kind.value} with "
                    f"{len(unique)} fanins exceeds k={k} and is not decomposable"
                )
        else:
            out.add(cell)
    out.validate()
    return out


def technology_map(netlist: Netlist, k: int) -> Netlist:
    """Map ``netlist`` onto ``k``-input LUTs.

    Returns a new netlist containing only INPUT/OUTPUT/LUT/DFF cells;
    the original is untouched.  Functional equivalence is guaranteed by
    construction and asserted by the tests via logic simulation.
    """
    if k < 2:
        raise TechmapError(f"k={k} too small to map logic")
    netlist.validate()
    source = _decompose_wide(netlist, k)

    # -- pass 2: LUT-ify -------------------------------------------------
    # Working representation: name -> (support list, truth).
    luts: Dict[str, Tuple[List[str], int]] = {}
    passthrough_kinds = (CellKind.INPUT, CellKind.OUTPUT, CellKind.DFF)
    for cell in source.cells.values():
        if cell.kind in passthrough_kinds:
            continue
        if cell.kind is CellKind.LUT:
            support = list(dict.fromkeys(cell.fanin))
            if len(support) != len(cell.fanin):
                # Collapse duplicate pins through absorb of identity — rare;
                # recompute via evaluation of the original LUT.
                index_of = {n: i for i, n in enumerate(support)}
                truth = 0
                for pattern in range(1 << len(support)):
                    idx = 0
                    for j, net in enumerate(cell.fanin):
                        idx |= ((pattern >> index_of[net]) & 1) << j
                    if (cell.truth >> idx) & 1:
                        truth |= 1 << pattern
                luts[cell.name] = (support, truth)
            else:
                luts[cell.name] = (support, cell.truth)
        elif cell.kind in (CellKind.CONST0, CellKind.CONST1):
            luts[cell.name] = ([], 1 if cell.kind is CellKind.CONST1 else 0)
        else:
            support = list(dict.fromkeys(cell.fanin))
            if len(support) > k:
                raise TechmapError(
                    f"cell {cell.name!r} still has {len(support)} fanins after "
                    f"decomposition"
                )
            luts[cell.name] = (support, gate_truth(cell.kind, support, cell.fanin))

    # -- pass 3: cone packing ------------------------------------------------
    fanout: Dict[str, int] = {name: 0 for name in luts}
    for support, _ in luts.values():
        for net in support:
            if net in fanout:
                fanout[net] += 1
    for cell in source.cells.values():
        if cell.kind in (CellKind.OUTPUT, CellKind.DFF):
            for net in cell.fanin:
                if net in fanout:
                    fanout[net] += 1

    order = [c.name for c in source.topo_order() if c.name in luts]
    for name in order:
        changed = True
        while changed:
            changed = False
            support, truth = luts[name]
            for pos, net in enumerate(support):
                if net not in luts or fanout.get(net, 0) != 1 or net == name:
                    continue
                sub_support, sub_truth = luts[net]
                trial_support = [n for i, n in enumerate(support) if i != pos]
                extra = [n for n in sub_support if n not in trial_support]
                if len(trial_support) + len(extra) > k:
                    continue
                merged, new_truth = absorb_fanin(
                    support, truth, pos, sub_support, sub_truth
                )
                # Fanout bookkeeping: sub's reference to each of its inputs
                # moves to `name`.  Inputs already read by `name` collapse
                # to a single pin (−1 reference); new inputs are unchanged.
                for n in set(sub_support):
                    if n in fanout and n in support:
                        fanout[n] -= 1
                fanout[net] = 0
                del luts[net]
                luts[name] = (merged, new_truth)
                changed = True
                break

    # -- sweep dead logic ------------------------------------------------------
    live: Set[str] = set()
    frontier: List[str] = []
    for cell in source.cells.values():
        if cell.kind in (CellKind.OUTPUT, CellKind.DFF):
            frontier.extend(cell.fanin)
    while frontier:
        net = frontier.pop()
        if net in live or net not in luts:
            continue
        live.add(net)
        frontier.extend(luts[net][0])

    # -- build the mapped netlist --------------------------------------------------
    mapped = Netlist(netlist.name)
    for cell in source.cells.values():
        if cell.kind is CellKind.INPUT:
            mapped.add(cell)
    for cell in source.cells.values():
        if cell.kind is CellKind.DFF:
            mapped.add(cell)
    for name in order:
        if name in luts and name in live:
            support, truth = luts[name]
            mapped.add(Cell(name, CellKind.LUT, tuple(support), truth=truth))
    for cell in source.cells.values():
        if cell.kind is CellKind.OUTPUT:
            mapped.add(cell)
    mapped.validate()
    check_mapped(mapped, k)
    return mapped


def check_mapped(netlist: Netlist, k: int) -> None:
    """Assert the mapped-netlist invariant (INPUT/OUTPUT/LUT/DFF, arity ≤ k)."""
    allowed = {CellKind.INPUT, CellKind.OUTPUT, CellKind.LUT, CellKind.DFF}
    for cell in netlist.cells.values():
        if cell.kind not in allowed:
            raise TechmapError(f"unmapped cell {cell.name!r} of kind {cell.kind.value}")
        if cell.kind is CellKind.LUT and len(cell.fanin) > k:
            raise TechmapError(f"LUT {cell.name!r} exceeds k={k}")
