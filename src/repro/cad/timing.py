"""Post-route static timing analysis.

Computes the critical path of a placed-and-routed design from the
architecture's unit delays and each routed net's wire/switch counts.
Paths considered:

* primary input → primary output (pure combinational),
* primary input → flip-flop D (+ setup),
* flip-flop Q (clock-to-q) → flip-flop D (+ setup),
* flip-flop Q → primary output.

The resulting ``critical_path`` is what the VFPGA execution model uses as
the clock period: an FPGA operation of *n* cycles takes
``n × critical_path`` seconds once resident.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..device import Architecture
from .pack import nets_of
from .place import Placement
from .route import RoutedNet

__all__ = ["TimingReport", "analyze_timing", "TimingError"]


class TimingError(Exception):
    """Timing graph is malformed (should not happen on legal designs)."""


@dataclass(frozen=True)
class TimingReport:
    """Summary of one design's timing."""

    critical_path: float        #: seconds (= minimum clock period)
    critical_kind: str          #: which path class dominates
    max_net_delay: float
    n_timing_paths: int

    @property
    def fmax(self) -> float:
        """Maximum clock frequency in Hz."""
        return float("inf") if self.critical_path == 0 else 1.0 / self.critical_path


def _net_delay(arch: Architecture, stats: Tuple[int, int, int]) -> float:
    n_wires, n_switches, n_long = stats
    return (
        n_wires * arch.wire_delay
        + n_switches * arch.switch_delay
        + n_long * arch.long_wire_delay
    )


def analyze_timing(
    arch: Architecture,
    placement: Placement,
    routed: Dict[str, RoutedNet],
) -> TimingReport:
    """Static timing analysis over the placed design + routed nets."""
    design = placement.design
    bles = design.ble_by_name()
    nets = nets_of(design)

    # Net delay per (sink ble, pin), from the routed tree's path stats.
    pin_delay: Dict[Tuple[str, int], float] = {}
    for src, sinks in nets.items():
        rn = routed.get(src)
        for ble_name, pin in sinks:
            delay = 0.0
            if rn is not None:
                key = ("clbpin", placement.coords[ble_name], pin)
                stats = rn.sink_path_stats.get(key)
                if stats is not None:
                    delay = _net_delay(arch, stats)
            pin_delay[(ble_name, pin)] = delay

    # Topological order over combinational BLE dependencies.
    indeg = {b.name: 0 for b in design.bles}
    readers: Dict[str, List[str]] = {b.name: [] for b in design.bles}
    for ble in design.bles:
        for src in ble.lut_inputs:
            src_ble = bles.get(src)
            if src_ble is not None and not src_ble.registered:
                readers[src].append(ble.name)
                indeg[ble.name] += 1
    order: List[str] = []
    ready = deque(name for name, d in indeg.items() if d == 0)
    while ready:
        cur = ready.popleft()
        order.append(cur)
        for r in readers[cur]:
            indeg[r] -= 1
            if indeg[r] == 0:
                ready.append(r)
    if len(order) != len(design.bles):
        raise TimingError("combinational cycle in packed design")

    arrival_out: Dict[str, float] = {}   # BLE output arrival
    d_arrival: Dict[str, float] = {}     # FF D-input arrival (registered BLEs)

    def source_arrival(net: str) -> float:
        src_ble = bles.get(net)
        if src_ble is None:
            return 0.0  # primary input
        if src_ble.registered:
            return arch.clock_to_q  # state: available at the clock edge
        return arrival_out[net]

    for name in order:
        ble = bles[name]
        lut_in = 0.0
        for pin, src in enumerate(ble.lut_inputs):
            lut_in = max(lut_in, source_arrival(src) + pin_delay[(name, pin)])
        lut_out = lut_in + arch.lut_delay
        if ble.registered:
            d_arrival[name] = lut_out
            arrival_out[name] = arch.clock_to_q
        else:
            arrival_out[name] = lut_out

    worst = 0.0
    worst_kind = "none"
    n_paths = 0
    max_net = max(pin_delay.values(), default=0.0)
    for _name, arr in d_arrival.items():
        n_paths += 1
        total = arr + arch.setup
        if total > worst:
            worst, worst_kind = total, "to-register"
    for _port, src in design.outputs.items():
        n_paths += 1
        total = source_arrival(src)
        if total > worst:
            worst, worst_kind = total, "to-output"
    return TimingReport(
        critical_path=worst,
        critical_kind=worst_kind,
        max_net_delay=max_net,
        n_timing_paths=n_paths,
    )
