"""Post-implementation functional verification.

Loads a compiled bitstream onto a fresh device, simulates the configured
array *from its decoded configuration bits* (see
:mod:`repro.device.funcsim`) and compares it cycle-for-cycle against the
gate-level simulation of the source netlist.  This closes the loop: if
mapping, packing, placement, routing or bit encoding is wrong anywhere,
equivalence fails here.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..device import Architecture, Bitstream, Fpga
from ..netlist import LogicSimulator, Netlist

__all__ = ["verify_bitstream", "VerificationError"]


class VerificationError(AssertionError):
    """The configured device disagrees with the source netlist."""


def _random_vectors(
    names: List[str], n: int, rng: random.Random
) -> List[Dict[str, int]]:
    return [{name: rng.randint(0, 1) for name in names} for _ in range(n)]


def verify_bitstream(
    netlist: Netlist,
    bitstream: Bitstream,
    arch: Architecture,
    n_vectors: int = 24,
    n_cycles: int = 24,
    seed: int = 0,
    fpga: Optional[Fpga] = None,
) -> None:
    """Raise :class:`VerificationError` unless the loaded bitstream matches
    ``netlist`` on random stimulus (exhaustive behaviour is checked by the
    per-generator reference tests; this is the implementation check).

    Sequential circuits are compared over a stimulus *sequence*, including
    the named flip-flop state after every cycle — which simultaneously
    proves the state bits are observable where the bitstream says they are
    (the paper's §3 precondition for preemption).
    """
    rng = random.Random(seed)
    if fpga is None:
        fpga = Fpga(arch)
    handle = f"__verify_{bitstream.name}"
    fpga.load(handle, bitstream)
    try:
        view = fpga.view(handle)
        golden = LogicSimulator(netlist)
        input_names = [c.name for c in netlist.primary_inputs]
        if netlist.state_bits == 0:
            for i, vec in enumerate(_random_vectors(input_names, n_vectors, rng)):
                want = golden.evaluate(vec)
                got = view.evaluate(vec)
                if got != want:
                    raise VerificationError(
                        f"{netlist.name!r} vector {i}: device={got} golden={want} "
                        f"inputs={vec}"
                    )
        else:
            for cycle, vec in enumerate(
                _random_vectors(input_names, n_cycles, rng)
            ):
                want = golden.step(vec)
                got = view.step(vec)
                if got != want:
                    raise VerificationError(
                        f"{netlist.name!r} cycle {cycle}: device={got} "
                        f"golden={want} inputs={vec}"
                    )
                want_state = golden.read_state()
                got_state = view.read_state()
                if got_state != want_state:
                    raise VerificationError(
                        f"{netlist.name!r} cycle {cycle}: state mismatch "
                        f"device={got_state} golden={want_state}"
                    )
    finally:
        fpga.unload(handle)
