"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the whole stack without writing Python:

* ``families``    — the device catalog with derived limits;
* ``circuits``    — the available circuit generators;
* ``compile``     — run a generator through the CAD flow and report
  region/timing/wirelength (optionally functionally verify);
* ``simulate``    — run a multitasking workload under a chosen VFPGA
  policy and print the run statistics;
* ``trace``       — the same run, but export the full telemetry event
  stream (Chrome ``trace_event`` JSON for Perfetto, or JSONL);
* ``report``      — latency percentiles (p50/p95/p99), utilization
  gauges (CLB occupancy, config-port busy) and the per-task phase
  breakdown of a run — live, or aggregated from a recorded JSONL
  stream; optionally exported as Prometheus text / per-span CSV;
* ``audit``       — run the online invariant monitors
  (:class:`repro.telemetry.Auditor`) over a live workload or a recorded
  JSONL stream and print the violation report (exit 1 on any
  error-severity violation);
* ``slo``         — evaluate declarative per-source service-level
  objectives (latency percentile, deadline-miss rate, availability)
  with error budgets, plus the queue / reconfig / service stage
  decomposition of every operation — live or from a recorded JSONL
  stream (exit 1 on any breached objective);
* ``bench-diff``  — compare two ``BENCH_*.json`` benchmark artifacts
  run by run and fail on wall-clock / event-count regressions past a
  threshold (global or per-metric);
* ``experiments`` — the experiment index (E1–E20) with the command that
  regenerates each table.

Examples
--------
::

    python -m repro families
    python -m repro compile ripple_adder:4 --family VF10 --verify
    python -m repro simulate --family VF12 --policy variable \
        --circuits ripple_adder:4,counter:4 --tasks 6 --ops 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import fmt_pct, fmt_time, format_table
from .netlist import CIRCUIT_GENERATORS

__all__ = ["main", "build_circuit"]


def build_circuit(spec: str):
    """``name:arg,arg,...`` → generated netlist (ints parsed, 0x ok)."""
    name, _, argstr = spec.partition(":")
    if name not in CIRCUIT_GENERATORS:
        raise SystemExit(
            f"unknown circuit {name!r}; available: "
            + ", ".join(sorted(CIRCUIT_GENERATORS))
        )
    args = []
    if argstr:
        for a in argstr.split(","):
            args.append(int(a, 0))
    try:
        return CIRCUIT_GENERATORS[name](*args)
    except TypeError as exc:
        raise SystemExit(f"bad arguments for {name}: {exc}") from None


def cmd_families(_args) -> int:
    from .device import FAMILIES

    rows = []
    for fam in FAMILIES.values():
        rows.append({
            "name": fam.name,
            "CLBs": f"{fam.width}x{fam.height}",
            "pins": fam.n_pins,
            "gates~": fam.equivalent_gates,
            "config bits": fam.total_config_bits,
            "full download": fmt_time(fam.full_config_time),
            "partial": "yes" if fam.supports_partial else "no",
        })
    print(format_table(rows, title="device catalog"))
    return 0


def cmd_circuits(_args) -> int:
    import inspect

    rows = []
    for name, fn in sorted(CIRCUIT_GENERATORS.items()):
        sig = str(inspect.signature(fn))
        doc = (inspect.getdoc(fn) or "").splitlines()[0]
        rows.append({"generator": name, "args": sig, "summary": doc[:64]})
    print(format_table(rows, title="circuit generators (spec: name:arg,arg)"))
    return 0


def cmd_compile(args) -> int:
    from .cad import compile_netlist, verify_bitstream
    from .device import get_family
    from .netlist import netlist_stats

    arch = get_family(args.family)
    nl = build_circuit(args.circuit)
    st = netlist_stats(nl)
    print(f"source: {st}")
    res = compile_netlist(
        nl, arch,
        mode="dedicated" if args.dedicated else "relocatable",
        seed=args.seed, effort=args.effort, shape=args.shape,
        engine=args.engine,
    )
    bs = res.bitstream
    print(f"target: {arch.name}  region {bs.region}  "
          f"{res.design.n_clbs} CLBs used")
    print(f"timing: clock {fmt_time(res.critical_path)} "
          f"({res.timing.fmax / 1e6:.1f} MHz, {res.timing.critical_kind})")
    print(f"routing: {res.n_nets} nets, wirelength {res.wirelength}")
    print(f"config: {len(bs.frames_touched(arch))} frames, "
          f"load {fmt_time(arch.frame_overhead * len(bs.frames_touched(arch)) + len(bs.frames_touched(arch)) * arch.frame_bits / arch.serial_rate)}"
          f", {bs.n_state_bits} state bits")
    if args.verify:
        verify_bitstream(nl, bs, arch)
        print("verify: device simulation matches the gate-level golden model")
    return 0


def cmd_compile_report(args) -> int:
    """Per-phase wall-clock, SA cost curve, PathFinder convergence and
    compile-cache summary of one compile — live (instrumented flow) or
    from a recorded JSONL stream of CAD events."""
    import json

    from .cad import (
        CadInstrumentation,
        CompileCache,
        CompileError,
        CompileProfile,
        PlacementError,
        RoutingError,
        compile_netlist,
    )
    from .telemetry import read_jsonl, to_chrome_trace, to_jsonl

    failure: Optional[Exception] = None
    if args.input is not None:
        # Reduce a recorded stream exactly as if it were live: the
        # profile is a pure function of the events.
        events = read_jsonl(args.input)
        profile = CompileProfile.from_events(events)
        title = f"compile profile of {args.input}"
    else:
        if args.circuit is None:
            raise SystemExit(
                "compile-report: give a circuit spec or -i EVENTS.jsonl"
            )
        from .device import get_family

        arch = get_family(args.family)
        nl = build_circuit(args.circuit)
        instr = CadInstrumentation()
        cache = CompileCache() if args.compile_cache else None
        try:
            res = compile_netlist(
                nl, arch,
                mode="dedicated" if args.dedicated else "relocatable",
                seed=args.seed, effort=args.effort, shape=args.shape,
                instrument=instr, engine=args.engine, cache=cache,
            )
            if cache is not None:
                # Cold + warm through one cache in one event stream: the
                # phase table shows the cold compile, the cache table the
                # warm flow hit.
                res = compile_netlist(
                    nl, arch,
                    mode="dedicated" if args.dedicated else "relocatable",
                    seed=args.seed, effort=args.effort, shape=args.shape,
                    instrument=instr, engine=args.engine, cache=cache,
                )
        except (CompileError, PlacementError, RoutingError) as exc:
            # The phases that did run are exactly what one wants to see
            # when a compile fails — report them, then exit nonzero.
            failure = exc
            res = None
        events = instr.events
        profile = instr.profile()
        title = f"{args.circuit}@{args.family} " \
                f"(effort={args.effort}, seed={args.seed})"
        if res is not None:
            bs = res.bitstream
            print(f"compiled {args.circuit} for {arch.name}: region "
                  f"{bs.region}, clock {fmt_time(res.critical_path)}, "
                  f"wirelength {res.wirelength}")
    if args.jsonl:
        to_jsonl(events, args.jsonl)
        print(f"wrote {len(events)} CAD events to {args.jsonl}",
              file=sys.stderr)
    if args.trace:
        to_chrome_trace(events, args.trace, run_name=title)
        print(f"wrote Chrome trace to {args.trace} "
              f"(open in https://ui.perfetto.dev)", file=sys.stderr)
    if args.json:
        print(json.dumps(profile.as_dict(), indent=2, sort_keys=True))
    else:
        print(profile.render(title))
    if failure is not None:
        print(f"compile failed: {failure}", file=sys.stderr)
        return 1
    return 0


def _make_scheduler(args):
    """The CPU scheduling engine selected by ``--cpu-sched``."""
    from .core import make_cpu_scheduler

    return make_cpu_scheduler(args.cpu_sched)


def _build_workload(args):
    """Shared setup of ``simulate``/``trace``: facade, tasks, policy kwargs."""
    from .core import VirtualFpga, make_paged_circuit
    from .osim import uniform_workload

    if args.policy == "pagination":  # friendly alias for the paper's term
        args.policy = "paged"
    vf = VirtualFpga(args.family)
    for spec in args.circuits.split(","):
        vf.add_circuit(build_circuit(spec), seed=args.seed,
                       effort=args.effort, state_accessible=True)
    policy_kw = {"load_mode": args.load_mode}
    task_circuits = vf.circuits
    if args.policy in ("fixed", "variable", "overlay", "paged"):
        # The pluggable victim-selection engine (seeded for "random").
        policy_kw["replacement"] = args.replacement
        policy_kw["replacement_seed"] = args.seed
    if args.policy == "fixed":
        policy_kw["n_partitions"] = args.partitions
    if args.policy == "variable":
        policy_kw["gc"] = args.gc
        policy_kw["layout"] = args.layout
        if args.placement is not None:
            policy_kw["placement"] = args.placement
    if args.policy == "overlay":
        policy_kw["resident_names"] = vf.circuits[:1]
    if args.policy == "multi":
        policy_kw["n_devices"] = args.devices
        policy_kw["dispatch"] = args.board_dispatch
    if args.policy == "dynamic":
        # The fabric scheduling engine (priced preemption) only has
        # decisions to make when the fabric is time-sliced.
        policy_kw["fabric_sched"] = args.fabric_sched
        if args.fpga_slice_ms is not None:
            policy_kw["fpga_time_slice"] = args.fpga_slice_ms * 1e-3
    if args.policy == "paged":
        # Demand paging runs one synthetic virtual circuit wider than the
        # device; every task pages through it (see experiment E8).
        circ = make_paged_circuit(
            vf.registry, "virt", n_pages=args.pages,
            page_width=args.page_width, pattern="zipf", seed=args.seed,
        )
        policy_kw["circuits"] = [circ]
        policy_kw["frame_width"] = args.page_width
        task_circuits = ["virt"]
    tasks = uniform_workload(
        task_circuits, n_tasks=args.tasks, ops_per_task=args.ops,
        cpu_burst=args.cpu_ms * 1e-3, cycles=args.cycles, seed=args.seed,
    )
    return vf, tasks, policy_kw


def cmd_simulate(args) -> int:
    vf, tasks, policy_kw = _build_workload(args)
    stats = vf.simulate(tasks, policy=args.policy,
                        scheduler=_make_scheduler(args), **policy_kw)
    m = vf.last_service.metrics
    print(format_table([{
        "policy": args.policy,
        "tasks": stats.n_tasks,
        "makespan": fmt_time(stats.makespan),
        "mean turnaround": fmt_time(stats.mean_turnaround),
        "reconfigs": m.n_loads,
        "hit rate": fmt_pct(m.hit_rate),
        "useful FPGA": fmt_pct(stats.useful_fraction),
    }], title=f"{args.tasks} tasks on {args.family}"))
    return 0


def _warn_dropped(dropped: int, bound_name: str, bound: int,
                  what: str) -> None:
    """Stderr warning when a ring-buffer bound truncated the stream —
    exported artifacts must never be silently partial."""
    if dropped:
        print(f"warning: {dropped} events were dropped by the "
              f"{bound_name}={bound} ring buffer; {what} is partial",
              file=sys.stderr)


def cmd_trace(args) -> int:
    from .telemetry import (
        EventBus,
        EventLog,
        Profiler,
        to_chrome_trace,
        to_jsonl,
    )

    vf, tasks, policy_kw = _build_workload(args)
    bus = EventBus()
    log = EventLog(bus, max_events=args.max_events)
    profiler = Profiler(bus)
    stats = vf.simulate(tasks, policy=args.policy, bus=bus,
                        scheduler=_make_scheduler(args),
                        telemetry_steps=args.steps, **policy_kw)
    run_name = f"{args.policy}@{args.family}"
    if args.output == "-":
        import io

        buf = io.StringIO()
        if args.format == "chrome":
            to_chrome_trace(log.events, buf, run_name=run_name)
        else:
            to_jsonl(log.events, buf)
        print(buf.getvalue(), end="")
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            if args.format == "chrome":
                to_chrome_trace(log.events, fh, run_name=run_name)
            else:
                to_jsonl(log.events, fh)
        summary = profiler.summary()
        dropped = f" ({log.dropped} dropped)" if log.dropped else ""
        print(f"wrote {len(log.events)} events{dropped} to {args.output} "
              f"({args.format}); makespan {fmt_time(stats.makespan)}, "
              f"{summary['n_events']} events published")
        if args.format == "chrome":
            print("open in https://ui.perfetto.dev or chrome://tracing")
    _warn_dropped(log.dropped, "--max-events", args.max_events or 0,
                  "the exported stream")
    kernel = getattr(vf, "last_kernel", None)
    kernel_trace = kernel.trace if kernel is not None else None
    if kernel_trace is not None:
        _warn_dropped(kernel_trace.dropped, "max_trace_events",
                      kernel_trace.max_events or 0, "the kernel trace")
    return 0


def cmd_report(args) -> int:
    from .telemetry import (
        EventBus,
        EventLog,
        MetricsAggregator,
        SpanBuilder,
        aggregate_events,
        build_spans,
        read_jsonl,
        render_report,
        run_summary,
        spans_to_csv,
        to_prometheus,
    )

    if args.input is not None:
        # Aggregate a recorded stream exactly as if it were live.
        events = read_jsonl(args.input)
        agg = aggregate_events(events)
        spans = build_spans(events)
        title = f"report of {args.input}"
    elif args.max_events is not None:
        # Bounded recording: aggregate whatever the ring retained, and
        # say loudly that the numbers cover a truncated stream.
        vf, tasks, policy_kw = _build_workload(args)
        bus = EventBus()
        log = EventLog(bus, max_events=args.max_events)
        vf.simulate(tasks, policy=args.policy, bus=bus,
                    scheduler=_make_scheduler(args), **policy_kw)
        _warn_dropped(log.dropped, "--max-events", args.max_events,
                      "the report")
        agg = aggregate_events(log.events, clb_capacity=vf.arch.n_clbs)
        spans = build_spans(log.events)
        title = f"{args.policy}@{args.family} (truncated)" \
            if log.dropped else f"{args.policy}@{args.family}"
    else:
        # Live streaming aggregation: O(1) memory, no event retention.
        vf, tasks, policy_kw = _build_workload(args)
        bus = EventBus()
        agg = MetricsAggregator(bus, clb_capacity=vf.arch.n_clbs)
        spans = SpanBuilder(bus)
        vf.simulate(tasks, policy=args.policy, bus=bus,
                    scheduler=_make_scheduler(args), **policy_kw)
        title = f"{args.policy}@{args.family}"

    if args.json:
        import json

        print(json.dumps(run_summary(agg, spans), indent=2, sort_keys=True))
    else:
        print(render_report(agg, spans, title=title))
    if args.prometheus:
        to_prometheus(agg, args.prometheus)
        print(f"wrote Prometheus metrics to {args.prometheus}",
              file=sys.stderr)
    if args.csv:
        spans_to_csv(spans, args.csv)
        print(f"wrote {len(spans.spans)} span rows to {args.csv}",
              file=sys.stderr)
    return 0


def cmd_audit(args) -> int:
    from .telemetry import AuditError, audit_events, read_jsonl

    auditor = None
    aborted = None
    if args.input is not None:
        # Replay a recording through the monitors — same verdicts as live.
        auditor = audit_events(
            read_jsonl(args.input), deadline=args.deadline,
            device_port=args.device_port,
        )
        title = f"audit of {args.input}"
    else:
        vf, tasks, policy_kw = _build_workload(args)
        mode = "strict" if args.strict else "lenient"
        try:
            vf.simulate(tasks, policy=args.policy, audit=mode,
                        scheduler=_make_scheduler(args),
                        audit_deadline=args.deadline, **policy_kw)
        except AuditError as exc:
            aborted = exc
        auditor = vf.last_auditor
        auditor.finish()
        title = f"audit of {args.policy}@{args.family}"

    if args.json:
        import json

        print(json.dumps(auditor.summary(), indent=2, sort_keys=True))
    else:
        if auditor.ok:
            print(f"{title}: {auditor.n_events} events, no violations")
        else:
            rows = [
                {
                    "time": f"{v.time:.9g}",
                    "invariant": v.invariant,
                    "severity": v.severity,
                    "message": v.message,
                }
                for v in auditor.violations
            ]
            print(format_table(rows, title=title))
    if aborted is not None:
        print(f"strict audit aborted the run: {aborted}", file=sys.stderr)
    return 1 if auditor.n_errors else 0


def cmd_slo(args) -> int:
    """Evaluate SLO objectives and the per-source stage decomposition
    over a live run or a recorded JSONL stream; exit 1 on breach."""
    from .telemetry import (
        EventBus,
        MetricsAggregator,
        QueueingDecomposition,
        SloEngine,
        aggregate_events,
        decompose_events,
        evaluate_slo,
        parse_slo_spec,
        read_jsonl,
        stages_to_csv,
        to_prometheus,
    )

    try:
        objectives = [parse_slo_spec(spec) for spec in (args.slo or [])]
    except ValueError as exc:
        raise SystemExit(f"slo: {exc}") from None

    if args.input is not None:
        # Evaluate a recorded stream exactly as if it were live: the
        # engine and the decomposition are pure functions of the events.
        events = read_jsonl(args.input)
        agg = aggregate_events(events)
        decomp = decompose_events(events)
        engine = evaluate_slo(events, objectives)
        title = f"slo report of {args.input}"
    else:
        vf, tasks, policy_kw = _build_workload(args)
        bus = EventBus()
        agg = MetricsAggregator(bus, clb_capacity=vf.arch.n_clbs)
        decomp = QueueingDecomposition(bus)
        engine = SloEngine(objectives, bus)
        vf.simulate(tasks, policy=args.policy, bus=bus,
                    scheduler=_make_scheduler(args), **policy_kw)
        engine.finish()
        title = f"{args.policy}@{args.family}"

    if args.json:
        import json

        print(json.dumps({
            "slo": engine.summary(),
            "stages": decomp.summary(),
            "utilization": agg.utilization_summary(),
        }, indent=2, sort_keys=True))
    else:
        stage_rows = [
            {
                "source": r["source"],
                "ops": r["ops"],
                "queue": f"{fmt_time(r['queue'])} "
                         f"({fmt_pct(r['queue_share'])})",
                "reconfig": f"{fmt_time(r['reconfig'])} "
                            f"({fmt_pct(r['reconfig_share'])})",
                "service": f"{fmt_time(r['service'])} "
                           f"({fmt_pct(r['service_share'])})",
                "port": fmt_time(r["port_seconds"]),
                "decisions": r["sched_decisions"],
                "preempts": r["preempts"],
            }
            for r in decomp.rows()
        ]
        parts = []
        if stage_rows:
            parts.append(format_table(
                stage_rows,
                title=f"{title} — stage decomposition "
                      f"(share of operation turnaround)",
            ))
        if objectives:
            obj_rows = [
                {
                    "objective": r["objective"],
                    "selector": r["selector"],
                    "target": f"{r['metric']} {r['sense']} {r['threshold']:g}",
                    "observed": "-" if r["observed"] is None
                    else f"{r['observed']:.4g}",
                    "samples": r["samples"],
                    "budget left": fmt_pct(
                        max(0.0, min(1.0, float(r["budget_remaining"])))),
                    "verdict": "BREACHED" if r["breached"] else "ok",
                }
                for r in engine.status()
            ]
            parts.append(format_table(obj_rows,
                                      title=f"{title} — objectives"))
            for b in engine.breaches:
                parts.append(f"breach @ {b.time:.9g}s [{b.severity}] "
                             f"{b.detail} (window {b.window:g}s, budget "
                             f"{b.budget_remaining:+.2%})")
        else:
            parts.append(f"{title}: no objectives given (report-only); "
                         f"declare them with --slo, e.g. "
                         f"--slo 'gold:p99<=5e-3,availability>=0.99'")
        print("\n\n".join(parts))
    if args.prometheus:
        to_prometheus(agg, args.prometheus,
                      slo=engine if objectives else None)
        print(f"wrote Prometheus metrics to {args.prometheus}",
              file=sys.stderr)
    if args.csv:
        stages_to_csv(decomp, args.csv)
        print(f"wrote {len(decomp.rows())} stage rows to {args.csv}",
              file=sys.stderr)
    return 1 if engine.breached else 0


def _parse_fail_on(specs):
    """``--fail-on`` values → (global threshold, per-metric overrides)."""
    fail_on = 20.0
    overrides = {}
    for spec in specs or []:
        metric, sep, pct = spec.rpartition("=")
        try:
            if sep:
                overrides[metric.strip()] = float(pct)
            else:
                fail_on = float(spec)
        except ValueError:
            raise SystemExit(
                f"bench-diff: bad --fail-on {spec!r} "
                f"(expected PCT or METRIC=PCT)"
            ) from None
    return fail_on, overrides


def cmd_bench_diff(args) -> int:
    from .telemetry import diff_benches

    fail_on, overrides = _parse_fail_on(args.fail_on)
    try:
        diff = diff_benches(args.base, args.new, fail_on=fail_on,
                            fail_on_overrides=overrides)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bench-diff: {exc}") from None
    if args.json:
        import json

        print(json.dumps(diff.summary(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0 if diff.ok else 1


def cmd_experiments(_args) -> int:
    index = [
        ("E1", "dynamic loading vs configuration time", "test_e1_dynamic_loading.py"),
        ("E2", "merged trivial solution vs dynamic loading", "test_e2_merged_vs_dynamic.py"),
        ("E3", "non-preemptable FPGA forces FIFO", "test_e3_nonpreemptable.py"),
        ("E4", "partitioning reduces loads", "test_e4_partitioning.py"),
        ("E5", "fragmentation, starvation, GC", "test_e5_fragmentation_gc.py"),
        ("E6", "sequential preemption: rollback vs save/restore", "test_e6_state_saving.py"),
        ("E7", "overlaying hot functions", "test_e7_overlay.py"),
        ("E8", "pagination vs segmentation; replacement", "test_e8_paging_segmentation.py"),
        ("E9", "I/O pin multiplexing", "test_e9_io_mux.py"),
        ("E10", "cost-performance frontier", "test_e10_cost_frontier.py"),
        ("E11", "§5 application scenarios", "test_e11_applications.py"),
        ("E12", "partial vs full-serial port", "test_e12_config_port_ablation.py"),
        ("E13", "CAD-flow quality ablation", "test_e13_cad_ablation.py"),
        ("E14", "lazy vs eager loading", "test_e14_eager_loading.py"),
        ("E15", "long-distance busses", "test_e15_long_lines.py"),
        ("E16", "allocator fit policies", "test_e16_fit_policies.py"),
        ("E17", "multi-board virtual computer", "test_e17_multi_board.py"),
        ("E18", "1-D columns vs 2-D rectangles", "test_e18_2d_partitioning.py"),
        ("E19", "configuration scrubbing", "test_e19_scrubbing.py"),
        ("E20", "saturation knee and goodput under SLO", "test_e20_saturation.py"),
    ]
    rows = [
        {"id": eid, "claim": claim,
         "regenerate": f"pytest benchmarks/{path} --benchmark-only -s"}
        for eid, claim, path in index
    ]
    print(format_table(rows, title="experiment index (details: EXPERIMENTS.md)"))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="Virtual FPGA reproduction toolkit"
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("families", help="list the device catalog")
    sub.add_parser("circuits", help="list circuit generators")
    sub.add_parser("experiments", help="list the experiment index")

    c = sub.add_parser("compile", help="compile a circuit through the CAD flow")
    c.add_argument("circuit", help="generator spec, e.g. ripple_adder:4")
    c.add_argument("--family", default="VF12")
    c.add_argument("--effort", default="sa", choices=["greedy", "sa"])
    c.add_argument("--shape", default="square", choices=["square", "columns"])
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--dedicated", action="store_true",
                   help="bind primary I/O to physical pads")
    c.add_argument("--engine", default="auto",
                   choices=["auto", "scalar", "vector"],
                   help="CAD kernel engine (results are bit-identical; "
                        "auto picks by design size)")
    c.add_argument("--verify", action="store_true",
                   help="functionally verify the bitstream on the device")

    cr = sub.add_parser(
        "compile-report",
        help="per-phase wall-clock, SA cost curve and PathFinder "
             "convergence of one compile (live, or from a recorded "
             "JSONL stream of CAD events)",
    )
    cr.add_argument("circuit", nargs="?", default=None,
                    help="generator spec, e.g. ripple_adder:4 "
                         "(omit when using -i)")
    cr.add_argument("--family", default="VF12")
    cr.add_argument("--effort", default="sa", choices=["greedy", "sa"])
    cr.add_argument("--shape", default="square", choices=["square", "columns"])
    cr.add_argument("--seed", type=int, default=0)
    cr.add_argument("--dedicated", action="store_true",
                    help="bind primary I/O to physical pads")
    cr.add_argument("--engine", default="auto",
                    choices=["auto", "scalar", "vector"],
                    help="CAD kernel engine (results are bit-identical; "
                         "auto picks by design size)")
    cr.add_argument("--compile-cache", action="store_true",
                    help="compile twice through one fresh CompileCache "
                         "and report the cold-miss/warm-hit cache summary")
    cr.add_argument("-i", "--input", default=None, metavar="EVENTS.jsonl",
                    help="reduce this recorded CAD event stream instead "
                         "of compiling")
    cr.add_argument("--jsonl", default=None, metavar="OUT.jsonl",
                    help="also record the CAD event stream as JSONL "
                         "(re-readable with -i)")
    cr.add_argument("--trace", default=None, metavar="OUT.json",
                    help="also write the Chrome trace_event timeline "
                         "(Perfetto/chrome://tracing)")
    cr.add_argument("--json", action="store_true",
                    help="print the machine-readable profile (the "
                         "'compile' block BENCH_*.json embeds)")

    def add_workload_args(sp) -> None:
        sp.add_argument("--family", default="VF12")
        sp.add_argument("--circuits", default="ripple_adder:4,counter:4",
                        help="comma-separated generator specs")
        sp.add_argument("--policy", default="variable",
                        choices=["merged", "software", "nonpreemptable",
                                 "dynamic", "fixed", "variable", "overlay",
                                 "paged", "pagination", "multi"],
                        help="management policy (pagination = paged)")
        sp.add_argument("--tasks", type=int, default=6)
        sp.add_argument("--ops", type=int, default=4)
        sp.add_argument("--cycles", type=int, default=100_000)
        sp.add_argument("--cpu-ms", type=float, default=1.0)
        sp.add_argument("--partitions", type=int, default=2)
        sp.add_argument("--devices", type=int, default=2)
        sp.add_argument("--pages", type=_positive_int, default=6,
                        help="paged policy: pages of the virtual circuit")
        sp.add_argument("--page-width", type=_positive_int, default=3,
                        help="paged policy: columns per page/frame")
        sp.add_argument("--gc", default="compact",
                        choices=["none", "merge", "compact"])
        sp.add_argument("--layout", default="columns",
                        choices=["columns", "rect"])
        sp.add_argument("--placement", default=None,
                        choices=["bottom-left", "best-fit", "skyline",
                                 "column-first-fit", "column-best-fit",
                                 "column-worst-fit"],
                        help="placement engine (variable policy; default: "
                             "the layout's native strategy)")
        sp.add_argument("--replacement", default="lru",
                        choices=["lru", "mru", "fifo", "clock", "random"],
                        help="victim-selection engine (fixed/variable/"
                             "overlay/paged; random is seeded by --seed)")
        sp.add_argument("--board-dispatch", default="affinity",
                        choices=["affinity", "least-busy", "round-robin",
                                 "least-occupancy"],
                        help="board-selection engine (multi policy)")
        sp.add_argument("--load-mode", default="full",
                        choices=["full", "delta", "auto"],
                        help="reconfiguration engine: full rewrites every "
                             "touched frame, delta writes only differing "
                             "frames (+ per-frame address header), auto "
                             "picks the cheaper per load")
        sp.add_argument("--cpu-sched", default="rr",
                        choices=["fifo", "rr", "priority", "edf",
                                 "aged-priority"],
                        help="CPU scheduling engine for the kernel's ready "
                             "queue (edf needs task deadlines; "
                             "aged-priority never starves)")
        sp.add_argument("--fabric-sched", default="fixed-quantum",
                        choices=["fixed-quantum", "cost-aware"],
                        help="fabric scheduling engine (dynamic policy): "
                             "cost-aware skips a preemption when the "
                             "reconfiguration + state bill exceeds the "
                             "slack it buys")
        sp.add_argument("--fpga-slice-ms", type=float, default=None,
                        help="fabric time slice in ms (dynamic policy; "
                             "default: no fabric preemption)")
        sp.add_argument("--effort", default="greedy", choices=["greedy", "sa"])
        sp.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("simulate", help="run a workload under a VFPGA policy")
    add_workload_args(s)

    t = sub.add_parser(
        "trace",
        help="run a workload and export its telemetry event stream",
    )
    add_workload_args(t)
    t.add_argument("--format", default="chrome", choices=["chrome", "jsonl"],
                   help="chrome = trace_event JSON (Perfetto/chrome://tracing)"
                        "; jsonl = one event per line")
    t.add_argument("-o", "--output", default="trace.json",
                   help="output path ('-' = stdout)")
    t.add_argument("--steps", action="store_true",
                   help="also record one event per simulator step")
    t.add_argument("--max-events", type=_positive_int, default=None,
                   help="ring-buffer bound on recorded events (default: all)")

    r = sub.add_parser(
        "report",
        help="latency percentiles, utilization gauges and per-task "
             "breakdown of a run (live or from a recorded JSONL stream)",
    )
    add_workload_args(r)
    r.add_argument("-i", "--input", default=None, metavar="EVENTS.jsonl",
                   help="aggregate this recorded JSONL stream instead of "
                        "running a workload (workload options are ignored)")
    r.add_argument("--json", action="store_true",
                   help="print the machine-readable summary (the same "
                        "block BENCH_*.json embeds) instead of tables")
    r.add_argument("--prometheus", default=None, metavar="OUT.prom",
                   help="also write the metrics in Prometheus text format")
    r.add_argument("--csv", default=None, metavar="OUT.csv",
                   help="also write one CSV row per causal span")
    r.add_argument("--max-events", type=_positive_int, default=None,
                   help="ring-buffer bound on the recorded stream the "
                        "report aggregates (warns when events are dropped)")

    a = sub.add_parser(
        "audit",
        help="verify stream invariants (double allocation, save/restore "
             "pairing, port serialization, liveness, occupancy) over a "
             "live run or a recorded JSONL stream",
    )
    add_workload_args(a)
    a.add_argument("-i", "--input", default=None, metavar="EVENTS.jsonl",
                   help="audit this recorded JSONL stream instead of "
                        "running a workload (workload options are ignored)")
    a.add_argument("--strict", action="store_true",
                   help="abort the live run at the first error-severity "
                        "violation (replay audits are always lenient)")
    a.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="liveness bound: flag FPGA operations still open "
                        "this long (sim time) after their request")
    a.add_argument("--device-port", action="store_true",
                   help="also serialize device-level ConfigPortOp events "
                        "(bare-device streams, e.g. the scrubbing "
                        "experiment)")
    a.add_argument("--json", action="store_true",
                   help="print the machine-readable violation report")

    sl = sub.add_parser(
        "slo",
        help="evaluate per-source service-level objectives (latency "
             "percentile / miss rate / availability, with error budgets "
             "and burn-rate alerts) and the queue/reconfig/service stage "
             "decomposition, over a live run or a recorded JSONL stream; "
             "exit 1 on any breached objective",
    )
    add_workload_args(sl)
    sl.add_argument("-i", "--input", default=None, metavar="EVENTS.jsonl",
                    help="evaluate this recorded JSONL stream instead of "
                         "running a workload (workload options are ignored)")
    sl.add_argument("--slo", action="append", default=None, metavar="SPEC",
                    help="objective spec (repeatable): "
                         "'[NAME:]pXX<=SECONDS[,miss-rate<=FRAC]"
                         "[,availability>=FRAC][,task=GLOB][,source=GLOB]"
                         "[,window=SECONDS][,min-samples=N][,burn=FACTOR]'"
                         " — e.g. --slo 'gold:p99<=5e-3,availability>=0.99'"
                         "; no specs = report-only (stage decomposition, "
                         "exit 0)")
    sl.add_argument("--json", action="store_true",
                    help="print the machine-readable evaluation "
                         "(objectives, breaches, stage decomposition)")
    sl.add_argument("--prometheus", default=None, metavar="OUT.prom",
                    help="also write the metrics (plus per-objective "
                         "error-budget gauges) in Prometheus text format")
    sl.add_argument("--csv", default=None, metavar="OUT.csv",
                    help="also write one CSV row per source with stage "
                         "totals/shares/p99s")

    b = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json artifacts; exit 1 on wall-clock "
             "or event-count regressions past the threshold",
    )
    b.add_argument("base", help="baseline BENCH_*.json")
    b.add_argument("new", help="candidate BENCH_*.json")
    b.add_argument("--fail-on", action="append", default=None,
                   metavar="PCT|METRIC=PCT",
                   help="regression threshold in percent: a bare PCT sets "
                        "the global threshold (default 20), METRIC=PCT "
                        "overrides one metric path (repeatable) — e.g. "
                        "--fail-on 20 --fail-on wall_seconds=300 keeps "
                        "deterministic metrics tight while tolerating "
                        "CI-runner wall-clock noise.  Growth-gated "
                        "compile.* wall clocks whose *baseline* is below "
                        "1 ms (COMPILE_WALL_FLOOR) never fail regardless "
                        "of threshold: sub-millisecond phases measure "
                        "timer/scheduler noise, not the flow, so those "
                        "rows are demoted to informational")
    b.add_argument("--json", action="store_true",
                   help="print the machine-readable diff")
    return p


_COMMANDS = {
    "families": cmd_families,
    "circuits": cmd_circuits,
    "compile": cmd_compile,
    "compile-report": cmd_compile_report,
    "simulate": cmd_simulate,
    "trace": cmd_trace,
    "report": cmd_report,
    "audit": cmd_audit,
    "slo": cmd_slo,
    "bench-diff": cmd_bench_diff,
    "experiments": cmd_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
