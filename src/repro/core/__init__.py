"""The VFPGA manager — the paper's contribution.

Every mechanism of Fornaciari & Piuri's Virtual FPGA is a drop-in
:class:`~repro.osim.syscalls.FpgaService`:

====================  =============================================
paper mechanism        implementation
====================  =============================================
trivial merged config  :class:`MergedResidentService`
non-preemptable use    :class:`NonPreemptableService`
dynamic loading (§3)   :class:`DynamicLoadingService`
partitioning (§4)      :class:`FixedPartitionService`,
                       :class:`VariablePartitionService`
overlaying (§2)        :class:`OverlayService`
segmentation (§2)      :class:`SegmentedVfpgaService`
pagination (§2)        :class:`PagedVfpgaService`
I/O multiplexing (§2)  :class:`PinMultiplexer` (used by all services)
state handling (§3)    :mod:`repro.core.preemption`
====================  =============================================

Use :class:`VirtualFpga` for the high-level API and
:func:`make_service` to instantiate policies by name.
"""

from .base import VfpgaServiceBase
from .bitcache import BitstreamCache, bitstream_digest
from .baselines import (
    MergedResidentService,
    NonPreemptableService,
    SoftwareOnlyService,
    shelf_pack,
)
from .dispatch import (
    AffinityDispatch,
    BoardDispatchPolicy,
    DISPATCH_POLICIES,
    LeastBusyDispatch,
    LeastOccupancyDispatch,
    RoundRobinDispatch,
    make_dispatch,
)
from .dynamic_loading import DynamicLoadingService
from .errors import (
    AdmissionError,
    CapacityError,
    StateAccessError,
    UnknownConfigError,
    VfpgaError,
)
from .iomux import MuxedTransfer, PinMultiplexer
from .metrics import ServiceMetrics
from .multidevice import MultiDeviceService
from .overlay import OverlayService
from .pagination import PagedCircuit, PagedVfpgaService, make_paged_circuit
from .partitioning import (
    ColumnAllocator,
    FixedPartitionService,
    VariablePartitionService,
)
from .placement import (
    BestFitPlacement,
    BottomLeftPlacement,
    ColumnBestFit,
    ColumnFirstFit,
    ColumnWorstFit,
    PLACEMENT_STRATEGIES,
    PlacementRequest,
    PlacementStrategy,
    Proposal,
    SkylinePlacement,
    make_placement,
)
from .policies import (
    ClockReplacement,
    FifoReplacement,
    LruReplacement,
    MruReplacement,
    RandomReplacement,
    ReplacementPolicy,
    access_trace,
    make_replacement,
)
from .preemption import (
    Adaptive,
    PreemptDecision,
    PreemptionPolicy,
    Rollback,
    RunToCompletion,
    SaveRestore,
)
from .rect_alloc import RectAllocator
from .scheduling import (
    AgedPriority,
    CPU_SCHEDULERS,
    CostAwareFabric,
    CpuDecision,
    CpuSchedulerPolicy,
    DeadlineEDF,
    FABRIC_SCHEDULERS,
    FabricDecision,
    FabricSchedulerPolicy,
    FifoCpu,
    FixedQuantumFabric,
    PriorityCpu,
    ReadyEntry,
    ReadyView,
    RoundRobinCpu,
    SwitchContext,
    make_cpu_policy,
    make_cpu_scheduler,
    make_fabric_scheduler,
)
from .scrubber import Scrubber, UpsetInjector, UpsetRecord
from .registry import ConfigEntry, ConfigRegistry, synthetic_bitstream
from .segmentation import (
    SegmentedCircuit,
    SegmentedVfpgaService,
    make_segmented_circuit,
    segment_netlist,
)
from .vfpga import VirtualFpga, make_preemption_policy, make_service

__all__ = [
    "Adaptive",
    "AdmissionError",
    "AffinityDispatch",
    "AgedPriority",
    "BestFitPlacement",
    "BitstreamCache",
    "BoardDispatchPolicy",
    "BottomLeftPlacement",
    "CPU_SCHEDULERS",
    "CapacityError",
    "ClockReplacement",
    "ColumnAllocator",
    "ColumnBestFit",
    "ColumnFirstFit",
    "ColumnWorstFit",
    "ConfigEntry",
    "ConfigRegistry",
    "CostAwareFabric",
    "CpuDecision",
    "CpuSchedulerPolicy",
    "DISPATCH_POLICIES",
    "DeadlineEDF",
    "DynamicLoadingService",
    "FABRIC_SCHEDULERS",
    "FabricDecision",
    "FabricSchedulerPolicy",
    "FifoCpu",
    "FifoReplacement",
    "FixedPartitionService",
    "FixedQuantumFabric",
    "LeastBusyDispatch",
    "LeastOccupancyDispatch",
    "LruReplacement",
    "MergedResidentService",
    "MruReplacement",
    "MultiDeviceService",
    "MuxedTransfer",
    "NonPreemptableService",
    "OverlayService",
    "PLACEMENT_STRATEGIES",
    "PagedCircuit",
    "PagedVfpgaService",
    "PinMultiplexer",
    "PlacementRequest",
    "PlacementStrategy",
    "PreemptDecision",
    "PreemptionPolicy",
    "PriorityCpu",
    "Proposal",
    "RandomReplacement",
    "ReadyEntry",
    "ReadyView",
    "RectAllocator",
    "ReplacementPolicy",
    "Rollback",
    "RoundRobinCpu",
    "RoundRobinDispatch",
    "RunToCompletion",
    "SaveRestore",
    "Scrubber",
    "SegmentedCircuit",
    "SegmentedVfpgaService",
    "ServiceMetrics",
    "SkylinePlacement",
    "SoftwareOnlyService",
    "StateAccessError",
    "SwitchContext",
    "UnknownConfigError",
    "UpsetInjector",
    "UpsetRecord",
    "VariablePartitionService",
    "VfpgaError",
    "VfpgaServiceBase",
    "VirtualFpga",
    "access_trace",
    "bitstream_digest",
    "make_cpu_policy",
    "make_cpu_scheduler",
    "make_dispatch",
    "make_fabric_scheduler",
    "make_paged_circuit",
    "make_placement",
    "make_preemption_policy",
    "make_replacement",
    "make_segmented_circuit",
    "make_service",
    "segment_netlist",
    "shelf_pack",
    "synthetic_bitstream",
]
