"""Shared machinery for every VFPGA service policy.

:class:`VfpgaServiceBase` owns the physical device, the configuration-port
mutex, the pin multiplexer and the metrics, and provides the charging
primitives (load, unload, state save/restore, execute, I/O) that the
concrete policies in this package compose.  Everything is expressed as
simulation-process generators so queueing falls out of the event kernel.

Physical honesty rules enforced here:

* the configuration port is serial: one load/unload/readback at a time;
* on devices without partial reconfiguration, *any* load is a full-device
  download: it must wait until nothing is executing (it would corrupt
  running circuits) and it evicts every resident configuration (§2);
* regions of concurrently resident configurations never overlap (the
  device itself enforces this — see :meth:`repro.device.Fpga.load`).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..device import Fpga
from ..osim import FpgaOp, FpgaService, Task
from ..sim import Resource
from .errors import CapacityError, VfpgaError
from .iomux import PinMultiplexer
from .metrics import ServiceMetrics
from .registry import ConfigEntry, ConfigRegistry

__all__ = ["VfpgaServiceBase"]


class VfpgaServiceBase(FpgaService):
    """Base class: device ownership + charging primitives.

    Parameters
    ----------
    registry:
        The OS configuration tables.
    fpga:
        The physical device (created from the registry's architecture when
        omitted).
    word_rate:
        Pin-multiplexer word rate (see :class:`repro.core.iomux`).
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        fpga: Optional[Fpga] = None,
        word_rate: float = 2.0e6,
    ) -> None:
        self.registry = registry
        self.fpga = fpga if fpga is not None else Fpga(registry.arch)
        if self.fpga.arch.name != registry.arch.name:
            raise VfpgaError("registry and device architectures differ")
        self.mux = PinMultiplexer(self.fpga.arch.n_pins, word_rate=word_rate)
        self.metrics = ServiceMetrics()
        #: handles currently executing on the fabric.
        self._executing: Set[str] = set()
        self._idle_waiters = []
        #: handle -> anchor used at load time (for state addressing).
        self._anchors: Dict[str, tuple] = {}

    # -- kernel lifecycle -----------------------------------------------------
    def attach(self, kernel) -> None:
        super().attach(kernel)
        self.sim = kernel.sim
        self._port = Resource(self.sim, capacity=1)

    def register_task(self, task: Task) -> None:
        for name in task.configs:
            self.registry.get(name)  # raises UnknownConfigError if missing

    # -- residency ---------------------------------------------------------------
    def is_resident(self, handle: str) -> bool:
        return handle in self.fpga.resident

    def resident_handles(self) -> Set[str]:
        return set(self.fpga.resident)

    # -- fabric idleness (full-serial devices) --------------------------------------
    def _begin_exec(self, handle: str) -> None:
        self._executing.add(handle)

    def _end_exec(self, handle: str) -> None:
        self._executing.discard(handle)
        if not self._executing:
            waiters, self._idle_waiters = self._idle_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def _wait_fabric_idle(self):
        while self._executing:
            ev = self.sim.event()
            self._idle_waiters.append(ev)
            yield ev

    # -- charging primitives ------------------------------------------------------------
    def _charge_load(self, task: Optional[Task], entry: ConfigEntry,
                     anchor: tuple, handle: Optional[str] = None):
        """Make ``entry`` resident at ``anchor = (x, y)`` under ``handle``
        (defaults to the entry name).  Yields for the port time."""
        handle = handle or entry.name
        with self._port.request() as req:
            yield req
            if not self.fpga.arch.supports_partial:
                # A full-serial download rewrites the whole RAM: wait until
                # the fabric is quiet, then everything else is gone.
                yield from self._wait_fabric_idle()
                self.fpga.wipe()
            timing = self.fpga.load(handle, entry.bitstream.anchored_at(*anchor))
            self._anchors[handle] = anchor
            self.metrics.n_loads += 1
            self.metrics.load_time += timing.seconds
            if task is not None:
                task.accounting.fpga_reconfig_time += timing.seconds
                task.accounting.n_reconfigs += 1
            self.kernel.trace.log(
                self.sim.now, "fpga-load",
                task.name if task else "", f"{handle}@{anchor}",
            )
            yield self.sim.timeout(timing.seconds)

    def _charge_unload(self, task: Optional[Task], handle: str):
        """Clear ``handle``'s region (an eviction)."""
        with self._port.request() as req:
            yield req
            if handle not in self.fpga.resident:
                return
            timing = self.fpga.unload(handle)
            self._anchors.pop(handle, None)
            self.metrics.n_unloads += 1
            self.metrics.n_evictions += 1
            self.metrics.load_time += timing.seconds
            if task is not None:
                task.accounting.fpga_reconfig_time += timing.seconds
            self.kernel.trace.log(
                self.sim.now, "fpga-unload", task.name if task else "", handle
            )
            yield self.sim.timeout(timing.seconds)

    def _charge_state(self, task: Optional[Task], seconds: float, kind: str,
                      handle: str = ""):
        """Charge a state save or restore over the configuration port."""
        if seconds <= 0:
            return
        with self._port.request() as req:
            yield req
            self.metrics.state_time += seconds
            if kind == "save":
                self.metrics.n_state_saves += 1
            else:
                self.metrics.n_state_restores += 1
            if task is not None:
                task.accounting.fpga_state_time += seconds
            self.kernel.trace.log(
                self.sim.now, f"fpga-state-{kind}",
                task.name if task else "", handle,
            )
            yield self.sim.timeout(seconds)

    def _charge_io(self, task: Task, entry: ConfigEntry, op: FpgaOp):
        """Pin-multiplexed data transfer for one operation."""
        if op.io_words <= 0:
            return
        self.mux.begin(entry.name, entry.io_pins)
        try:
            priced = self.mux.price_active_transfer(
                entry.name, op.io_words, entry.io_pins
            )
            self.metrics.io_time += priced.seconds
            task.accounting.fpga_io_time += priced.seconds
            yield self.sim.timeout(priced.seconds)
        finally:
            self.mux.end(entry.name, entry.io_pins)

    def _charge_exec(self, task: Task, entry: ConfigEntry, seconds: float,
                     handle: Optional[str] = None):
        """``seconds`` of useful fabric time under the executing set."""
        handle = handle or entry.name
        self._begin_exec(handle)
        try:
            yield self.sim.timeout(seconds)
            self.metrics.exec_time += seconds
            task.accounting.fpga_exec_time += seconds
        finally:
            self._end_exec(handle)

    def _charge_wait(self, task: Task, start: float) -> None:
        waited = self.sim.now - start
        if waited > 0:
            self.metrics.wait_time += waited
            task.accounting.fpga_wait_time += waited

    # -- shared helpers ----------------------------------------------------------------
    def op_seconds(self, entry: ConfigEntry, op: FpgaOp) -> float:
        return op.cycles * entry.critical_path

    def _check_fits_device(self, entry: ConfigEntry) -> None:
        arch = self.fpga.arch
        r = entry.bitstream.region
        if r.w > arch.width or r.h > arch.height:
            raise CapacityError(
                f"configuration {entry.name!r} ({r.w}x{r.h}) exceeds the "
                f"physical device ({arch.width}x{arch.height})"
            )
