"""Shared machinery for every VFPGA service policy.

:class:`VfpgaServiceBase` owns the physical device, the configuration-port
mutex, the pin multiplexer and the metrics, and provides the charging
primitives (load, unload, state save/restore, execute, I/O) that the
concrete policies in this package compose.  Everything is expressed as
simulation-process generators so queueing falls out of the event kernel.

Physical honesty rules enforced here:

* the configuration port is serial: one load/unload/readback at a time;
* on devices without partial reconfiguration, *any* load is a full-device
  download: it must wait until nothing is executing (it would corrupt
  running circuits) and it evicts every resident configuration (§2);
* regions of concurrently resident configurations never overlap (the
  device itself enforces this — see :meth:`repro.device.Fpga.load`).
"""

from __future__ import annotations

import inspect
from typing import Dict, Optional, Set, Type

import numpy as np

from ..device import Fpga, digest_bits
from ..osim import FpgaOp, FpgaService, Task
from ..sim import Resource
from ..telemetry import (
    ConfigPortOp,
    DeadlineMiss,
    EventBus,
    Evict,
    Exec,
    Load,
    MetricsRecorder,
    PinWindow,
    PortTransfer,
    StateRestore,
    StateSave,
    TelemetryEvent,
    Wait,
    make_source,
)
from .errors import CapacityError, VfpgaError
from .iomux import PinMultiplexer
from .metrics import ServiceMetrics
from .registry import ConfigEntry, ConfigRegistry

__all__ = ["VfpgaServiceBase"]


class VfpgaServiceBase(FpgaService):
    """Base class: device ownership + charging primitives.

    Observability: every charging primitive *publishes* a typed event on
    the telemetry bus; :attr:`metrics` is a derived view filled by a
    :class:`~repro.telemetry.MetricsRecorder` subscribed with this
    service's :attr:`source` — so a policy composed purely from these
    primitives is fully instrumented without touching a counter, and
    several services (multi-board systems) share one bus without mixing
    their numbers.

    Parameters
    ----------
    registry:
        The OS configuration tables.
    fpga:
        The physical device (created from the registry's architecture when
        omitted).
    word_rate:
        Pin-multiplexer word rate (see :class:`repro.core.iomux`).
    load_mode:
        Reconfiguration engine for every download this service charges:
        ``full`` (rewrite every touched frame — the seed behaviour),
        ``delta`` (frame-diff against the resident bits, charging only
        differing frames plus the per-frame address header) or ``auto``
        (price both, pick the cheaper — never worse than ``full``).
    """

    LOAD_MODES = ("full", "delta", "auto")

    def __init__(
        self,
        registry: ConfigRegistry,
        fpga: Optional[Fpga] = None,
        word_rate: float = 2.0e6,
        load_mode: str = "full",
    ) -> None:
        self.registry = registry
        self.fpga = fpga if fpga is not None else Fpga(registry.arch)
        if self.fpga.arch.name != registry.arch.name:
            raise VfpgaError("registry and device architectures differ")
        if load_mode not in self.LOAD_MODES:
            raise VfpgaError(
                f"load_mode must be one of {self.LOAD_MODES}, got {load_mode!r}"
            )
        self.load_mode = load_mode
        self.mux = PinMultiplexer(self.fpga.arch.n_pins, word_rate=word_rate)
        self.metrics = ServiceMetrics()
        #: Telemetry attribution of this service instance's events.
        self.source = make_source(type(self).__name__)
        #: The bus (the kernel's, bound at :meth:`attach`).
        self.bus: Optional[EventBus] = None
        self._metrics_recorder = MetricsRecorder(self.metrics,
                                                 source=self.source)
        #: handles currently executing on the fabric.
        self._executing: Set[str] = set()
        self._idle_waiters = []
        #: handle -> anchor used at load time (for state addressing).
        self._anchors: Dict[str, tuple] = {}
        #: State snapshot versioning: every save mints a fresh version
        #: and the matching restore republishes it, so stream auditors
        #: can prove restores write back exactly what was saved.
        self._next_state_version = 0
        #: (task name, handle) -> version of the last saved snapshot.
        self._state_versions: Dict[tuple, int] = {}
        #: Memoized digest of an all-zero frame (cleared-region content),
        #: the reference the switch-cost pricer diffs against.
        self._zero_digest: Optional[bytes] = None

    # -- kernel lifecycle -----------------------------------------------------
    def attach(self, kernel) -> None:
        super().attach(kernel)
        self.sim = kernel.sim
        self._port = Resource(self.sim, capacity=1)
        self.bus = kernel.bus
        self._metrics_recorder.attach(self.bus)
        # Device-level port occupancy: traffic that bypasses the charging
        # primitives (boot loads, scrub repairs) still reaches the bus.
        self.fpga.telemetry = self._device_port_event

    # -- telemetry -------------------------------------------------------------
    def _publish(self, event_cls: Type[TelemetryEvent],
                 task: Optional[Task] = None, **fields) -> None:
        """Publish one typed event, stamped with the current simulation
        time, the task's name (when attributed) and this service's source."""
        if self.bus is not None:
            self.bus.publish(event_cls(
                self.sim.now, task.name if task is not None else "",
                source=self.source, **fields,
            ))

    def _device_port_event(self, op: str, handle: str, timing) -> None:
        if self.bus is not None:
            self.bus.publish(ConfigPortOp(
                self.sim.now, source=self.source, op=op, handle=handle,
                seconds=timing.seconds, frames=timing.n_frames,
                mode=timing.mode, frames_written=timing.written,
            ))

    def register_task(self, task: Task) -> None:
        for name in task.configs:
            self.registry.get(name)  # raises UnknownConfigError if missing

    def on_task_exit(self, task: Task) -> None:
        """Release hook — also scores the task against its deadline.

        Idempotent via the :attr:`~repro.osim.task.TaskAccounting.
        deadline_missed` latch, so multi-board systems that forward the
        exit to every board publish exactly one :class:`DeadlineMiss`.
        Overrides must call ``super().on_task_exit(task)``.
        """
        deadline = getattr(task, "deadline", None)
        if deadline is None or task.accounting.deadline_missed:
            return
        lateness = self.sim.now - deadline
        if lateness > 1e-15:
            task.accounting.deadline_missed = True
            self._publish(DeadlineMiss, task, deadline=deadline,
                          lateness=lateness)

    # -- residency ---------------------------------------------------------------
    def is_resident(self, handle: str) -> bool:
        return handle in self.fpga.resident

    def resident_handles(self) -> Set[str]:
        return set(self.fpga.resident)

    # -- shared demand-fault pipeline -------------------------------------------
    #: Optional serialization of fault service.  Policies with fixed
    #: frames/segments set a :class:`~repro.sim.Resource` at attach so
    #: victim choices are sane; policies relying on post-yield
    #: re-validation (variable partitioning) leave it ``None``.
    _fault_lock: Optional[Resource] = None

    def ensure_resident(self, task: Optional[Task], key: str):
        """Demand-fault pipeline shared by every demand-loading policy:
        **lookup → place (evict-until-fits) → load**, re-validating
        residency after every yield of simulation time.

        The concrete policy supplies the bookkeeping through five hooks
        (pagination, segmentation and variable partitioning differ only
        here — the control flow above is identical and lives once):

        * ``_resident_lookup(task, key)`` — the current residency token
          (frame index, anchor, resident record …) or ``None``;
        * ``_note_hit(task, key, token)`` — a lookup succeeded: pin,
          touch the replacement policy, publish ``Hit`` — whatever the
          policy's vocabulary is;
        * ``_publish_fault(task, key)`` — the typed fault event (may be
          a no-op where the miss is reported at load time);
        * ``_place_unit(task, key)`` (generator) — one attempt to find a
          spot, evicting victims as needed (charging their unload time);
          returns the spot or ``None`` when the policy must wait;
        * ``_undo_place(task, key, spot)`` — roll back a spot that lost
          a residency race while placement yielded;
        * ``_load_unit(task, key, spot)`` — commit the mapping and
          charge (or schedule) the download; returns the residency
          token.  May be a generator or a plain function — the latter
          when the download is deferred (e.g. under a residency lock);
        * ``_wait_for_space(task, key)`` (generator) — block until a
          departure could change the picture.

        When :attr:`_fault_lock` is set the whole fault service runs
        under it; either way the pipeline re-validates residency after
        every placement attempt, so policies without the lock stay
        race-free through re-validation alone.
        """
        token = self._resident_lookup(task, key)
        if token is not None:
            self._note_hit(task, key, token)
            return token
        if self._fault_lock is not None:
            with self._fault_lock.request() as req:
                yield req
                token = yield from self._fault_service(task, key)
            return token
        token = yield from self._fault_service(task, key)
        return token

    def _fault_service(self, task: Optional[Task], key: str):
        """The fault path of :meth:`ensure_resident` (post-lookup)."""
        token = self._resident_lookup(task, key)
        if token is not None:
            # Resolved while we waited for fault service.
            self._note_hit(task, key, token)
            return token
        self._publish_fault(task, key)
        while True:
            spot = yield from self._place_unit(task, key)
            token = self._resident_lookup(task, key)
            if token is not None:
                # Raced: `key` became resident while placement yielded.
                if spot is not None:
                    self._undo_place(task, key, spot)
                self._note_hit(task, key, token)
                return token
            if spot is not None:
                loaded = self._load_unit(task, key, spot)
                if inspect.isgenerator(loaded):
                    loaded = yield from loaded
                return loaded
            yield from self._wait_for_space(task, key)

    # Hook defaults: a policy must override everything it reaches.
    def _resident_lookup(self, task: Optional[Task], key: str):
        raise NotImplementedError(
            f"{type(self).__name__} uses ensure_resident() but does not "
            "implement _resident_lookup()"
        )

    def _note_hit(self, task: Optional[Task], key: str, token) -> None:
        pass

    def _publish_fault(self, task: Optional[Task], key: str) -> None:
        pass

    def _place_unit(self, task: Optional[Task], key: str):
        raise NotImplementedError(
            f"{type(self).__name__} uses ensure_resident() but does not "
            "implement _place_unit()"
        )

    def _undo_place(self, task: Optional[Task], key: str, spot) -> None:
        pass

    def _load_unit(self, task: Optional[Task], key: str, spot):
        raise NotImplementedError(
            f"{type(self).__name__} uses ensure_resident() but does not "
            "implement _load_unit()"
        )

    def _wait_for_space(self, task: Optional[Task], key: str):
        raise NotImplementedError(
            f"{type(self).__name__} uses ensure_resident() but does not "
            "implement _wait_for_space()"
        )

    # -- fabric idleness (full-serial devices) --------------------------------------
    def _begin_exec(self, handle: str) -> None:
        self._executing.add(handle)

    def _end_exec(self, handle: str) -> None:
        self._executing.discard(handle)
        if not self._executing:
            waiters, self._idle_waiters = self._idle_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def _wait_fabric_idle(self):
        while self._executing:
            ev = self.sim.event()
            self._idle_waiters.append(ev)
            yield ev

    # -- charging primitives ------------------------------------------------------------
    def _charge_load(self, task: Optional[Task], entry: ConfigEntry,
                     anchor: tuple, handle: Optional[str] = None):
        """Make ``entry`` resident at ``anchor = (x, y)`` under ``handle``
        (defaults to the entry name).  Yields for the port time."""
        handle = handle or entry.name
        with self._port.request() as req:
            yield req
            exclusive = not self.fpga.arch.supports_partial
            if exclusive:
                # A full-serial download rewrites the whole RAM: wait until
                # the fabric is quiet, then everything else is gone.
                yield from self._wait_fabric_idle()
                self.fpga.wipe()
            # The encode hot path: memoised translation + content-addressed
            # frame image (re-placing identical content is a metadata hit).
            if entry.name in self.registry \
                    and self.registry.get(entry.name) is entry:
                bitstream = self.registry.translated(
                    entry.name, (anchor[0], anchor[1])
                )
            else:  # ad-hoc entry: translate directly, still image-cached
                bitstream = entry.bitstream.anchored_at(*anchor)
            image, cache = self.registry.bitcache.frames_for(bitstream)
            timing = self.fpga.load(
                handle, bitstream, mode=self.load_mode, image=image
            )
            self._anchors[handle] = anchor
            if task is not None:
                task.accounting.fpga_reconfig_time += timing.seconds
                task.accounting.n_reconfigs += 1
            region = entry.bitstream.region
            self._publish(Load, task, handle=handle, anchor=tuple(anchor),
                          seconds=timing.seconds, frames=timing.n_frames,
                          clbs=region.area, exclusive=exclusive,
                          shape=(region.w, region.h), mode=timing.mode,
                          frames_written=timing.written, cache=cache)
            yield self.sim.timeout(timing.seconds)

    def _charge_unload(self, task: Optional[Task], handle: str):
        """Clear ``handle``'s region (an eviction)."""
        with self._port.request() as req:
            yield req
            if handle not in self.fpga.resident:
                return
            clbs = self.fpga.resident[handle].region.area
            timing = self.fpga.unload(handle, mode=self.load_mode)
            self._anchors.pop(handle, None)
            if task is not None:
                task.accounting.fpga_reconfig_time += timing.seconds
            self._publish(Evict, task, handle=handle, seconds=timing.seconds,
                          clbs=clbs, mode=timing.mode,
                          frames_written=timing.written)
            yield self.sim.timeout(timing.seconds)

    def _charge_state(self, task: Optional[Task], seconds: float, kind: str,
                      handle: str = ""):
        """Charge a state save or restore over the configuration port.

        Saves mint a fresh state version under (task, handle); the
        matching restore republishes it — the pairing invariant the
        :class:`~repro.telemetry.Auditor` verifies from the stream.
        """
        if seconds <= 0:
            return
        with self._port.request() as req:
            yield req
            if task is not None:
                task.accounting.fpga_state_time += seconds
            key = (task.name if task is not None else "", handle)
            if kind == "save":
                self._next_state_version += 1
                version = self._state_versions[key] = self._next_state_version
                event_cls = StateSave
            else:
                version = self._state_versions.get(key, 0)
                event_cls = StateRestore
            self._publish(event_cls, task, handle=handle, seconds=seconds,
                          version=version)
            yield self.sim.timeout(seconds)

    def _charge_io(self, task: Task, entry: ConfigEntry, op: FpgaOp):
        """Pin-multiplexed data transfer for one operation."""
        if op.io_words <= 0:
            return
        self.mux.begin(entry.name, entry.io_pins)
        self._publish(PinWindow, task, circuit=entry.name,
                      pins=entry.io_pins, active=True,
                      demand=self.mux.total_demand)
        try:
            priced = self.mux.price_active_transfer(
                entry.name, op.io_words, entry.io_pins
            )
            task.accounting.fpga_io_time += priced.seconds
            self._publish(PortTransfer, task, circuit=entry.name,
                          words=op.io_words, pins=entry.io_pins,
                          seconds=priced.seconds, factor=priced.factor)
            yield self.sim.timeout(priced.seconds)
        finally:
            self.mux.end(entry.name, entry.io_pins)
            self._publish(PinWindow, task, circuit=entry.name,
                          pins=entry.io_pins, active=False,
                          demand=self.mux.total_demand)

    def _charge_exec(self, task: Task, entry: ConfigEntry, seconds: float,
                     handle: Optional[str] = None):
        """``seconds`` of useful fabric time under the executing set."""
        handle = handle or entry.name
        self._begin_exec(handle)
        try:
            self._publish(Exec, task, handle=handle, seconds=seconds)
            yield self.sim.timeout(seconds)
            task.accounting.fpga_exec_time += seconds
        finally:
            self._end_exec(handle)

    def _charge_wait(self, task: Task, start: float) -> None:
        waited = self.sim.now - start
        if waited > 0:
            task.accounting.fpga_wait_time += waited
            self._publish(Wait, task, seconds=waited)

    # -- shared helpers ----------------------------------------------------------------
    def op_seconds(self, entry: ConfigEntry, op: FpgaOp) -> float:
        return op.cycles * entry.critical_path

    def switch_reload_cost(self, entry: ConfigEntry) -> float:
        """Price the victim's eventual reload after a preemption.

        The fabric scheduling engine's reconfiguration term: config-port
        seconds to make ``entry`` resident again, under this service's
        :attr:`load_mode`.  Under ``delta``/``auto`` the estimate diffs
        the resident :class:`~repro.device.ConfigRam` digests of the
        entry's touched frames against the all-zero frame the eviction
        leaves behind — frames the circuit occupies non-trivially must
        be rewritten on the way back, frames it leaves blank are free.
        Pure pricing: reads the digest cache, never the port.
        """
        anchor = self._anchors.get(entry.name, (0, 0))
        if entry.name in self.registry \
                and self.registry.get(entry.name) is entry:
            bitstream = self.registry.translated(
                entry.name, (anchor[0], anchor[1])
            )
        else:
            bitstream = entry.bitstream.anchored_at(*anchor)
        port = self.fpga.port
        full = port.load_time(bitstream).seconds
        if self.load_mode == "full":
            return full
        if self._zero_digest is None:
            self._zero_digest = digest_bits(
                np.zeros(self.fpga.arch.frame_bits, dtype=np.uint8)
            )
        ram = self.fpga.ram
        n_changed = sum(
            1 for fx in bitstream.frames_touched(self.fpga.arch)
            if ram.frame_digest(fx) != self._zero_digest
        )
        delta = port.delta_load_time(bitstream, n_changed).seconds
        return min(delta, full) if self.load_mode == "auto" else delta

    def _check_fits_device(self, entry: ConfigEntry) -> None:
        arch = self.fpga.arch
        r = entry.bitstream.region
        if r.w > arch.width or r.h > arch.height:
            raise CapacityError(
                f"configuration {entry.name!r} ({r.w}x{r.h}) exceeds the "
                f"physical device ({arch.width}x{arch.height})"
            )
