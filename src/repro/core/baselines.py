"""Baseline FPGA services the paper's proposals are measured against.

* :class:`MergedResidentService` — the paper's "trivial solution" (§3):
  if the device is large enough, merge every circuit into one resident
  configuration at boot and never reconfigure.  Its admission failure
  (CapacityError) *is* the physical barrier motivating the VFPGA.
* :class:`SoftwareOnlyService` — don't use the FPGA at all: run every
  operation on the CPU at a configurable slowdown (the paper's "software
  programming of the algorithm should be considered" escape hatch, §4).
* :class:`NonPreemptableService` — the paper's drastic option (§4): one
  circuit owns the whole device until its operation completes; waiters
  queue FIFO.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..osim import FpgaOp, Task
from ..sim import Resource
from ..telemetry import Exec, Hit, Load, Miss, OpStart
from .base import VfpgaServiceBase
from .errors import CapacityError
from .registry import ConfigEntry, ConfigRegistry

__all__ = [
    "MergedResidentService",
    "SoftwareOnlyService",
    "NonPreemptableService",
    "shelf_pack",
]


def shelf_pack(
    entries: List[ConfigEntry], width: int, height: int
) -> Dict[str, Tuple[int, int]]:
    """Pack entry footprints onto a ``width``×``height`` array with the
    classic shelf heuristic (sort by height, fill rows left to right).

    Returns name → anchor; raises :class:`CapacityError` if they don't fit
    — which, for the merged baseline, is exactly the paper's "FPGA not
    large enough" condition.
    """
    anchors: Dict[str, Tuple[int, int]] = {}
    shelf_y = 0
    shelf_h = 0
    cursor_x = 0
    for entry in sorted(entries, key=lambda e: (-e.bitstream.region.h, e.name)):
        w, h = entry.bitstream.region.w, entry.bitstream.region.h
        if w > width or h > height:
            raise CapacityError(
                f"circuit {entry.name!r} ({w}x{h}) exceeds the device"
            )
        if cursor_x + w > width:
            shelf_y += shelf_h
            cursor_x = 0
            shelf_h = 0
        if shelf_y + h > height:
            raise CapacityError(
                f"circuits do not fit: {entry.name!r} needs a fresh shelf at "
                f"y={shelf_y} of height {h} on a {width}x{height} device"
            )
        anchors[entry.name] = (cursor_x, shelf_y)
        cursor_x += w
        shelf_h = max(shelf_h, h)
    return anchors


class MergedResidentService(VfpgaServiceBase):
    """All declared configurations resident side by side, loaded once.

    ``boot_load_time`` records the single initialization download; steady
    state has zero reconfigurations.  Concurrent operations on different
    circuits overlap freely (they are physically distinct logic); two
    operations on the *same* circuit serialize on its single instance.
    """

    def __init__(self, registry: ConfigRegistry, **kw) -> None:
        super().__init__(registry, **kw)
        self.boot_load_time = 0.0
        self._locks: Dict[str, Resource] = {}

    def attach(self, kernel) -> None:
        super().attach(kernel)
        entries = self.registry.entries()
        arch = self.fpga.arch
        anchors = shelf_pack(entries, arch.width, arch.height)
        for entry in entries:
            bitstream = self.registry.translated(
                entry.name, anchors[entry.name]
            )
            image, cache = self.registry.bitcache.frames_for(bitstream)
            timing = self.fpga.load(entry.name, bitstream,
                                    mode=self.load_mode, image=image)
            self.boot_load_time += timing.seconds
            self._locks[entry.name] = Resource(self.sim, capacity=1)
            if arch.supports_partial:
                region = entry.bitstream.region
                self._publish(Load, None, handle=entry.name,
                              anchor=anchors[entry.name],
                              seconds=timing.seconds, frames=timing.n_frames,
                              clbs=region.area, shape=(region.w, region.h),
                              mode=timing.mode,
                              frames_written=timing.written, cache=cache)
        if not arch.supports_partial:
            # One full serial download configures everything at once —
            # published as a single Load carrying the circuit count.
            boot = self.fpga.port.full_config()
            self.boot_load_time = boot.seconds
            self._publish(Load, None, handle="<boot>", seconds=boot.seconds,
                          frames=boot.n_frames, count=len(entries),
                          clbs=sum(e.bitstream.region.area for e in entries),
                          exclusive=True)

    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        t0 = self.sim.now
        with self._locks[op.config].request() as req:
            yield req
            self._charge_wait(task, t0)
            self._publish(OpStart, task, config=op.config)
            self._publish(Hit, task, handle=op.config)
            yield from self._charge_io(task, entry, op)
            yield from self._charge_exec(task, entry, self.op_seconds(entry, op))


class SoftwareOnlyService(VfpgaServiceBase):
    """Run every "FPGA" operation on the CPU instead.

    ``slowdown`` scales the operation time (hardware is assumed
    ``slowdown``× faster than software for these kernels).  The op
    occupies the *CPU-side* service process, not the fabric — but it also
    does not overlap with other software ops (one CPU), which is modelled
    with a single lock.
    """

    def __init__(self, registry: ConfigRegistry, slowdown: float = 20.0, **kw) -> None:
        super().__init__(registry, **kw)
        if slowdown <= 0:
            raise ValueError("slowdown must be positive")
        self.slowdown = slowdown
        self._cpu_lock: Optional[Resource] = None

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self._cpu_lock = Resource(self.sim, capacity=1)

    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        t0 = self.sim.now
        with self._cpu_lock.request() as req:
            yield req
            self._charge_wait(task, t0)
            self._publish(OpStart, task, config=op.config)
            seconds = self.op_seconds(entry, op) * self.slowdown
            self._publish(Exec, task, handle="cpu", seconds=seconds)
            yield self.sim.timeout(seconds)
            task.accounting.cpu_time += seconds


class NonPreemptableService(VfpgaServiceBase):
    """Whole-device mutual exclusion, run-to-completion (§4).

    The resource "cannot be released for subsequent reassignment to other
    tasks until the task holding it has not completed the algorithm";
    waiters queue FIFO — the serialization experiment E3 quantifies the
    parallelism this destroys.  The only optimization is configuration
    affinity: if the requested circuit is still resident from last time,
    the download is skipped.
    """

    def __init__(self, registry: ConfigRegistry, **kw) -> None:
        super().__init__(registry, **kw)
        self._device_lock: Optional[Resource] = None
        self._resident_config: Optional[str] = None

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self._device_lock = Resource(self.sim, capacity=1)

    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        self._check_fits_device(entry)
        t0 = self.sim.now
        with self._device_lock.request() as req:
            yield req
            self._charge_wait(task, t0)
            self._publish(OpStart, task, config=op.config)
            if self._resident_config != op.config:
                self._publish(Miss, task, handle=op.config)
                if self._resident_config is not None:
                    yield from self._charge_unload(task, self._resident_config)
                    self._resident_config = None
                yield from self._charge_load(task, entry, (0, 0))
                self._resident_config = op.config
            else:
                self._publish(Hit, task, handle=op.config)
            task.current_config = op.config
            yield from self._charge_io(task, entry, op)
            yield from self._charge_exec(task, entry, self.op_seconds(entry, op))
