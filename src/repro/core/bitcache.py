"""Content-addressed bitstream cache: encode once, place many times.

Encoding a bitstream into configuration frames
(:meth:`~repro.device.FrameCodec.build_frames`) is the host-side hot path
of every demand fault: the VFPGA manager re-runs it on each load even when
the identical circuit was resident moments ago.  This module removes that
work:

* :func:`bitstream_digest` — a structural content digest of a bitstream
  *relative to its region origin*, so the same circuit anchored anywhere
  hashes identically.  The digest is memoised on the (frozen) instance.
* :class:`BitstreamCache` — maps ``(digest, anchor)`` to the encoded
  ``(n_frames, frame_bits)`` frame image.  Re-placing an identical circuit
  at the same anchor is a metadata-only **hit**; a *horizontal* relocation
  of a relocatable circuit reuses the cached column contents at shifted
  frame indices (column frames encode only within-frame *y* offsets, so
  the bits are anchor-x independent); only a *vertical* move re-runs the
  encoder, because the row offsets inside each frame change.

The cache stores immutable (read-only) arrays; the charged configuration
*port* time is unaffected — this is purely host wall-clock, the quantity
the delta engine's frame-diff then reduces on the simulated port.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..device import Architecture, Bitstream, FrameCodec

__all__ = ["BitstreamCache", "bitstream_digest"]

_DIGEST_ATTR = "_content_digest"


def bitstream_digest(bs: Bitstream) -> bytes:
    """Structural content digest of ``bs``, anchor-independent.

    Covers everything that determines the encoded frame bits relative to
    the region origin: region shape, relocatability, tile configurations
    and IOB bindings.  Memoised on the instance (frozen dataclasses still
    carry a ``__dict__``), so repeated loads hash exactly once.
    """
    cached = getattr(bs, _DIGEST_ATTR, None)
    if cached is not None:
        return cached
    x0, y0 = bs.region.x, bs.region.y
    h = hashlib.blake2b(digest_size=16)

    def feed(*parts: object) -> None:
        h.update(repr(parts).encode())
        h.update(b"\x00")

    feed(bs.arch_name, bs.region.w, bs.region.h, bs.relocatable)
    for coord in sorted(bs.clbs):
        cfg = bs.clbs[coord]
        feed(
            "clb", coord.x - x0, coord.y - y0, cfg.lut_truth,
            cfg.ff_enable, cfg.ff_init, cfg.out_registered,
            cfg.input_sel, tuple(sorted(cfg.out_drives)),
        )
    for coord in sorted(bs.switches):
        feed("sw", coord.x - x0, coord.y - y0,
             tuple(sorted(bs.switches[coord])))
    for site in sorted(bs.iobs):
        cfg = bs.iobs[site]
        feed("iob", tuple(site), cfg.enable, cfg.direction.name,
             cfg.track_sel)
    digest = h.digest()
    object.__setattr__(bs, _DIGEST_ATTR, digest)
    return digest


class BitstreamCache:
    """Content-addressed cache of encoded frame images.

    Keyed by ``(content digest, anchor x, anchor y)``.  ``frames_for``
    returns the image plus how it was obtained — ``"hit"`` (exact key),
    ``"reloc"`` (rebuilt from a cached image at another x anchor of the
    same row) or ``"miss"`` (full encode).  Returned arrays are read-only
    and must not be mutated.
    """

    def __init__(self, arch: Architecture,
                 codec: Optional[FrameCodec] = None) -> None:
        self.arch = arch
        self.codec = codec if codec is not None else FrameCodec(arch)
        self._images: Dict[Tuple[bytes, int, int], np.ndarray] = {}
        #: First image seen for (digest, anchor y) — the horizontal
        #: relocation donor.
        self._by_row: Dict[Tuple[bytes, int], Tuple[int, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.relocations = 0

    def __len__(self) -> int:
        return len(self._images)

    def frames_for(self, bs: Bitstream) -> Tuple[np.ndarray, str]:
        """The encoded ``(n_frames, frame_bits)`` image for ``bs``."""
        digest = bitstream_digest(bs)
        x, y = bs.region.x, bs.region.y
        key = (digest, x, y)
        image = self._images.get(key)
        if image is not None:
            self.hits += 1
            return image, "hit"
        donor = self._by_row.get((digest, y)) if bs.relocatable else None
        if donor is not None:
            donor_x, donor_image = donor
            image = np.zeros_like(donor_image)
            w = bs.region.w
            image[x : x + w] = donor_image[donor_x : donor_x + w]
            self.relocations += 1
            outcome = "reloc"
        else:
            image = self.codec.build_frames(bs.clbs, bs.switches, bs.iobs)
            self.misses += 1
            outcome = "miss"
        image.setflags(write=False)
        self._images[key] = image
        self._by_row.setdefault((digest, y), (x, image))
        return image, outcome

    def clear(self) -> None:
        self._images.clear()
        self._by_row.clear()
        self.hits = self.misses = self.relocations = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._images),
            "hits": self.hits,
            "misses": self.misses,
            "relocations": self.relocations,
        }
