"""Pluggable board dispatch for multi-device virtualization.

The paper's "virtual computer" vision (§2) composes many FPGA boards
behind one service; *which board gets the next operation* is a scheduling
policy in its own right, mirroring the placement/replacement split of the
single-board engines.  A :class:`BoardDispatchPolicy` sees the
configuration name, the per-board services, and the current in-flight
counts, and answers with a board index.

``affinity`` (the seed behavior) prefers a board already holding the
configuration and falls back to least-busy; ``least-busy`` ignores
residency entirely; ``round-robin`` is the oblivious control arm; and
``least-occupancy`` targets the board with the most free CLBs — the
greedy capacity balancer of Le & Youn's resource-manager separation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence, Type, Union

__all__ = [
    "BoardDispatchPolicy",
    "AffinityDispatch",
    "LeastBusyDispatch",
    "RoundRobinDispatch",
    "LeastOccupancyDispatch",
    "make_dispatch",
    "DISPATCH_POLICIES",
]


class BoardDispatchPolicy(ABC):
    """Choose the board an operation runs on."""

    name: str = "abstract"

    @abstractmethod
    def choose(
        self,
        config: str,
        boards: Sequence,
        in_flight: Sequence[int],
    ) -> int:
        """Board index for an operation on ``config``.

        ``boards`` are the per-board services (each answers
        ``is_resident(config)`` and exposes ``fpga``); ``in_flight[i]``
        counts operations currently dispatched to board ``i``.
        """


def _least_busy(in_flight: Sequence[int]) -> int:
    return min(range(len(in_flight)), key=lambda i: (in_flight[i], i))


class LeastBusyDispatch(BoardDispatchPolicy):
    """Fewest outstanding operations; ties go to the lowest index."""

    name = "least-busy"

    def choose(self, config: str, boards: Sequence,
               in_flight: Sequence[int]) -> int:
        return _least_busy(in_flight)


class AffinityDispatch(LeastBusyDispatch):
    """A board already holding the configuration wins (no reload);
    otherwise least-busy — the seed dispatcher, preserved exactly."""

    name = "affinity"

    def choose(self, config: str, boards: Sequence,
               in_flight: Sequence[int]) -> int:
        for i, board in enumerate(boards):
            if board.is_resident(config):
                return i
        return _least_busy(in_flight)


class RoundRobinDispatch(BoardDispatchPolicy):
    """Strict rotation regardless of residency or load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, config: str, boards: Sequence,
               in_flight: Sequence[int]) -> int:
        i = self._next % len(boards)
        self._next = (i + 1) % len(boards)
        return i


class LeastOccupancyDispatch(BoardDispatchPolicy):
    """Most free CLBs wins (capacity balancing); ties to lowest index."""

    name = "least-occupancy"

    def choose(self, config: str, boards: Sequence,
               in_flight: Sequence[int]) -> int:
        return min(
            range(len(boards)),
            key=lambda i: (-boards[i].fpga.free_area(), in_flight[i], i),
        )


#: Registry of instantiable dispatch policies (CLI sweep space).
DISPATCH_POLICIES: Dict[str, Type[BoardDispatchPolicy]] = {
    cls.name: cls
    for cls in (
        AffinityDispatch,
        LeastBusyDispatch,
        RoundRobinDispatch,
        LeastOccupancyDispatch,
    )
}


def make_dispatch(
    name: Union[str, BoardDispatchPolicy],
) -> BoardDispatchPolicy:
    """Instantiate a dispatch policy by name (instances pass through)."""
    if isinstance(name, BoardDispatchPolicy):
        return name
    try:
        return DISPATCH_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown board dispatch policy {name!r}; "
            f"have {sorted(DISPATCH_POLICIES)}"
        ) from None
