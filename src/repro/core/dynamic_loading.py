"""Dynamic loading — the paper's first virtualization mechanism (§3).

The whole device is multiplexed among tasks: the configuration a task
needs is downloaded when it reaches the head of the fabric queue (lazily —
"upon system call"), skipped when still resident from a previous use
(configuration affinity), and optionally *preempted* while executing so
the fabric can be time-shared.

Preemption semantics follow the paper exactly, delegated to a
:class:`~repro.core.preemption.PreemptionPolicy`:

* combinational circuits finish their propagation and lose nothing;
* sequential circuits are either saved/restored (observable state
  required), rolled back to their initial data, or simply not preempted.

``fpga_time_slice=None`` disables preemption entirely: operations run to
completion once started, but every operation may still require a
download (the difference from :class:`NonPreemptableService` is that the
queue is serviced per-op rather than per-device-hold — with the default
policy they behave identically; the class exists so policies compose).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..osim import FpgaOp, Task
from ..sim import Resource
from ..telemetry import (
    Hit,
    Miss,
    OpStart,
    Preempt,
    Prefetch,
    Rollback,
    SchedDecision,
)
from .base import VfpgaServiceBase
from .preemption import PreemptionPolicy, RunToCompletion
from .registry import ConfigRegistry
from .scheduling import (
    FabricSchedulerPolicy,
    SwitchContext,
    make_fabric_scheduler,
)

__all__ = ["DynamicLoadingService"]


class DynamicLoadingService(VfpgaServiceBase):
    """Whole-device dynamic loading with optional fabric time-slicing.

    Parameters
    ----------
    registry:
        The OS configuration tables.
    preemption:
        Preemption policy applied when the fabric time slice expires with
        waiters present.
    fpga_time_slice:
        Fabric quantum in seconds; ``None`` = no preemption.
    fabric_sched:
        Fabric scheduling engine (name or
        :class:`~repro.core.scheduling.FabricSchedulerPolicy` instance)
        deciding *whether* a quantum-boundary preemption is worth its
        priced cost.  The default ``fixed-quantum`` reproduces the seed
        behavior exactly — preempt whenever anyone waits;
        ``cost-aware`` skips switches whose reconfiguration bill
        exceeds the fabric time they buy.
    eager:
        Load the dispatched task's next configuration in the background
        while it is still in its CPU section — the paper's "implicitly
        when the task is started or reactivated" (§3).  The prefetch only
        runs when the fabric is idle, so it can never delay an op already
        in flight, but a prefetch in progress does make a newly arriving
        op wait (the classic prefetch gamble).
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        preemption: Optional[PreemptionPolicy] = None,
        fpga_time_slice: Optional[float] = None,
        fabric_sched: Union[str, FabricSchedulerPolicy, None] = None,
        eager: bool = False,
        **kw,
    ) -> None:
        super().__init__(registry, **kw)
        self.policy = preemption if preemption is not None else RunToCompletion()
        if fpga_time_slice is not None and fpga_time_slice <= 0:
            raise ValueError("fpga_time_slice must be positive or None")
        self.fpga_time_slice = fpga_time_slice
        self.fabric_sched = make_fabric_scheduler(
            fabric_sched if fabric_sched is not None else "fixed-quantum"
        )
        self.eager = eager
        self.n_prefetches = 0
        self._prefetching: Optional[str] = None
        self._fabric: Optional[Resource] = None
        self._resident_config: Optional[str] = None
        #: tid -> task currently queued for the fabric (deadline slack).
        self._fabric_waiters: Dict[int, Task] = {}

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self._fabric = Resource(self.sim, capacity=1)

    # ------------------------------------------------------------------
    def _ensure_resident(self, task: Optional[Task], entry):
        """Download ``entry`` if it is not the resident configuration."""
        if self._resident_config == entry.name and self.is_resident(entry.name):
            self._publish(Hit, task, handle=entry.name)
            return
        self._publish(Miss, task, handle=entry.name)
        if self._resident_config is not None and self.is_resident(
            self._resident_config
        ):
            yield from self._charge_unload(task, self._resident_config)
        self._resident_config = None
        yield from self._charge_load(task, entry, (0, 0))
        self._resident_config = entry.name

    # -- eager (implicit) loading ----------------------------------------
    def on_dispatch(self, task: Task) -> None:
        if not self.eager:
            return
        config = self.kernel.next_fpga_config(task)
        if (
            config is None
            or config == self._resident_config
            or config == self._prefetching
            or self._fabric is None
            or self._fabric.count > 0
            or self._fabric.queue_length > 0
        ):
            return
        self.sim.process(self._prefetch(config), name=f"prefetch:{config}")

    def _prefetch(self, config: str):
        req = self._fabric.request()
        if req not in self._fabric.users:
            req.cancel()  # raced with a real op: give way immediately
            return
        self._prefetching = config
        try:
            yield req  # already granted; consume the event
            entry = self.registry.get(config)
            if self._resident_config != config:
                self.n_prefetches += 1
                self._publish(Prefetch, None, config=config)
                yield from self._ensure_resident(None, entry)
        finally:
            self._prefetching = None
            self._fabric.release(req)

    def _waiter_slack(self) -> float:
        """Tightest deadline slack among tasks queued for the fabric
        (inf when nobody waiting declared a deadline)."""
        slack = float("inf")
        now = self.sim.now
        for waiter in self._fabric_waiters.values():
            deadline = getattr(waiter, "deadline", None)
            if deadline is not None:
                slack = min(slack, deadline - now)
        return slack

    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        self._check_fits_device(entry)
        total = self.op_seconds(entry, op)
        remaining = total
        io_done = False
        restore_pending = False
        t_queued = self.sim.now
        self._publish(OpStart, task, config=op.config)
        # Anti-livelock patience: an operation that keeps losing its
        # progress to rollbacks would restart forever under contention (a
        # hazard the paper does not address).  Each rollback doubles the
        # quantum this op gets before it may be preempted again, so it
        # eventually runs to completion.
        op_rollbacks = 0

        while remaining > 0 or not io_done:
            req = self._fabric.request()
            # Visible to the fabric scheduling engine while queued, so
            # the resident op's preemption points can price our slack.
            self._fabric_waiters[task.tid] = task
            try:
                yield req
            finally:
                self._fabric_waiters.pop(task.tid, None)
            self._charge_wait(task, t_queued)
            try:
                yield from self._ensure_resident(task, entry)
                if restore_pending:
                    yield from self._charge_state(
                        task,
                        self.fpga.port.state_restore_time(entry.bitstream).seconds,
                        "restore",
                        handle=entry.name,
                    )
                    restore_pending = False
                if not io_done:
                    yield from self._charge_io(task, entry, op)
                    io_done = True
                task.current_config = op.config
                while remaining > 0:
                    # With a fabric time slice the op always advances in
                    # quantum-sized chunks so waiters arriving mid-op get a
                    # preemption point; uncontended boundaries just continue.
                    quantum = (
                        self.fpga_time_slice * (2 ** op_rollbacks)
                        if self.fpga_time_slice is not None
                        else remaining
                    )
                    chunk = min(quantum, remaining)
                    yield from self._charge_exec(task, entry, chunk,
                                                 handle=entry.name)
                    remaining -= chunk
                    if remaining <= 1e-15:
                        remaining = 0.0
                        break
                    # The preemption mechanism decides first (its strict
                    # modes must raise even at uncontended boundaries);
                    # with waiters present the fabric scheduling engine
                    # then prices the switch and may veto it.
                    decision = self.policy.decide(
                        entry, self.fpga.port, progress_done=total - remaining
                    )
                    waiting = self._fabric.queue_length
                    if waiting == 0:
                        continue  # keep the fabric
                    ctx = SwitchContext(
                        waiting=waiting,
                        remaining=remaining,
                        progress_done=total - remaining,
                        decision=decision,
                        waiter_slack=self._waiter_slack(),
                        reload_cost=lambda: self.switch_reload_cost(entry),
                    )
                    verdict = self.fabric_sched.decide(ctx)
                    self._publish(
                        SchedDecision, task,
                        strategy=self.fabric_sched.name,
                        handle=entry.name,
                        preempt=bool(decision.allowed and verdict.preempt),
                        reason=verdict.reason,
                        waiting=waiting,
                        reconfig_cost=ctx.reconfig_cost,
                        state_cost=ctx.state_cost,
                        lost_cost=ctx.lost_progress,
                        remaining=remaining,
                        slack=ctx.waiter_slack,
                    )
                    if not decision.allowed or not verdict.preempt:
                        continue  # keep the fabric
                    # -- preempt ------------------------------------------
                    task.accounting.n_preemptions += 1
                    self._publish(Preempt, task, handle=entry.name)
                    if decision.keep_progress:
                        if decision.save_cost:
                            yield from self._charge_state(
                                task, decision.save_cost, "save",
                                handle=entry.name,
                            )
                            restore_pending = True
                    else:
                        # Roll back: the computation restarts from the
                        # beginning "by presenting the initial data" (§3)
                        # — including the input transfer.
                        self._publish(Rollback, task, handle=entry.name)
                        task.accounting.n_rollbacks += 1
                        op_rollbacks += 1
                        remaining = total
                        io_done = False
                    break  # release the fabric; loop re-queues us
            finally:
                self._fabric.release(req)
            t_queued = self.sim.now
