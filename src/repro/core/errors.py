"""Errors raised by the VFPGA manager."""

from __future__ import annotations

__all__ = [
    "VfpgaError",
    "UnknownConfigError",
    "CapacityError",
    "AdmissionError",
    "StateAccessError",
]


class VfpgaError(Exception):
    """Base class for VFPGA management errors."""


class UnknownConfigError(VfpgaError, KeyError):
    """A task referenced a configuration absent from the OS tables."""


class CapacityError(VfpgaError):
    """The physical device cannot satisfy the request at all (a circuit
    larger than the device / partition set, or pins beyond the multiplexer's
    limit) — the paper's physical barriers made explicit."""


class AdmissionError(VfpgaError):
    """A task/circuit combination was rejected at registration time."""


class StateAccessError(VfpgaError):
    """Preemption required observing/controlling a circuit whose state is
    not accessible (paper §3: observability/controllability precondition)."""
