"""Input/output pin virtualization (paper §2).

The paper's sixth mechanism: "input and output multiplexing is used to
assign the current inputs and outputs to the logical function associated
to the running task or to increase the number of inputs and outputs when
there are not enough physically available."

Model: transfers move words over the device pins in fixed *frames*.  While
the sum of the virtual pins of all concurrently transferring circuits fits
the physical pin count, every transfer proceeds at full rate; beyond that,
frames are time-sliced and every active transfer dilates by the
oversubscription factor.  :class:`PinMultiplexer` tracks the active
demand, prices transfers, and exposes the static model
(:meth:`transfer_time`) that experiment E9 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .errors import CapacityError
from .metrics import ServiceMetrics

__all__ = ["PinMultiplexer", "MuxedTransfer"]


@dataclass(frozen=True)
class MuxedTransfer:
    """Priced transfer: the time charged and the factor applied."""

    seconds: float
    factor: float
    words: int


class PinMultiplexer:
    """Shared-pin transfer pricing for one device.

    Parameters
    ----------
    n_physical_pins:
        The device's bonded pad count (the physical barrier).
    word_rate:
        Words per second a circuit moves when it has all the pins it wants
        (calibrated to mid-90s board I/O; the default keeps transfers in
        the same decade as reconfiguration so trade-offs are visible).
    """

    def __init__(self, n_physical_pins: int, word_rate: float = 2.0e6) -> None:
        if n_physical_pins < 1:
            raise ValueError("need at least one physical pin")
        if word_rate <= 0:
            raise ValueError("word_rate must be positive")
        self.n_physical_pins = n_physical_pins
        self.word_rate = word_rate
        #: circuit name -> virtual pins currently transferring.
        self.active: Dict[str, int] = {}
        self.metrics = ServiceMetrics()

    @property
    def total_demand(self) -> int:
        """Sum of virtual pins currently transferring (telemetry view)."""
        return sum(self.active.values())

    # -- static model (used directly by experiment E9) -----------------------
    def oversubscription(self, extra_pins: int = 0) -> float:
        """Current demand / physical pins, floored at 1."""
        demand = sum(self.active.values()) + extra_pins
        return max(1.0, demand / self.n_physical_pins)

    def transfer_time(self, words: int, virtual_pins: int,
                      concurrent_pins: int = 0) -> MuxedTransfer:
        """Price a transfer of ``words`` by a circuit with ``virtual_pins``
        while ``concurrent_pins`` other virtual pins are active."""
        if virtual_pins < 0 or words < 0:
            raise ValueError("negative transfer")
        demand = virtual_pins + concurrent_pins
        factor = max(1.0, demand / self.n_physical_pins)
        return MuxedTransfer(
            seconds=(words / self.word_rate) * factor,
            factor=factor,
            words=words,
        )

    # -- dynamic bookkeeping (used by the services) --------------------------------
    def begin(self, circuit: str, virtual_pins: int) -> None:
        if virtual_pins < 0:
            raise ValueError("negative pin demand")
        self.active[circuit] = self.active.get(circuit, 0) + virtual_pins

    def end(self, circuit: str, virtual_pins: int) -> None:
        have = self.active.get(circuit, 0)
        if have < virtual_pins:
            raise CapacityError(
                f"pin release of {virtual_pins} exceeds holding {have} "
                f"for {circuit!r}"
            )
        remaining = have - virtual_pins
        if remaining:
            self.active[circuit] = remaining
        else:
            self.active.pop(circuit, None)

    def price_active_transfer(self, circuit: str, words: int,
                              virtual_pins: int) -> MuxedTransfer:
        """Price a transfer assuming ``circuit`` is already registered in
        ``active`` (its own pins count toward the demand)."""
        others = sum(p for c, p in self.active.items() if c != circuit)
        t = self.transfer_time(words, virtual_pins, concurrent_pins=others)
        self.metrics.io_time += t.seconds
        return t
