"""Service-level metrics: what every VFPGA policy is judged by.

Task-side accounting lives in :class:`repro.osim.task.TaskAccounting`;
this is the device-side view (loads, hits, evictions, faults, port busy
time).  Both are filled in as charges happen, so the experiment harness
can cross-check them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ServiceMetrics"]


@dataclass
class ServiceMetrics:
    """Counters and per-cause time sums for one service instance."""

    # -- counters -----------------------------------------------------------
    n_loads: int = 0
    n_unloads: int = 0
    n_hits: int = 0            #: requests served with the config already resident
    n_misses: int = 0
    n_evictions: int = 0
    n_page_faults: int = 0
    n_page_accesses: int = 0
    n_preemptions: int = 0
    n_rollbacks: int = 0
    n_state_saves: int = 0
    n_state_restores: int = 0
    n_relocations: int = 0
    n_compactions: int = 0
    n_ops: int = 0
    #: Tasks that completed after their declared deadline (deadline-free
    #: workloads always read 0 — the bench-diff drift gate pins it).
    n_deadline_misses: int = 0
    #: Configuration frames physically written by loads + evictions (the
    #: delta engine's primary savings axis; under full mode this equals
    #: the frames addressed).
    frames_written: int = 0

    # -- time sums (seconds) ---------------------------------------------------
    load_time: float = 0.0
    state_time: float = 0.0
    exec_time: float = 0.0
    io_time: float = 0.0
    wait_time: float = 0.0

    # -- derived ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.n_hits + self.n_misses
        return 0.0 if total == 0 else self.n_hits / total

    @property
    def fault_rate(self) -> float:
        return (
            0.0
            if self.n_page_accesses == 0
            else self.n_page_faults / self.n_page_accesses
        )

    @property
    def overhead_time(self) -> float:
        return self.load_time + self.state_time + self.io_time + self.wait_time

    @property
    def useful_fraction(self) -> float:
        denom = self.exec_time + self.overhead_time
        return 1.0 if denom == 0 else self.exec_time / denom

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name in self.__dataclass_fields__:
            out[name] = getattr(self, name)
        out["hit_rate"] = self.hit_rate
        out["fault_rate"] = self.fault_rate
        out["useful_fraction"] = self.useful_fraction
        return out
