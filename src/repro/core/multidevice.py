"""Multi-board virtualization — the paper's "virtual computer" vision (§2).

"A higher-abstraction level could be envisioned by realizing a computing
system composed only of FPGA-based boards so that the whole system
operation can be virtualized."

:class:`MultiDeviceService` composes N single-device services (one
physical :class:`~repro.device.Fpga` each) behind the same
:class:`~repro.osim.syscalls.FpgaService` interface: tasks still see one
virtual FPGA; the dispatcher places each operation on the board that
already holds its configuration (affinity first), else on the least-busy
board.  Every per-board policy from this package can be the building
block, so "a rack of boards under variable partitioning" is one line.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from ..osim import FpgaOp, FpgaService, Task
from ..telemetry import BoardDispatch, make_source
from .base import VfpgaServiceBase
from .dispatch import BoardDispatchPolicy, make_dispatch
from .dynamic_loading import DynamicLoadingService
from .metrics import ServiceMetrics
from .registry import ConfigRegistry

__all__ = ["MultiDeviceService"]


class MultiDeviceService(FpgaService):
    """N boards, one virtual FPGA.

    Parameters
    ----------
    registry:
        Shared OS tables (every board has the same architecture).
    n_devices:
        Board count.
    board_factory:
        Builds one per-board service from the registry (defaults to
        :class:`DynamicLoadingService`).  Called once per board.
    dispatch:
        A :class:`~repro.core.dispatch.BoardDispatchPolicy` name or
        instance; the default ``"affinity"`` (configuration-resident
        board first, then least-busy) is the seed behavior.
    load_mode:
        Reconfiguration engine passed to the *default* board factory
        (ignored when ``board_factory`` is given — build your boards with
        whatever mode you want there).
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        n_devices: int,
        board_factory: Optional[
            Callable[[ConfigRegistry], VfpgaServiceBase]
        ] = None,
        dispatch: Union[str, BoardDispatchPolicy] = "affinity",
        load_mode: str = "full",
    ) -> None:
        if n_devices < 1:
            raise ValueError("need at least one device")
        self.registry = registry
        self.dispatch = make_dispatch(dispatch)
        factory = board_factory or (
            lambda reg: DynamicLoadingService(reg, load_mode=load_mode)
        )
        self.boards: List[VfpgaServiceBase] = [
            factory(registry) for _ in range(n_devices)
        ]
        #: Telemetry attribution of the *dispatcher's* own events (each
        #: board keeps publishing under its own source on the shared bus).
        self.source = make_source(type(self).__name__)
        #: Outstanding operations per board (dispatch load estimate).
        self._in_flight: List[int] = [0] * n_devices

    # -- lifecycle -----------------------------------------------------------
    def attach(self, kernel) -> None:
        super().attach(kernel)
        for board in self.boards:
            board.attach(kernel)

    def register_task(self, task: Task) -> None:
        for board in self.boards:
            board.register_task(task)

    def on_dispatch(self, task: Task) -> None:
        for board in self.boards:
            board.on_dispatch(task)

    def on_task_exit(self, task: Task) -> None:
        for board in self.boards:
            board.on_task_exit(task)

    # -- placement --------------------------------------------------------------
    def _choose_board(self, config: str) -> int:
        i = self.dispatch.choose(config, self.boards, self._in_flight)
        if not 0 <= i < len(self.boards):
            raise ValueError(
                f"dispatch policy {self.dispatch.name!r} chose board {i} "
                f"of {len(self.boards)}"
            )
        return i

    def execute(self, task: Task, op: FpgaOp):
        i = self._choose_board(op.config)
        self._in_flight[i] += 1
        self.kernel.bus.publish(BoardDispatch(
            self.kernel.sim.now, task.name, source=self.source,
            config=op.config, board=i,
        ))
        try:
            yield from self.boards[i].execute(task, op)
        finally:
            self._in_flight[i] -= 1

    # -- aggregate metrics ----------------------------------------------------------
    @property
    def metrics(self) -> ServiceMetrics:
        """Sum of the per-board metrics."""
        total = ServiceMetrics()
        for board in self.boards:
            m = board.metrics
            for name in ServiceMetrics.__dataclass_fields__:
                setattr(total, name, getattr(total, name) + getattr(m, name))
        return total

    @property
    def per_board_exec(self) -> List[float]:
        return [b.metrics.exec_time for b in self.boards]
