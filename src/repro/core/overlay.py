"""Overlaying — the paper's third mechanism (§2).

"Overlaying configures part of the FPGA to compute common functions which
are frequently used, while the remaining part is used to download specific
functions which are typically rarely used or mutually exclusive."

:class:`OverlayService` pins a chosen set of hot configurations at boot
(packed from the left edge) and dynamically loads everything else into the
remaining columns — the *overlay area* — which is divided into
``overlay_slots`` equal column slots, each caching one circuit at a time
with configuration affinity.  With the default single slot the overlay
area behaves like a miniature
:class:`~repro.core.dynamic_loading.DynamicLoadingService` (the seed
behavior); more slots turn it into a small fixed-partition cache whose
victims are chosen by the pluggable ``replacement`` engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..osim import FpgaOp, Task
from ..sim import Resource
from ..telemetry import Hit, Load, Miss, OpStart, Placement
from .base import VfpgaServiceBase
from .errors import CapacityError
from .policies import ReplacementPolicy, make_replacement
from .registry import ConfigEntry, ConfigRegistry

__all__ = ["OverlayService"]


@dataclass
class _Slot:
    """One overlay slot's bookkeeping."""

    index: int
    x: int
    width: int
    lock: Resource
    resident: Optional[str] = None
    last_used: float = 0.0


class OverlayService(VfpgaServiceBase):
    """Pinned hot set + replacement-managed dynamic overlay slots.

    Parameters
    ----------
    registry:
        OS configuration tables.
    resident_names:
        Configurations pinned for the whole run (the "common functions").
        They are packed side by side from column 0; the rest of the device
        is the overlay area.
    replacement:
        Victim selection among idle overlay slots — a
        :class:`~repro.core.policies.ReplacementPolicy` name or instance
        (default ``"lru"``, the seed behavior).
    replacement_seed:
        Seed for stochastic replacement policies.
    overlay_slots:
        Equal column slots the overlay area is divided into (default 1 —
        one circuit resident at a time, exactly the seed service).
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        resident_names: Sequence[str],
        replacement: Union[str, ReplacementPolicy] = "lru",
        replacement_seed: int = 0,
        overlay_slots: int = 1,
        **kw,
    ) -> None:
        super().__init__(registry, **kw)
        if overlay_slots < 1:
            raise ValueError("need at least one overlay slot")
        self.resident_names = list(dict.fromkeys(resident_names))
        self.replacement = make_replacement(replacement,
                                            seed=replacement_seed)
        self.overlay_slots = overlay_slots
        self._locks = {}
        self._slots: List[_Slot] = []
        self._overlay_x = 0

    def attach(self, kernel) -> None:
        super().attach(kernel)
        arch = self.fpga.arch
        x = 0
        for name in self.resident_names:
            entry = self.registry.get(name)
            r = entry.bitstream.region
            if r.h > arch.height or x + r.w > arch.width:
                raise CapacityError(
                    f"pinned set does not fit: {name!r} needs columns "
                    f"{x}..{x + r.w} of {arch.width}"
                )
            bitstream = self.registry.translated(name, (x, 0))
            image, cache = self.registry.bitcache.frames_for(bitstream)
            timing = self.fpga.load(name, bitstream, mode=self.load_mode,
                                    image=image)
            self._publish(Load, None, handle=name, anchor=(x, 0),
                          seconds=timing.seconds, frames=timing.n_frames,
                          clbs=r.area, shape=(r.w, r.h), mode=timing.mode,
                          frames_written=timing.written, cache=cache)
            self._locks[name] = Resource(self.sim, capacity=1)
            x += r.w
        self._overlay_x = x
        slot_width = self.overlay_width // self.overlay_slots
        self._slots = [
            _Slot(
                index=i,
                x=x + i * slot_width,
                width=slot_width,
                lock=Resource(self.sim, capacity=1),
            )
            for i in range(self.overlay_slots)
        ]

    @property
    def overlay_width(self) -> int:
        return self.fpga.arch.width - self._overlay_x

    # ------------------------------------------------------------------
    def _choose_slot(self, entry: ConfigEntry) -> _Slot:
        """Affinity → empty idle → replacement victim → shortest queue
        (mirrors :meth:`FixedPartitionService._choose` over the slots)."""
        r = entry.bitstream.region
        fitting = [
            s for s in self._slots
            if r.w <= s.width and r.h <= self.fpga.arch.height
        ]
        if not fitting:
            raise CapacityError(
                f"configuration {entry.name!r} ({r.w} cols) exceeds the "
                f"overlay area ({self.overlay_width} cols in "
                f"{self.overlay_slots} slot(s))"
            )
        for s in fitting:  # affinity: never reload a resident circuit
            if s.resident == entry.name:
                return s
        idle = [
            s for s in fitting
            if s.lock.count == 0 and s.lock.queue_length == 0
        ]
        if idle:
            empty = [s for s in idle if s.resident is None]
            if empty:
                return empty[0]
            victim = self.replacement.victim([s.index for s in idle])
            return next(s for s in idle if s.index == victim)
        return min(fitting, key=lambda s: (s.lock.queue_length, s.index))

    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        t0 = self.sim.now
        self._publish(OpStart, task, config=op.config)
        if op.config in self._locks:  # pinned: never a download
            with self._locks[op.config].request() as req:
                yield req
                self._charge_wait(task, t0)
                self._publish(Hit, task, handle=op.config)
                task.current_config = op.config
                yield from self._charge_io(task, entry, op)
                yield from self._charge_exec(task, entry,
                                             self.op_seconds(entry, op))
            return
        # Overlay path: one rarely-used circuit per slot.
        slot = self._choose_slot(entry)
        handle = f"ov:{op.config}"
        with slot.lock.request() as req:
            yield req
            self._charge_wait(task, t0)
            slot.last_used = self.sim.now
            self.replacement.on_access(slot.index)
            if slot.resident != op.config:
                self._publish(Miss, task, handle=op.config)
                if slot.resident is not None:
                    yield from self._charge_unload(task,
                                                   f"ov:{slot.resident}")
                    slot.resident = None
                    self.replacement.on_remove(slot.index)
                self._publish(
                    Placement, task, strategy="overlay-slot",
                    handle=handle, anchor=(slot.x, 0),
                    candidates=len(self._slots), fragmentation=0.0,
                )
                yield from self._charge_load(
                    task, entry, (slot.x, 0), handle=handle
                )
                slot.resident = op.config
                self.replacement.on_insert(slot.index)
            else:
                self._publish(Hit, task, handle=op.config)
            task.current_config = op.config
            yield from self._charge_io(task, entry, op)
            yield from self._charge_exec(
                task, entry, self.op_seconds(entry, op), handle=handle,
            )
