"""Overlaying — the paper's third mechanism (§2).

"Overlaying configures part of the FPGA to compute common functions which
are frequently used, while the remaining part is used to download specific
functions which are typically rarely used or mutually exclusive."

:class:`OverlayService` pins a chosen set of hot configurations at boot
(packed from the left edge) and dynamically loads everything else into the
remaining columns, one circuit at a time with configuration affinity —
i.e. the overlay area behaves like a miniature
:class:`~repro.core.dynamic_loading.DynamicLoadingService`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..osim import FpgaOp, Task
from ..sim import Resource
from ..telemetry import Hit, Load, Miss, OpStart
from .base import VfpgaServiceBase
from .errors import CapacityError
from .registry import ConfigRegistry

__all__ = ["OverlayService"]


class OverlayService(VfpgaServiceBase):
    """Pinned hot set + single-slot dynamic overlay area.

    Parameters
    ----------
    registry:
        OS configuration tables.
    resident_names:
        Configurations pinned for the whole run (the "common functions").
        They are packed side by side from column 0; the rest of the device
        is the overlay area.
    """

    def __init__(
        self, registry: ConfigRegistry, resident_names: Sequence[str], **kw
    ) -> None:
        super().__init__(registry, **kw)
        self.resident_names = list(dict.fromkeys(resident_names))
        self._locks: Dict[str, Resource] = {}
        self._overlay_lock: Optional[Resource] = None
        self._overlay_x = 0
        self._overlay_resident: Optional[str] = None

    def attach(self, kernel) -> None:
        super().attach(kernel)
        arch = self.fpga.arch
        x = 0
        for name in self.resident_names:
            entry = self.registry.get(name)
            r = entry.bitstream.region
            if r.h > arch.height or x + r.w > arch.width:
                raise CapacityError(
                    f"pinned set does not fit: {name!r} needs columns "
                    f"{x}..{x + r.w} of {arch.width}"
                )
            timing = self.fpga.load(name, entry.bitstream.anchored_at(x, 0))
            self._publish(Load, None, handle=name, anchor=(x, 0),
                          seconds=timing.seconds, frames=timing.n_frames,
                          clbs=r.area, shape=(r.w, r.h))
            self._locks[name] = Resource(self.sim, capacity=1)
            x += r.w
        self._overlay_x = x
        self._overlay_lock = Resource(self.sim, capacity=1)

    @property
    def overlay_width(self) -> int:
        return self.fpga.arch.width - self._overlay_x

    # ------------------------------------------------------------------
    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        t0 = self.sim.now
        self._publish(OpStart, task, config=op.config)
        if op.config in self._locks:  # pinned: never a download
            with self._locks[op.config].request() as req:
                yield req
                self._charge_wait(task, t0)
                self._publish(Hit, task, handle=op.config)
                task.current_config = op.config
                yield from self._charge_io(task, entry, op)
                yield from self._charge_exec(task, entry,
                                             self.op_seconds(entry, op))
            return
        # Overlay path: one rarely-used circuit resident at a time.
        r = entry.bitstream.region
        if r.w > self.overlay_width or r.h > self.fpga.arch.height:
            raise CapacityError(
                f"configuration {op.config!r} ({r.w} cols) exceeds the "
                f"overlay area ({self.overlay_width} cols)"
            )
        with self._overlay_lock.request() as req:
            yield req
            self._charge_wait(task, t0)
            if self._overlay_resident != op.config:
                self._publish(Miss, task, handle=op.config)
                if self._overlay_resident is not None:
                    yield from self._charge_unload(
                        task, f"ov:{self._overlay_resident}"
                    )
                    self._overlay_resident = None
                yield from self._charge_load(
                    task, entry, (self._overlay_x, 0), handle=f"ov:{op.config}"
                )
                self._overlay_resident = op.config
            else:
                self._publish(Hit, task, handle=op.config)
            task.current_config = op.config
            yield from self._charge_io(task, entry, op)
            yield from self._charge_exec(
                task, entry, self.op_seconds(entry, op),
                handle=f"ov:{op.config}",
            )
