"""Pagination — the paper's fixed-size demand loading (§2).

"Pagination partitions the function to be downloaded into smaller portions
of fixed size."  A *paged circuit* is larger than the physical device (or
than the share a task is given): its configuration is cut into pages, the
device into equal page *frames*, and pages are downloaded on demand with a
replacement policy choosing victims — virtual memory verbatim, with frame
writes instead of disk I/O.

One FPGA operation on a paged circuit is a sequence of *page accesses*
(``op.cycles`` accesses; each access runs ``cycles_per_access`` clock
cycles on the touched page).  The access pattern comes from
:func:`repro.core.policies.access_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..osim import FpgaOp, Task
from ..sim import Resource
from .base import VfpgaServiceBase
from .errors import CapacityError, UnknownConfigError
from ..telemetry import OpStart, PageAccess, PageFault, Placement
from .policies import ReplacementPolicy, access_trace, make_replacement
from .registry import ConfigRegistry

__all__ = ["PagedCircuit", "PagedVfpgaService", "make_paged_circuit"]


@dataclass(frozen=True)
class PagedCircuit:
    """A virtual circuit bigger than its physical allotment.

    Attributes
    ----------
    name:
        The name tasks use in :class:`~repro.osim.task.FpgaOp`.
    page_names:
        Registry entries, one per page, all with the same footprint.
    pattern / working_set / seed:
        Access-trace model (see :func:`repro.core.policies.access_trace`).
    """

    name: str
    page_names: tuple
    pattern: str = "looping"
    working_set: Optional[int] = None
    seed: int = 0

    @property
    def n_pages(self) -> int:
        return len(self.page_names)


def make_paged_circuit(
    registry: ConfigRegistry,
    name: str,
    n_pages: int,
    page_width: int,
    page_height: Optional[int] = None,
    state_bits_per_page: int = 0,
    critical_path: float = 20e-9,
    pattern: str = "looping",
    working_set: Optional[int] = None,
    seed: int = 0,
) -> PagedCircuit:
    """Register ``n_pages`` synthetic pages and describe the circuit."""
    page_height = registry.arch.height if page_height is None else page_height
    names = []
    for i in range(n_pages):
        entry = registry.register_synthetic(
            f"{name}.p{i}", page_width, page_height,
            n_state_bits=state_bits_per_page, critical_path=critical_path,
        )
        names.append(entry.name)
    return PagedCircuit(
        name=name, page_names=tuple(names), pattern=pattern,
        working_set=working_set, seed=seed,
    )


class PagedVfpgaService(VfpgaServiceBase):
    """Fixed page frames + demand paging.

    Parameters
    ----------
    registry:
        OS tables holding the page entries.
    circuits:
        The paged circuits tasks may invoke.
    frame_width:
        Columns per page frame; the device provides
        ``device_width // frame_width`` frames.
    replacement:
        Policy instance or name ("fifo", "lru", "mru", "clock", "random").
    replacement_seed:
        Seed for stochastic replacement policies (reproducible sweeps).
    cycles_per_access:
        Clock cycles of useful work per page access.
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        circuits: List[PagedCircuit],
        frame_width: int,
        replacement: Union[str, ReplacementPolicy] = "lru",
        replacement_seed: int = 0,
        cycles_per_access: int = 256,
        **kw,
    ) -> None:
        super().__init__(registry, **kw)
        arch = self.fpga.arch
        if frame_width < 1 or frame_width > arch.width:
            raise ValueError(f"frame_width {frame_width} out of range")
        self.frame_width = frame_width
        self.n_frames = arch.width // frame_width
        if self.n_frames < 1:
            raise CapacityError("device narrower than one page frame")
        self.circuits: Dict[str, PagedCircuit] = {c.name: c for c in circuits}
        for circ in circuits:
            for page in circ.page_names:
                entry = registry.get(page)
                r = entry.bitstream.region
                if r.w > frame_width or r.h > arch.height:
                    raise CapacityError(
                        f"page {page!r} ({r.w}x{r.h}) exceeds the frame "
                        f"({frame_width}x{arch.height})"
                    )
        self.replacement = make_replacement(replacement,
                                            seed=replacement_seed)
        self.cycles_per_access = cycles_per_access
        #: frame index -> resident page name (None = empty).
        self.frame_holds: List[Optional[str]] = [None] * self.n_frames
        #: page name -> frame index (the page table).
        self.page_table: Dict[str, int] = {}
        self._pins: Dict[int, int] = {}  # frame -> pin count
        self._frame_waiters: List = []
        self._op_counter = 0

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self._fault_lock = Resource(self.sim, capacity=1)

    # -- task boundary --------------------------------------------------------
    def register_task(self, task: Task) -> None:
        for name in task.configs:
            if name not in self.circuits and name not in self.registry:
                raise UnknownConfigError(name)

    # -- frame management -------------------------------------------------------
    def _frame_anchor(self, frame: int) -> tuple:
        return (frame * self.frame_width, 0)

    def _pin(self, frame: int) -> None:
        self._pins[frame] = self._pins.get(frame, 0) + 1

    def _unpin(self, frame: int) -> None:
        self._pins[frame] -= 1
        if self._pins[frame] == 0:
            del self._pins[frame]
            waiters, self._frame_waiters = self._frame_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    # -- demand-fault pipeline hooks (see VfpgaServiceBase.ensure_resident) --
    def _resident_lookup(self, task, page):
        return self.page_table.get(page)

    def _note_hit(self, task, page, frame) -> None:
        self._pin(frame)
        self.replacement.on_access(page)

    def _publish_fault(self, task, page) -> None:
        self._publish(PageFault, task, unit=page)

    def _place_unit(self, task, page):
        """One free frame: the first empty one, else a single eviction
        (the mapping is claimed atomically before the unload I/O)."""
        empty = [i for i, p in enumerate(self.frame_holds) if p is None]
        if empty:
            return empty[0]
        unpinned = [
            p for i, p in enumerate(self.frame_holds)
            if p is not None and i not in self._pins
        ]
        if not unpinned:
            return None
        victim = self.replacement.victim(unpinned)
        frame = self.page_table[victim]
        del self.page_table[victim]
        self.frame_holds[frame] = None
        self.replacement.on_remove(victim)
        yield from self._charge_unload(task, victim)
        return frame

    def _load_unit(self, task, page, frame):
        # Claim before yielding so concurrent faults pick other frames.
        self.frame_holds[frame] = page
        self.page_table[page] = frame
        self._pin(frame)
        entry = self.registry.get(page)
        self._publish(
            Placement, task, strategy="fixed-frame", handle=page,
            anchor=self._frame_anchor(frame),
            candidates=self.frame_holds.count(None) + 1,
            fragmentation=0.0,
        )
        yield from self._charge_load(
            task, entry, self._frame_anchor(frame), handle=page
        )
        self.replacement.on_insert(page)
        return frame

    def _wait_for_space(self, task, page):
        ev = self.sim.event()
        self._frame_waiters.append(ev)
        yield ev

    # -- execution ------------------------------------------------------------------
    def execute(self, task: Task, op: FpgaOp):
        circ = self.circuits.get(op.config)
        if circ is None:
            raise UnknownConfigError(op.config)
        self._op_counter += 1
        trace = access_trace(
            circ.n_pages,
            op.cycles,
            pattern=circ.pattern,
            working_set=circ.working_set,
            seed=circ.seed * 1_000_003 + self._op_counter,
        )
        t0 = self.sim.now
        self._publish(OpStart, task, config=op.config)
        first_io = True
        for index in trace:
            page = circ.page_names[index]
            self._publish(PageAccess, task, unit=page)
            frame = yield from self.ensure_resident(task, page)
            try:
                entry = self.registry.get(page)
                if first_io:
                    self._charge_wait(task, t0)
                    yield from self._charge_io(task, entry, op)
                    first_io = False
                yield from self._charge_exec(
                    task, entry,
                    self.cycles_per_access * entry.critical_path,
                    handle=page,
                )
            finally:
                self._unpin(frame)
        task.current_config = op.config
