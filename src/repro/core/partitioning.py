"""FPGA partitioning — the paper's second mechanism (§4).

The CLB array is divided into disjoint partitions so several circuits are
resident simultaneously, cutting download traffic and restoring task
parallelism.  Both flavours of the paper are implemented:

* **fixed partitions** (:class:`FixedPartitionService`): created at boot
  from a partition table ("taking the corresponding sizes from system
  configuration file"); never change until "reboot".
* **variable partitions** (:class:`VariablePartitionService`): carved on
  demand by splitting free space, coalesced when freed, with optional
  garbage collection — evicting idle cached circuits and/or *compacting*
  (relocating resident circuits, charged as real unload+reload plus state
  movement for sequential circuits), exactly the §4 trade-off.

Partitions are full-height column spans (``Rect(x, 0, w, H)``), matching
both the frame-per-column configuration hardware of the era and the
paper's one-dimensional split/merge narrative.  The allocator itself
(:class:`ColumnAllocator`) is exposed for direct unit testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..device import Rect
from ..osim import FpgaOp, Task
from ..sim import Resource
from ..telemetry import (
    Compact,
    Hit,
    Miss,
    OpStart,
    Placement,
    Relocate,
    Suspend,
)
from .base import VfpgaServiceBase
from .errors import CapacityError, VfpgaError
from .placement import (
    SPAN_FITS,
    PlacementRequest,
    PlacementStrategy,
    Proposal,
    make_placement,
)
from .policies import ReplacementPolicy, make_replacement
from .registry import ConfigEntry, ConfigRegistry

__all__ = [
    "ColumnAllocator",
    "FixedPartitionService",
    "VariablePartitionService",
]


class ColumnAllocator:
    """First/best/worst-fit allocation of column spans.

    Spans are ``(x, w)`` pairs over ``0 .. width``.  With
    ``coalesce=True`` adjacent free spans merge on release; with
    ``coalesce=False`` the split boundaries persist — released partitions
    stay distinct idle partitions, exactly the paper's variable
    partitioning, and :meth:`merge_free` is the garbage-collection step
    that fuses them on demand (§4).
    """

    def __init__(self, width: int, coalesce: bool = True) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self.coalesce = coalesce
        self.free_spans: List[Tuple[int, int]] = [(0, width)]
        #: The most recent successful placement decision (telemetry).
        self.last_proposal: Optional[Proposal] = None

    # -- queries ------------------------------------------------------------
    @property
    def total_free(self) -> int:
        return sum(w for _x, w in self.free_spans)

    @property
    def largest_free(self) -> int:
        return max((w for _x, w in self.free_spans), default=0)

    @property
    def fragmentation(self) -> float:
        """1 − largest/total free: 0 = one hole, → 1 = badly shattered."""
        total = self.total_free
        return 0.0 if total == 0 else 1.0 - self.largest_free / total

    # -- allocation ------------------------------------------------------------
    def _strategy(self, fit) -> PlacementStrategy:
        """Resolve a fit name (``first``/``best``/``worst``) or any
        :class:`PlacementStrategy` instance to a strategy object."""
        if isinstance(fit, PlacementStrategy):
            return fit
        try:
            return SPAN_FITS[fit]()
        except KeyError:
            raise ValueError(f"unknown fit policy {fit!r}") from None

    def allocate(self, w: int, fit="first") -> Optional[int]:
        """Reserve ``w`` columns; returns the anchor x or None.

        ``fit`` is a seed fit name or a placement-strategy instance; the
        strategy only *chooses* among the persistent free spans — the
        split bookkeeping (remainder span, sorted order) lives here.
        """
        if w < 1:
            raise ValueError("width must be >= 1")
        strategy = self._strategy(fit)
        proposal = strategy.propose(
            PlacementRequest(
                w=w, h=1, bounds_w=self.width, bounds_h=1,
                free_spans=tuple(self.free_spans),
            )
        )
        if proposal is None:
            self.last_proposal = None
            return None
        x = proposal.anchor[0]
        fw = next(fw for fx, fw in self.free_spans if fx == x)
        self.free_spans.remove((x, fw))
        if fw > w:
            self.free_spans.append((x + w, fw - w))
            self.free_spans.sort()
        self.last_proposal = proposal
        return x

    def reserve(self, x: int, w: int) -> None:
        """Claim a specific span (used when restoring a known layout)."""
        for fx, fw in self.free_spans:
            if fx <= x and x + w <= fx + fw:
                self.free_spans.remove((fx, fw))
                if fx < x:
                    self.free_spans.append((fx, x - fx))
                if x + w < fx + fw:
                    self.free_spans.append((x + w, fx + fw - (x + w)))
                self.free_spans.sort()
                return
        raise VfpgaError(f"span ({x},{w}) is not free")

    def release(self, x: int, w: int) -> None:
        """Return a span (coalescing with neighbours when enabled)."""
        for fx, fw in self.free_spans:
            if x < fx + fw and fx < x + w:
                raise VfpgaError(f"double free of span ({x},{w})")
        self.free_spans.append((x, w))
        self.free_spans.sort()
        if self.coalesce:
            self.merge_free()

    def merge_free(self) -> int:
        """Fuse adjacent free spans; returns how many merges happened.

        This is the bookkeeping half of the paper's garbage collection:
        merging *idle* partitions into "continuous large ones" (§4).
        """
        merged: List[Tuple[int, int]] = []
        n = 0
        for span in sorted(self.free_spans):
            if merged and merged[-1][0] + merged[-1][1] == span[0]:
                merged[-1] = (merged[-1][0], merged[-1][1] + span[1])
                n += 1
            else:
                merged.append(span)
        self.free_spans = merged
        return n


@dataclass
class _Partition:
    """One fixed partition's bookkeeping."""

    index: int
    rect: Rect
    lock: Resource
    resident: Optional[str] = None
    last_used: float = 0.0


class FixedPartitionService(VfpgaServiceBase):
    """Boot-time partition table; each partition caches one configuration.

    Requests prefer the partition already holding their configuration
    (affinity), then an idle empty partition, then an idle victim chosen
    by the pluggable ``replacement`` policy (default ``"lru"`` — the
    seed behavior), then the fitting partition with the shortest queue.
    Circuits wider than every partition are rejected with
    :class:`CapacityError` — under fixed partitioning such tasks would
    wait forever (§4).
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        partition_widths: Sequence[int],
        replacement: Union[str, ReplacementPolicy] = "lru",
        replacement_seed: int = 0,
        **kw,
    ) -> None:
        super().__init__(registry, **kw)
        self.replacement = make_replacement(replacement,
                                            seed=replacement_seed)
        if not partition_widths:
            raise ValueError("need at least one partition")
        if sum(partition_widths) > self.fpga.arch.width:
            raise CapacityError(
                f"partition table {list(partition_widths)} exceeds device "
                f"width {self.fpga.arch.width}"
            )
        self._widths = list(partition_widths)
        self.partitions: List[_Partition] = []

    @classmethod
    def equal(cls, registry: ConfigRegistry, n_partitions: int, **kw):
        """Split the device into ``n_partitions`` equal column spans."""
        width = registry.arch.width // n_partitions
        if width < 1:
            raise CapacityError(f"{n_partitions} partitions on a "
                                f"{registry.arch.width}-column device")
        return cls(registry, [width] * n_partitions, **kw)

    def attach(self, kernel) -> None:
        super().attach(kernel)
        x = 0
        height = self.fpga.arch.height
        for i, w in enumerate(self._widths):
            self.partitions.append(
                _Partition(
                    index=i,
                    rect=Rect(x, 0, w, height),
                    lock=Resource(self.sim, capacity=1),
                )
            )
            x += w

    # ------------------------------------------------------------------
    def _fits(self, entry: ConfigEntry, part: _Partition) -> bool:
        r = entry.bitstream.region
        return r.w <= part.rect.w and r.h <= part.rect.h

    def _choose(self, entry: ConfigEntry) -> _Partition:
        fitting = [p for p in self.partitions if self._fits(entry, p)]
        if not fitting:
            raise CapacityError(
                f"configuration {entry.name!r} "
                f"({entry.bitstream.region.w} cols) fits no partition — the "
                "task would wait indefinitely (paper §4)"
            )
        for p in fitting:  # affinity
            if p.resident == entry.name:
                return p
        idle = [p for p in fitting if p.lock.count == 0 and p.lock.queue_length == 0]
        if idle:
            empty = [p for p in idle if p.resident is None]
            if empty:
                return empty[0]
            victim = self.replacement.victim([p.index for p in idle])
            return next(p for p in idle if p.index == victim)
        return min(fitting, key=lambda p: (p.lock.queue_length, p.index))

    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        part = self._choose(entry)
        t0 = self.sim.now
        self._publish(OpStart, task, config=op.config)
        with part.lock.request() as req:
            yield req
            self._charge_wait(task, t0)
            part.last_used = self.sim.now
            self.replacement.on_access(part.index)
            handle = f"p{part.index}"
            if part.resident != entry.name:
                self._publish(Miss, task, handle=entry.name)
                if part.resident is not None:
                    yield from self._charge_unload(task, handle)
                    part.resident = None
                    self.replacement.on_remove(part.index)
                yield from self._charge_load(
                    task, entry, (part.rect.x, part.rect.y), handle=handle
                )
                part.resident = entry.name
                self.replacement.on_insert(part.index)
            else:
                self._publish(Hit, task, handle=entry.name)
            task.current_config = op.config
            yield from self._charge_io(task, entry, op)
            yield from self._charge_exec(
                task, entry, self.op_seconds(entry, op), handle=handle
            )
            part.last_used = self.sim.now
            self.replacement.on_access(part.index)


@dataclass
class _Resident:
    """One circuit resident under variable partitioning."""

    entry: ConfigEntry
    anchor: Tuple[int, int]
    lock: Resource
    last_used: float = 0.0
    #: True between operations: the partition is not computing right now.
    idle: bool = True
    #: Tasks holding this partition (hold_mode="task"); empty = cached.
    holders: set = field(default_factory=set)
    #: The download is still owed; the first residency-lock holder (its
    #: creator — created and locked in one synchronous step) charges it.
    pending_load: bool = False

    @property
    def cached(self) -> bool:
        return not self.holders

    @property
    def anchor_x(self) -> int:
        return self.anchor[0]

    @property
    def footprint(self) -> Tuple[int, int]:
        r = self.entry.bitstream.region
        return (r.w, r.h)


class _ColumnLayout:
    """Column-span allocation behind the 2-D anchor protocol."""

    def __init__(self, width: int) -> None:
        self.cols = ColumnAllocator(width, coalesce=False)

    def allocate(self, w, h, fit):
        x = self.cols.allocate(w, fit=fit)
        return None if x is None else (x, 0)

    def release(self, anchor, w, h):
        self.cols.release(anchor[0], w)

    def merge_free(self) -> int:
        return self.cols.merge_free()

    def free_units(self) -> float:
        return self.cols.total_free

    @staticmethod
    def demand_units(w: int, h: int) -> float:
        return w  # columns are the unit

    @property
    def last_proposal(self) -> Optional[Proposal]:
        return self.cols.last_proposal

    @property
    def fragmentation(self) -> float:
        return self.cols.fragmentation


class _RectLayout:
    """2-D strategy-driven allocation behind the same protocol."""

    def __init__(self, width: int, height: int,
                 placement="bottom-left") -> None:
        from .rect_alloc import RectAllocator

        self.rects = RectAllocator(width, height, placement=placement)

    def allocate(self, w, h, fit):
        # Seed fit names are a column-layout concept; only an explicit
        # strategy overrides the allocator's configured placement.
        override = fit if isinstance(fit, PlacementStrategy) else None
        return self.rects.allocate(w, h, placement=override)

    def release(self, anchor, w, h):
        self.rects.release(anchor[0], anchor[1], w, h)

    def merge_free(self) -> int:
        return self.rects.merge_free()

    def free_units(self) -> float:
        return self.rects.total_free

    @staticmethod
    def demand_units(w: int, h: int) -> float:
        return w * h  # CLBs are the unit

    @property
    def last_proposal(self) -> Optional[Proposal]:
        return self.rects.last_proposal

    @property
    def fragmentation(self) -> float:
        return self.rects.fragmentation


class VariablePartitionService(VfpgaServiceBase):
    """Split-on-demand partitions with caching and garbage collection.

    Partition boundaries persist after release (no automatic coalescing),
    exactly as in the paper.  Two holding disciplines:

    * ``hold_mode="task"`` (paper default): "an assigned partition remains
      in use to its task until it is released voluntarily" — the partition
      belongs to its task(s) until they exit; while held it may be
      *relocated* when idle but never evicted;
    * ``hold_mode="op"``: the partition is released after every operation;
      the circuit stays resident as a reusable cache entry that may be
      evicted (the OS "rotates the assignment among tasks", §4).

    When a request cannot be placed in any single free span:

    1. adjacent free spans are fused with ``gc="merge"`` or better
       ("merge the idle existing partitions to create continuous large
       ones", §4);
    2. cached (unheld) circuits are evicted LRU-first;
    3. with ``gc="compact"``, idle resident circuits — including *held*
       ones — are relocated leftwards, charging real unload/reload plus
       state save/restore for sequential circuits: the paper's costly
       relocation, and the only remedy when held partitions fragment the
       array;
    4. otherwise the task suspends; under ``gc="none"`` it can starve
       although the sum of the idle fragments would fit it — the exact
       hazard the paper calls "definitely not acceptable" (experiment E5
       measures it via ``starvation_events`` and deadlocked runs).
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        fit: str = "first",
        gc: str = "compact",
        hold_mode: str = "task",
        layout: str = "columns",
        placement: Optional[Union[str, PlacementStrategy]] = None,
        replacement: Union[str, ReplacementPolicy] = "lru",
        replacement_seed: int = 0,
        **kw,
    ) -> None:
        super().__init__(registry, **kw)
        if gc not in ("none", "merge", "compact"):
            raise ValueError(f"unknown gc mode {gc!r}")
        if hold_mode not in ("task", "op"):
            raise ValueError(f"unknown hold_mode {hold_mode!r}")
        if layout not in ("columns", "rect"):
            raise ValueError(f"unknown layout {layout!r}")
        self.fit = fit
        self.gc = gc
        self.hold_mode = hold_mode
        self.layout_name = layout
        self.replacement = make_replacement(replacement,
                                            seed=replacement_seed)
        #: Explicit strategy override; None defers to the layout default
        #: (the seed ``fit`` names for columns, bottom-left for rect).
        self.placement = (
            None if placement is None else make_placement(placement)
        )
        arch = self.fpga.arch
        self.layout = (
            _ColumnLayout(arch.width) if layout == "columns"
            else _RectLayout(arch.width, arch.height,
                             placement=self.placement or "bottom-left")
        )
        self.residents: Dict[str, _Resident] = {}
        self._space_waiters: List = []
        #: allocation failed although total free space was sufficient.
        self.starvation_events = 0

    @property
    def _fit_arg(self):
        """What :meth:`_ColumnLayout.allocate` et al. place with: the
        explicit strategy when configured, else the seed fit name."""
        return self.placement if self.placement is not None else self.fit

    @property
    def allocator(self):
        """The underlying allocator (ColumnAllocator or RectAllocator)."""
        return (
            self.layout.cols
            if isinstance(self.layout, _ColumnLayout)
            else self.layout.rects
        )

    # -- space bookkeeping ----------------------------------------------------
    def _notify_space(self) -> None:
        waiters, self._space_waiters = self._space_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def _is_movable(self, res: _Resident) -> bool:
        """Idle and unlocked: may be relocated (even while held)."""
        return (
            res.entry.name in self.residents
            and res.idle
            and res.lock.count == 0
            and res.lock.queue_length == 0
        )

    def _is_evictable(self, res: _Resident) -> bool:
        """Movable *and* unheld: may be dropped entirely."""
        return res.cached and self._is_movable(res)

    def _evict(self, task: Optional[Task], name: str):
        # Pop before the first yield so no task can "hit" a dying resident.
        res = self.residents.pop(name)
        self.replacement.on_remove(name)
        yield from self._charge_unload(task, name)
        self.layout.release(res.anchor, *res.footprint)
        self._notify_space()

    def _choose_victim(self) -> Optional[_Resident]:
        """The replacement policy's pick among evictable residents."""
        evictable = [
            r for r in self.residents.values() if self._is_evictable(r)
        ]
        if not evictable:
            return None
        name = self.replacement.victim([r.entry.name for r in evictable])
        return next(r for r in evictable if r.entry.name == name)

    def _try_place(self, task: Task, entry: ConfigEntry):
        """One placement attempt; returns the anchor x or None (generator:
        may charge eviction/compaction time)."""
        r = entry.bitstream.region
        w, h = r.w, r.h
        anchor = self.layout.allocate(w, h, self._fit_arg)
        if anchor is not None:
            return anchor
        # Phase 1: merge adjacent free spans (cheap GC bookkeeping).
        if self.gc != "none" and self.layout.merge_free():
            anchor = self.layout.allocate(w, h, self._fit_arg)
            if anchor is not None:
                return anchor
        # Phase 2: evict cached (unheld) circuits, replacement-policy
        # order.  Re-validate each victim right before eviction: earlier
        # charges yielded simulation time during which a victim may have
        # been claimed.
        while True:
            victim = self._choose_victim()
            if victim is None:
                break
            yield from self._evict(task, victim.entry.name)
            if self.gc != "none":
                self.layout.merge_free()
            anchor = self.layout.allocate(w, h, self._fit_arg)
            if anchor is not None:
                return anchor
        demand = self.layout.demand_units(w, h)
        if self.gc in ("none", "merge"):
            if self.layout.free_units() >= demand:
                self.starvation_events += 1
            return None
        if self.layout.free_units() < demand:
            return None
        # Phase 3: compaction — relocate idle circuits (held ones too)
        # toward the origin; the only remedy when held partitions shatter
        # the array.
        yield from self._compact(task)
        self.layout.merge_free()
        return self.layout.allocate(w, h, self._fit_arg)

    def _compact(self, task: Optional[Task]):
        """Slide idle resident circuits toward x = 0 (paper §4 relocation).

        Sequential circuits additionally pay state readback + restore so
        their memory contents survive the move.
        """
        self._publish(Compact, task)
        moved = 0
        self.layout.merge_free()
        movable = sorted(
            (r for r in self.residents.values() if self._is_movable(r)),
            key=lambda r: (r.anchor[1], r.anchor[0]),
        )
        for res in movable:
            if not self._is_movable(res):
                continue  # claimed while an earlier move was in flight
            # Holding the residency lock pins the circuit during the move;
            # granting is synchronous here because the lock is verified idle.
            req = res.lock.request()
            if req not in res.lock.users:  # pragma: no cover - defensive
                req.cancel()
                continue
            try:
                w, h = res.footprint
                self.layout.release(res.anchor, w, h)
                self.layout.merge_free()
                new_anchor = self.layout.allocate(w, h, "first")
                assert new_anchor is not None  # we just released that much
                if new_anchor == res.anchor:
                    continue
                port = self.fpga.port
                move_state = res.entry.is_sequential and res.entry.state_accessible
                if move_state:
                    yield from self._charge_state(
                        task, port.state_save_time(res.entry.bitstream).seconds,
                        "save", handle=res.entry.name,
                    )
                yield from self._charge_unload(task, res.entry.name)
                # _charge_unload touches only the device residency; the
                # allocator spans are managed right here.
                yield from self._charge_load(
                    task, res.entry, new_anchor, handle=res.entry.name
                )
                if move_state:
                    yield from self._charge_state(
                        task,
                        port.state_restore_time(res.entry.bitstream).seconds,
                        "restore", handle=res.entry.name,
                    )
                res.anchor = new_anchor
                self._publish(Relocate, task, handle=res.entry.name,
                              anchor=tuple(new_anchor))
                moved += 1
            finally:
                res.lock.release(req)
        if moved:
            # Only a real layout change may wake space waiters — waking
            # them after a no-op compaction would let two starving tasks
            # ping-pong wakeups forever at the same simulation instant.
            self._notify_space()

    # -- demand-fault pipeline hooks (see VfpgaServiceBase.ensure_resident) --
    # No _fault_lock: variable partitioning stays lock-free, relying on
    # the pipeline's residency re-validation after yielding placement
    # attempts (the paper's partitions are grabbed optimistically).
    def _resident_lookup(self, task, name):
        return self.residents.get(name)

    def _note_hit(self, task, name, res) -> None:
        self._publish(Hit, task, handle=name)

    def _place_unit(self, task, name):
        entry = self.registry.get(name)
        placed = yield from self._try_place(task, entry)
        return placed

    def _undo_place(self, task, name, anchor) -> None:
        r = self.registry.get(name).bitstream.region
        self.layout.release(anchor, r.w, r.h)

    def _load_unit(self, task, name, anchor):
        # Plain hook (no generator): the download is deferred — it
        # happens under the residency lock so late-comers wait for it.
        entry = self.registry.get(name)
        self._publish(Miss, task, handle=name)
        proposal = self.layout.last_proposal
        self._publish(
            Placement, task, strategy=self.strategy_name, handle=name,
            anchor=tuple(anchor),
            candidates=proposal.candidates if proposal is not None else 1,
            fragmentation=self.layout.fragmentation,
        )
        res = _Resident(
            entry=entry,
            anchor=anchor,
            lock=Resource(self.sim, capacity=1),
            last_used=self.sim.now,
            idle=False,
            pending_load=True,
        )
        self.residents[name] = res
        self.replacement.on_insert(name)
        return res

    def _wait_for_space(self, task, name):
        # No space: suspend until departures change the picture.
        ev = self.sim.event()
        self._space_waiters.append(ev)
        self._publish(Suspend, task, config=name)
        yield ev

    @property
    def strategy_name(self) -> str:
        """The effective placement strategy's registry name."""
        if self.placement is not None:
            return self.placement.name
        if self.layout_name == "rect":
            return "bottom-left"
        return SPAN_FITS[self.fit].name

    # -- main entry ------------------------------------------------------------------
    def execute(self, task: Task, op: FpgaOp):
        entry = self.registry.get(op.config)
        self._check_fits_device(entry)
        t0 = self.sim.now
        self._publish(OpStart, task, config=op.config)
        if self.hold_mode == "task" and task.current_config not in (None, op.config):
            # §3: a task holds only its most recently used configuration;
            # switching releases the previous partition (it stays resident
            # as an evictable cache entry).
            prev = self.residents.get(task.current_config)
            if prev is not None and task.tid in prev.holders:
                prev.holders.discard(task.tid)
                self._notify_space()
        res = yield from self.ensure_resident(task, entry.name)
        if self.hold_mode == "task":
            res.holders.add(task.tid)
        with res.lock.request() as req:
            yield req
            self._charge_wait(task, t0)
            res.idle = False
            res.last_used = self.sim.now
            self.replacement.on_access(entry.name)
            if res.pending_load:
                res.pending_load = False
                yield from self._charge_load(task, entry, res.anchor)
            task.current_config = op.config
            yield from self._charge_io(task, entry, op)
            yield from self._charge_exec(task, entry, self.op_seconds(entry, op))
            res.last_used = self.sim.now
            self.replacement.on_access(entry.name)
            res.idle = True
        self._notify_space()

    def on_task_exit(self, task: Task) -> None:
        """Voluntary release: the task's partitions become cached entries
        that eviction may reclaim (paper §4)."""
        super().on_task_exit(task)
        released = False
        for res in self.residents.values():
            if task.tid in res.holders:
                res.holders.discard(task.tid)
                released = True
        if released:
            self._notify_space()
