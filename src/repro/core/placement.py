"""Pluggable placement engine — where does a W×H region go?

The paper's §4 treats partitioning, overlaying, pagination and
segmentation as one family of *mapping* mechanisms; what varies between
them is bookkeeping, not the placement question itself.  This module
factors that question out: a :class:`PlacementStrategy` proposes an
anchor for a ``w``×``h`` request given a geometric snapshot of the
device (:class:`PlacementRequest`), and the stateful allocators
(:class:`~repro.core.partitioning.ColumnAllocator`,
:class:`~repro.core.rect_alloc.RectAllocator`) become thin wrappers that
commit whatever the strategy proposes.

Strategies never mutate anything: ``propose`` is a pure function of the
request, which makes them trivially testable (property tests sweep
random resident sets) and swappable mid-experiment.  Two families:

* **2-D geometric** — :class:`BottomLeftPlacement` (the classic
  heuristic the seed ``RectAllocator`` used), :class:`BestFitPlacement`
  (min-waste by contact scoring), :class:`SkylinePlacement` (the
  strip-packing skyline of Angermeier et al., "Maintaining Virtual
  Areas on FPGAs using Strip Packing with Delays") and
  :class:`ColumnFirstFitPlacement` (1-D columns emulated on a 2-D
  fabric, for like-for-like sweeps);
* **column spans** — :class:`ColumnFirstFit`, :class:`ColumnBestFit`,
  :class:`ColumnWorstFit`, matching the seed allocator's
  ``fit="first"/"best"/"worst"`` exactly.

When a request carries explicit ``free_spans`` (column layouts with
persistent split boundaries, paper §4), every strategy restricts itself
to those spans and degenerates to a span-selection rule — the split
boundaries are OS state a pure geometric heuristic must not invent
around.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from ..device import Rect

__all__ = [
    "Anchor",
    "PlacementRequest",
    "Proposal",
    "PlacementStrategy",
    "BottomLeftPlacement",
    "BestFitPlacement",
    "SkylinePlacement",
    "ColumnFirstFitPlacement",
    "ColumnFirstFit",
    "ColumnBestFit",
    "ColumnWorstFit",
    "make_placement",
    "PLACEMENT_STRATEGIES",
]

Anchor = Tuple[int, int]
Span = Tuple[int, int]  # (x, width) over the column axis


@dataclass(frozen=True)
class PlacementRequest:
    """A geometric snapshot plus one ``w``×``h`` placement question.

    ``resident`` are the rectangles currently occupying the region;
    ``free_spans`` (when not ``None``) are the *only* column intervals a
    proposal may use — the persistent partition boundaries of the
    paper's variable partitioning, which survive release and therefore
    cannot be derived from ``resident`` alone.
    """

    w: int
    h: int
    bounds_w: int
    bounds_h: int
    resident: Tuple[Rect, ...] = ()
    free_spans: Optional[Tuple[Span, ...]] = None

    def __post_init__(self) -> None:
        if self.w < 1 or self.h < 1:
            raise ValueError(f"degenerate request {self.w}x{self.h}")
        if self.bounds_w < 1 or self.bounds_h < 1:
            raise ValueError("degenerate placement bounds")


@dataclass(frozen=True)
class Proposal:
    """One placement decision: the chosen anchor plus how many candidate
    positions the strategy weighed (telemetry: the ``Placement`` event)."""

    anchor: Anchor
    candidates: int = 1


class PlacementStrategy(ABC):
    """Propose an anchor for a W×H region given resident rectangles."""

    name: str = "abstract"

    def propose(self, req: PlacementRequest) -> Optional[Proposal]:
        """The placement decision; ``None`` when nothing fits."""
        if req.w > req.bounds_w or req.h > req.bounds_h:
            return None
        if req.free_spans is not None:
            spans = [(x, fw) for (x, fw) in req.free_spans if fw >= req.w]
            if not spans:
                return None
            return Proposal(anchor=(self._choose_span(spans), 0),
                            candidates=len(spans))
        return self._choose_anchor(req)

    def _choose_span(self, spans: Sequence[Span]) -> int:
        """Pick among fitting free spans (column layouts); the default is
        first-fit — leftmost span — which is also what the geometric
        heuristics degenerate to at full height."""
        return spans[0][0]

    @abstractmethod
    def _choose_anchor(self, req: PlacementRequest) -> Optional[Proposal]:
        """Free geometric placement (no persistent span boundaries)."""


def _fits(req: PlacementRequest, x: int, y: int) -> bool:
    if x < 0 or y < 0 or x + req.w > req.bounds_w or y + req.h > req.bounds_h:
        return False
    rect = Rect(x, y, req.w, req.h)
    return all(not rect.overlaps(r) for r in req.resident)


def corner_candidates(req: PlacementRequest) -> List[Anchor]:
    """The classic bottom-left candidate set: the origin plus the
    top-left/bottom-right corners of resident rectangles (and their
    projections to the axes), sorted lowest-then-leftmost."""
    anchors = {(0, 0)}
    for r in req.resident:
        anchors.add((r.x2, r.y))
        anchors.add((r.x, r.y2))
        anchors.add((r.x2, 0))
        anchors.add((0, r.y2))
    return sorted(anchors, key=lambda a: (a[1], a[0]))


def free_column_spans(req: PlacementRequest) -> List[Span]:
    """Maximal intervals of columns no resident rectangle touches."""
    blocked = [False] * req.bounds_w
    for r in req.resident:
        for x in range(max(0, r.x), min(req.bounds_w, r.x2)):
            blocked[x] = True
    spans: List[Span] = []
    x = 0
    while x < req.bounds_w:
        if blocked[x]:
            x += 1
            continue
        start = x
        while x < req.bounds_w and not blocked[x]:
            x += 1
        spans.append((start, x - start))
    return spans


def skyline_heights(req: PlacementRequest) -> List[int]:
    """Per-column top of the packed region (0 = empty column)."""
    heights = [0] * req.bounds_w
    for r in req.resident:
        for x in range(max(0, r.x), min(req.bounds_w, r.x2)):
            heights[x] = max(heights[x], r.y2)
    return heights


class BottomLeftPlacement(PlacementStrategy):
    """Lowest-then-leftmost corner candidate — the seed
    :class:`~repro.core.rect_alloc.RectAllocator` heuristic, preserved
    position-for-position."""

    name = "bottom-left"

    def _choose_anchor(self, req: PlacementRequest) -> Optional[Proposal]:
        candidates = corner_candidates(req)
        for (x, y) in candidates:
            if _fits(req, x, y):
                return Proposal(anchor=(x, y), candidates=len(candidates))
        return None


class BestFitPlacement(PlacementStrategy):
    """Min-waste placement: among fitting corner candidates, maximize the
    perimeter in contact with residents or the region boundary (the
    classic best-fit-by-contact rule of rectangle packing); on column
    spans, the tightest span wins (the seed ``fit="best"``)."""

    name = "best-fit"

    def _choose_span(self, spans: Sequence[Span]) -> int:
        x, _fw = min(spans, key=lambda s: (s[1], s[0]))
        return x

    def _contact(self, req: PlacementRequest, x: int, y: int) -> int:
        rect = Rect(x, y, req.w, req.h)
        score = 0
        if x == 0:
            score += req.h
        if rect.x2 == req.bounds_w:
            score += req.h
        if y == 0:
            score += req.w
        if rect.y2 == req.bounds_h:
            score += req.w
        for r in req.resident:
            # Shared vertical edges ...
            if r.x2 == x or rect.x2 == r.x:
                score += max(0, min(rect.y2, r.y2) - max(y, r.y))
            # ... and shared horizontal edges.
            if r.y2 == y or rect.y2 == r.y:
                score += max(0, min(rect.x2, r.x2) - max(x, r.x))
        return score

    def _choose_anchor(self, req: PlacementRequest) -> Optional[Proposal]:
        candidates = corner_candidates(req)
        fitting = [(x, y) for (x, y) in candidates if _fits(req, x, y)]
        if not fitting:
            return None
        best = max(fitting,
                   key=lambda a: (self._contact(req, *a), -a[1], -a[0]))
        return Proposal(anchor=best, candidates=len(candidates))


class SkylinePlacement(PlacementStrategy):
    """Strip-packing skyline (Angermeier et al.): place on top of the
    lowest w-wide window of the skyline, minimizing first the resulting
    top edge, then the area wasted under the region, then x."""

    name = "skyline"

    def _choose_anchor(self, req: PlacementRequest) -> Optional[Proposal]:
        heights = skyline_heights(req)
        best: Optional[Tuple[int, int, int, Anchor]] = None
        candidates = 0
        for x in range(req.bounds_w - req.w + 1):
            window = heights[x:x + req.w]
            y = max(window)
            if y + req.h > req.bounds_h:
                continue
            candidates += 1
            waste = sum(y - h for h in window)
            key = (y + req.h, waste, x)
            if best is None or key < best[:3]:
                best = (*key, (x, y))
        if best is None:
            return None
        return Proposal(anchor=best[3], candidates=candidates)


class ColumnFirstFitPlacement(PlacementStrategy):
    """1-D column discipline on any fabric: the leftmost run of entirely
    free columns wide enough, anchored at the bottom — what the paper's
    frame-per-column hardware forced, usable on 2-D allocators for
    like-for-like sweeps."""

    name = "column-first-fit"

    def _choose_anchor(self, req: PlacementRequest) -> Optional[Proposal]:
        spans = [(x, fw) for (x, fw) in free_column_spans(req)
                 if fw >= req.w]
        if not spans:
            return None
        return Proposal(anchor=(spans[0][0], 0), candidates=len(spans))


class ColumnFirstFit(ColumnFirstFitPlacement):
    """Leftmost fitting free span (the seed ``fit="first"``)."""

    name = "column-first-fit"


class ColumnBestFit(ColumnFirstFitPlacement):
    """Tightest fitting free span (the seed ``fit="best"``)."""

    name = "column-best-fit"

    def _choose_span(self, spans: Sequence[Span]) -> int:
        x, _fw = min(spans, key=lambda s: (s[1], s[0]))
        return x

    def _choose_anchor(self, req: PlacementRequest) -> Optional[Proposal]:
        spans = [(x, fw) for (x, fw) in free_column_spans(req)
                 if fw >= req.w]
        if not spans:
            return None
        return Proposal(anchor=(self._choose_span(spans), 0),
                        candidates=len(spans))


class ColumnWorstFit(ColumnBestFit):
    """Largest free span (the seed ``fit="worst"``) — the control arm
    that shatters big holes (experiment E16)."""

    name = "column-worst-fit"

    def _choose_span(self, spans: Sequence[Span]) -> int:
        x, _fw = max(spans, key=lambda s: (s[1], -s[0]))
        return x


#: Registry of instantiable strategies (CLI/benchmark sweep space).
PLACEMENT_STRATEGIES: Dict[str, Type[PlacementStrategy]] = {
    cls.name: cls
    for cls in (
        BottomLeftPlacement,
        BestFitPlacement,
        SkylinePlacement,
        ColumnFirstFit,
        ColumnBestFit,
        ColumnWorstFit,
    )
}

#: The seed ``ColumnAllocator`` fit names, mapped onto strategies.
SPAN_FITS: Dict[str, Type[PlacementStrategy]] = {
    "first": ColumnFirstFit,
    "best": ColumnBestFit,
    "worst": ColumnWorstFit,
}


def make_placement(
    name: Union[str, PlacementStrategy],
) -> PlacementStrategy:
    """Instantiate a placement strategy by name (instances pass through)."""
    if isinstance(name, PlacementStrategy):
        return name
    try:
        return PLACEMENT_STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown placement strategy {name!r}; "
            f"have {sorted(PLACEMENT_STRATEGIES)}"
        ) from None
