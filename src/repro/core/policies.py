"""Replacement policies and access-trace generation for demand loading.

Pagination and segmentation (paper §2) both need two ingredients the paper
borrows from virtual memory: a *victim selection* policy when a part must
be loaded and the device is full, and a model of *how circuits touch their
parts* (the access trace).  Both live here so the two services share one
vocabulary and experiment E8 can sweep them orthogonally.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Optional, Sequence, Union

__all__ = [
    "ReplacementPolicy",
    "FifoReplacement",
    "LruReplacement",
    "MruReplacement",
    "ClockReplacement",
    "RandomReplacement",
    "make_replacement",
    "access_trace",
]

Key = Hashable


class ReplacementPolicy(ABC):
    """Victim selection over resident keys (page names / segment names)."""

    name: str = "abstract"

    def on_insert(self, key: Key) -> None:
        """``key`` became resident."""

    def on_access(self, key: Key) -> None:
        """``key`` was used while resident."""

    def on_remove(self, key: Key) -> None:
        """``key`` was evicted/unloaded externally."""

    @abstractmethod
    def victim(self, candidates: Sequence[Key]) -> Key:
        """Choose which of ``candidates`` (non-empty) to evict."""


class FifoReplacement(ReplacementPolicy):
    """Evict the longest-resident part, ignoring use."""

    name = "fifo"

    def __init__(self) -> None:
        self._arrival: Dict[Key, int] = {}
        self._tick = 0

    def on_insert(self, key: Key) -> None:
        self._tick += 1
        self._arrival[key] = self._tick

    def on_remove(self, key: Key) -> None:
        self._arrival.pop(key, None)

    def victim(self, candidates: Sequence[Key]) -> Key:
        return min(candidates, key=lambda k: self._arrival.get(k, 0))


class _RecencyBase(ReplacementPolicy):
    def __init__(self) -> None:
        self._last: Dict[Key, int] = {}
        self._tick = 0

    def _touch(self, key: Key) -> None:
        self._tick += 1
        self._last[key] = self._tick

    def on_insert(self, key: Key) -> None:
        self._touch(key)

    def on_access(self, key: Key) -> None:
        self._touch(key)

    def on_remove(self, key: Key) -> None:
        self._last.pop(key, None)


class LruReplacement(_RecencyBase):
    """Evict the least recently used part."""

    name = "lru"

    def victim(self, candidates: Sequence[Key]) -> Key:
        return min(candidates, key=lambda k: self._last.get(k, 0))


class MruReplacement(_RecencyBase):
    """Evict the *most* recently used part — optimal for cyclic sweeps
    larger than the resident capacity (the classic looping workload)."""

    name = "mru"

    def victim(self, candidates: Sequence[Key]) -> Key:
        return max(candidates, key=lambda k: self._last.get(k, 0))


class ClockReplacement(ReplacementPolicy):
    """Second-chance approximation of LRU with one reference bit."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: List[Key] = []
        self._ref: Dict[Key, bool] = {}
        self._hand = 0

    def on_insert(self, key: Key) -> None:
        if key not in self._ref:
            self._ring.append(key)
        self._ref[key] = True

    def on_access(self, key: Key) -> None:
        if key in self._ref:
            self._ref[key] = True

    def on_remove(self, key: Key) -> None:
        if key in self._ref:
            del self._ref[key]
            idx = self._ring.index(key)
            self._ring.remove(key)
            if idx < self._hand:
                self._hand -= 1
            if self._ring:
                self._hand %= len(self._ring)
            else:
                self._hand = 0

    def victim(self, candidates: Sequence[Key]) -> Key:
        allowed = set(candidates)
        if not self._ring:
            return candidates[0]
        for _ in range(2 * len(self._ring) + 1):
            key = self._ring[self._hand]
            if key in allowed and not self._ref.get(key, False):
                return key
            if key in allowed:
                self._ref[key] = False
            self._hand = (self._hand + 1) % len(self._ring)
        return candidates[0]  # pragma: no cover - all referenced twice


class RandomReplacement(ReplacementPolicy):
    """Uniform-random victim (the control arm of E8).

    The generator is injectable so sweeps stay reproducible: pass either
    a ``seed`` or a pre-seeded :class:`random.Random` (``rng`` wins when
    both are given) — sharing one ``rng`` across services models a
    single OS-wide entropy source.
    """

    name = "random"

    def __init__(self, seed: int = 0,
                 rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random(seed)

    def victim(self, candidates: Sequence[Key]) -> Key:
        return candidates[self._rng.randrange(len(candidates))]


_POLICIES = {
    "fifo": FifoReplacement,
    "lru": LruReplacement,
    "mru": MruReplacement,
    "clock": ClockReplacement,
    "random": RandomReplacement,
}


def make_replacement(
    name: Union[str, ReplacementPolicy],
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (instances pass through).

    ``seed``/``rng`` parameterize the stochastic policies (currently
    ``random``); deterministic policies ignore them.
    """
    if isinstance(name, ReplacementPolicy):
        return name
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; have {sorted(_POLICIES)}"
        ) from None
    if cls is RandomReplacement:
        return RandomReplacement(seed=seed, rng=rng)
    return cls()


def access_trace(
    n_parts: int,
    n_accesses: int,
    pattern: str = "looping",
    working_set: int | None = None,
    seed: int = 0,
    zipf_s: float = 1.2,
) -> List[int]:
    """Deterministic part-access sequence for one operation.

    Patterns:

    * ``sequential`` — one pass 0,1,2,…, wrapping;
    * ``looping`` — cycle over the first ``working_set`` parts (the
      pattern that separates LRU from MRU when the set exceeds capacity);
    * ``random`` — uniform over all parts;
    * ``zipf`` — skewed popularity (hot parts exist, like hot code pages).
    """
    if n_parts < 1 or n_accesses < 0:
        raise ValueError("need n_parts >= 1 and n_accesses >= 0")
    ws = n_parts if working_set is None else max(1, min(working_set, n_parts))
    rng = random.Random(seed)
    if pattern == "sequential":
        return [i % n_parts for i in range(n_accesses)]
    if pattern == "looping":
        return [i % ws for i in range(n_accesses)]
    if pattern == "random":
        return [rng.randrange(n_parts) for _ in range(n_accesses)]
    if pattern == "zipf":
        weights = [1.0 / (i + 1) ** zipf_s for i in range(n_parts)]
        total = sum(weights)
        out = []
        for _ in range(n_accesses):
            x = rng.uniform(0, total)
            acc = 0.0
            for i, w in enumerate(weights):
                acc += w
                if x <= acc:
                    out.append(i)
                    break
            else:  # pragma: no cover - float slack
                out.append(n_parts - 1)
        return out
    raise ValueError(f"unknown access pattern {pattern!r}")
