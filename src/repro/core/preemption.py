"""Preemption policies for circuits executing on the fabric (paper §3).

When the OS wants the device back before an operation finishes, the paper
enumerates the options:

* **combinational circuits** — simply wait for the propagation to complete
  (nanoseconds); nothing needs saving, completed evaluations stand;
* **sequential circuits** — either *save and restore* the internal state
  (only if the circuit was designed observable and controllable), or
  *roll back*: discard progress and later restart from the initial data,
  or refuse preemption altogether (*run to completion*).

A policy reduces to one :class:`PreemptDecision` per preemption point; the
services charge the returned costs and keep or discard progress
accordingly.  :class:`Adaptive` picks rollback vs save/restore by
comparing the work that would be lost with the state-movement cost — the
paper's "as simple and fast as possible" requirement turned into a rule.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..device import ConfigPort
from .errors import StateAccessError
from .registry import ConfigEntry

__all__ = [
    "PreemptDecision",
    "PreemptionPolicy",
    "RunToCompletion",
    "Rollback",
    "SaveRestore",
    "Adaptive",
]


@dataclass(frozen=True)
class PreemptDecision:
    """What happens at one preemption point."""

    allowed: bool
    keep_progress: bool = False
    save_cost: float = 0.0      #: charged when the circuit is preempted
    restore_cost: float = 0.0   #: charged when it resumes (reload is separate)
    used_state_access: bool = False

    @property
    def state_cost(self) -> float:
        """Total state movement (save + restore) this decision would
        charge — the term the fabric scheduling engine prices against
        the reconfiguration bill (zero unless progress is kept)."""
        return self.save_cost + self.restore_cost if self.keep_progress else 0.0


class PreemptionPolicy(ABC):
    """Strategy deciding whether/how an executing circuit is preempted."""

    name: str = "abstract"

    @abstractmethod
    def decide(
        self, entry: ConfigEntry, port: ConfigPort, progress_done: float
    ) -> PreemptDecision:
        """``progress_done`` is the fabric time already spent on the op."""

    @staticmethod
    def _combinational(entry: ConfigEntry) -> PreemptDecision:
        # Wait-for-propagation: one clock period and the outputs are done;
        # completed evaluations are results already delivered, so progress
        # is inherently preserved at zero state cost.
        return PreemptDecision(allowed=True, keep_progress=True)


class RunToCompletion(PreemptionPolicy):
    """Never preempt (the paper's non-preemptable resource, §4)."""

    name = "run-to-completion"

    def decide(self, entry, port, progress_done):
        return PreemptDecision(allowed=False)


class Rollback(PreemptionPolicy):
    """Preempt by discarding progress; the op restarts from its initial
    data when the task gets the fabric back (§3)."""

    name = "rollback"

    def decide(self, entry, port, progress_done):
        if not entry.is_sequential:
            return self._combinational(entry)
        return PreemptDecision(allowed=True, keep_progress=False)


class SaveRestore(PreemptionPolicy):
    """Preempt by reading back all memory elements and restoring them on
    resume.  Requires the circuit's state to be observable and
    controllable; ``strict=True`` raises on inaccessible circuits,
    otherwise they fall back to run-to-completion (refusing preemption is
    always safe)."""

    name = "save-restore"

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict

    def decide(self, entry, port, progress_done):
        if not entry.is_sequential:
            return self._combinational(entry)
        if not entry.state_accessible:
            if self.strict:
                raise StateAccessError(
                    f"configuration {entry.name!r} has unobservable state; "
                    "save/restore preemption is impossible (paper §3)"
                )
            return PreemptDecision(allowed=False)
        return PreemptDecision(
            allowed=True,
            keep_progress=True,
            save_cost=port.state_save_time(entry.bitstream).seconds,
            restore_cost=port.state_restore_time(entry.bitstream).seconds,
            used_state_access=True,
        )


class Adaptive(PreemptionPolicy):
    """Pick the cheaper of rollback and save/restore at each point.

    Rolling back costs the progress already made (it must be redone);
    saving costs the state movement.  Early in an op rollback is cheap,
    late in a long op save/restore wins — the crossover experiment E6
    charts exactly this.
    """

    name = "adaptive"

    def decide(self, entry, port, progress_done):
        if not entry.is_sequential:
            return self._combinational(entry)
        if not entry.state_accessible:
            return PreemptDecision(allowed=True, keep_progress=False)
        move_cost = (
            port.state_save_time(entry.bitstream).seconds
            + port.state_restore_time(entry.bitstream).seconds
        )
        if progress_done <= move_cost:
            return PreemptDecision(allowed=True, keep_progress=False)
        return PreemptDecision(
            allowed=True,
            keep_progress=True,
            save_cost=port.state_save_time(entry.bitstream).seconds,
            restore_cost=port.state_restore_time(entry.bitstream).seconds,
            used_state_access=True,
        )
