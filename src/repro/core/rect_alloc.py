"""Two-dimensional rectangular allocation for variable partitions.

The paper's variable partitioning is one-dimensional (column spans —
matching the frame-per-column configuration hardware of its era).  Modern
FPGA virtualization allocates rectangular 2-D zones instead; this module
provides that alternative so experiment E18 can quantify what the second
dimension buys.

:class:`RectAllocator` uses the classic bottom-left heuristic: candidate
anchors are the origin plus the top-left/bottom-right corners of resident
rectangles; among fitting anchors the lowest (then leftmost) wins.  The
fragmentation gauge finds the largest empty rectangle by dynamic
programming over the occupancy grid.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..device import Rect
from .errors import VfpgaError

__all__ = ["RectAllocator"]


class RectAllocator:
    """Bottom-left rectangular placement over a ``width`` × ``height`` grid."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("degenerate allocator bounds")
        self.width = width
        self.height = height
        self.resident: List[Rect] = []

    # -- queries ------------------------------------------------------------
    @property
    def total_free(self) -> int:
        """Free CLB count."""
        return self.width * self.height - sum(r.area for r in self.resident)

    def _occupancy(self) -> np.ndarray:
        grid = np.zeros((self.width, self.height), dtype=bool)
        for r in self.resident:
            grid[r.x:r.x2, r.y:r.y2] = True
        return grid

    def largest_free_rect(self) -> Tuple[int, int]:
        """(w, h) of the largest empty rectangle (0, 0) if full."""
        grid = self._occupancy()
        best = 0
        best_wh = (0, 0)
        # Row sweep with histogram-of-heights (largest rectangle in a
        # binary matrix): O(height * width) with a monotone stack.
        heights = np.zeros(self.width, dtype=int)
        for y in range(self.height):
            heights = np.where(grid[:, y], 0, heights + 1)
            stack: List[Tuple[int, int]] = []  # (start index, height)
            for x, h in enumerate(list(heights) + [0]):
                start = x
                while stack and stack[-1][1] >= h:
                    idx, hh = stack.pop()
                    area = hh * (x - idx)
                    if area > best:
                        best = area
                        best_wh = (x - idx, hh)
                    start = idx
                stack.append((start, int(h)))
        return best_wh

    @property
    def fragmentation(self) -> float:
        """1 − largest-empty-rect area / total free area."""
        free = self.total_free
        if free == 0:
            return 0.0
        w, h = self.largest_free_rect()
        return 1.0 - (w * h) / free

    def can_fit_somewhere(self, w: int, h: int) -> bool:
        lw, lh = self.largest_free_rect()
        return lw >= w and lh >= h

    # -- allocation ------------------------------------------------------------
    def _candidates(self) -> List[Tuple[int, int]]:
        anchors = {(0, 0)}
        for r in self.resident:
            anchors.add((r.x2, r.y))
            anchors.add((r.x, r.y2))
            anchors.add((r.x2, 0))
            anchors.add((0, r.y2))
        return sorted(anchors, key=lambda a: (a[1], a[0]))  # bottom-left

    def _fits(self, rect: Rect) -> bool:
        if rect.x2 > self.width or rect.y2 > self.height:
            return False
        return all(not rect.overlaps(r) for r in self.resident)

    def allocate(self, w: int, h: int) -> Optional[Tuple[int, int]]:
        """Reserve a ``w`` × ``h`` rectangle; returns its anchor or None."""
        if w < 1 or h < 1:
            raise ValueError("degenerate request")
        for (x, y) in self._candidates():
            rect = Rect(x, y, w, h) if x + w <= self.width and \
                y + h <= self.height else None
            if rect is not None and self._fits(rect):
                self.resident.append(rect)
                return (x, y)
        return None

    def reserve(self, x: int, y: int, w: int, h: int) -> None:
        rect = Rect(x, y, w, h)
        if not self._fits(rect):
            raise VfpgaError(f"rect {rect} is not free")
        self.resident.append(rect)

    def release(self, x: int, y: int, w: int, h: int) -> None:
        rect = Rect(x, y, w, h)
        try:
            self.resident.remove(rect)
        except ValueError:
            raise VfpgaError(f"release of unallocated rect {rect}") from None

    def merge_free(self) -> int:
        """2-D free space needs no span merging; present for protocol
        parity with :class:`~repro.core.partitioning.ColumnAllocator`."""
        return 0
