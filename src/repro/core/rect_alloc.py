"""Two-dimensional rectangular allocation for variable partitions.

The paper's variable partitioning is one-dimensional (column spans —
matching the frame-per-column configuration hardware of its era).  Modern
FPGA virtualization allocates rectangular 2-D zones instead; this module
provides that alternative so experiment E18 can quantify what the second
dimension buys.

:class:`RectAllocator` is a thin stateful wrapper over the pluggable
:mod:`placement engine <repro.core.placement>`: the strategy proposes an
anchor (bottom-left by default — the classic heuristic this allocator
originally hard-coded), the allocator commits it and keeps the resident
ledger plus an **incrementally maintained** occupancy grid.  The
fragmentation gauge finds the largest empty rectangle by dynamic
programming over that grid; because the grid is updated in place on
allocate/release instead of rebuilt from the resident list on every
query, repeated fragmentation probes on large fabrics are cheap
(``benchmarks/test_occupancy_microbench.py`` quantifies the win).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..device import Rect
from .errors import VfpgaError
from .placement import (
    PlacementRequest,
    PlacementStrategy,
    Proposal,
    make_placement,
)

__all__ = ["RectAllocator"]


class RectAllocator:
    """Strategy-driven rectangular placement over ``width`` × ``height``.

    ``placement`` names any 2-D strategy from
    :data:`repro.core.placement.PLACEMENT_STRATEGIES` (or is an instance);
    the default reproduces the seed bottom-left behavior anchor-for-anchor.
    """

    def __init__(
        self,
        width: int,
        height: int,
        placement: Union[str, PlacementStrategy] = "bottom-left",
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("degenerate allocator bounds")
        self.width = width
        self.height = height
        self.placement = make_placement(placement)
        self.resident: List[Rect] = []
        self._grid = np.zeros((width, height), dtype=bool)
        #: The most recent successful placement decision (telemetry).
        self.last_proposal: Optional[Proposal] = None

    # -- queries ------------------------------------------------------------
    @property
    def total_free(self) -> int:
        """Free CLB count."""
        return self.width * self.height - sum(r.area for r in self.resident)

    def _occupancy(self) -> np.ndarray:
        """The incrementally maintained occupancy grid (do not mutate)."""
        return self._grid

    def _rebuild_occupancy(self) -> np.ndarray:
        """Reference implementation: grid from scratch off the resident
        list.  Kept for validation and the occupancy microbenchmark."""
        grid = np.zeros((self.width, self.height), dtype=bool)
        for r in self.resident:
            grid[r.x:r.x2, r.y:r.y2] = True
        return grid

    def largest_free_rect(self) -> Tuple[int, int]:
        """(w, h) of the largest empty rectangle (0, 0) if full."""
        grid = self._occupancy()
        best = 0
        best_wh = (0, 0)
        # Row sweep with histogram-of-heights (largest rectangle in a
        # binary matrix): O(height * width) with a monotone stack.
        heights = np.zeros(self.width, dtype=int)
        for y in range(self.height):
            heights = np.where(grid[:, y], 0, heights + 1)
            stack: List[Tuple[int, int]] = []  # (start index, height)
            for x, h in enumerate(list(heights) + [0]):
                start = x
                while stack and stack[-1][1] >= h:
                    idx, hh = stack.pop()
                    area = hh * (x - idx)
                    if area > best:
                        best = area
                        best_wh = (x - idx, hh)
                    start = idx
                stack.append((start, int(h)))
        return best_wh

    @property
    def fragmentation(self) -> float:
        """1 − largest-empty-rect area / total free area."""
        free = self.total_free
        if free == 0:
            return 0.0
        w, h = self.largest_free_rect()
        return 1.0 - (w * h) / free

    def can_fit_somewhere(self, w: int, h: int) -> bool:
        lw, lh = self.largest_free_rect()
        return lw >= w and lh >= h

    # -- allocation ------------------------------------------------------------
    def _fits(self, rect: Rect) -> bool:
        if rect.x2 > self.width or rect.y2 > self.height:
            return False
        return all(not rect.overlaps(r) for r in self.resident)

    def _commit(self, rect: Rect) -> None:
        self.resident.append(rect)
        self._grid[rect.x:rect.x2, rect.y:rect.y2] = True

    def allocate(
        self,
        w: int,
        h: int,
        placement: Optional[PlacementStrategy] = None,
    ) -> Optional[Tuple[int, int]]:
        """Reserve a ``w`` × ``h`` rectangle; returns its anchor or None.

        ``placement`` overrides the configured strategy for this call
        (compaction uses this to slide residents with a specific rule).
        """
        if w < 1 or h < 1:
            raise ValueError("degenerate request")
        strategy = placement if placement is not None else self.placement
        proposal = strategy.propose(
            PlacementRequest(
                w=w, h=h,
                bounds_w=self.width, bounds_h=self.height,
                resident=tuple(self.resident),
            )
        )
        if proposal is None:
            return None
        x, y = proposal.anchor
        rect = Rect(x, y, w, h)
        if not self._fits(rect):
            raise VfpgaError(
                f"placement strategy {strategy.name!r} proposed "
                f"occupied/out-of-bounds rect {rect}"
            )
        self._commit(rect)
        self.last_proposal = proposal
        return (x, y)

    def reserve(self, x: int, y: int, w: int, h: int) -> None:
        rect = Rect(x, y, w, h)
        if not self._fits(rect):
            raise VfpgaError(f"rect {rect} is not free")
        self._commit(rect)

    def release(self, x: int, y: int, w: int, h: int) -> None:
        rect = Rect(x, y, w, h)
        try:
            self.resident.remove(rect)
        except ValueError:
            raise VfpgaError(f"release of unallocated rect {rect}") from None
        self._grid[rect.x:rect.x2, rect.y:rect.y2] = False

    def merge_free(self) -> int:
        """2-D free space needs no span merging; present for protocol
        parity with :class:`~repro.core.partitioning.ColumnAllocator`."""
        return 0
