"""The OS configuration tables (paper §3).

Tasks declare the configurations they intend to download; the operating
system stores them "in the operating system tables at the beginning of the
task life".  :class:`ConfigRegistry` is those tables: configuration name →
:class:`ConfigEntry` holding the compiled bitstream, its timing, footprint,
state-bit count and the observability/controllability flag that gates
save/restore preemption.

Entries come from three sources:

* :meth:`ConfigRegistry.register_compiled` — a CAD-flow result;
* :meth:`ConfigRegistry.compile_and_register` — compile a netlist here;
* :meth:`ConfigRegistry.register_synthetic` — a size/state/timing-accurate
  placeholder for scale experiments (no logic, real frames).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..cad import CompileCache, CompileResult, compile_netlist
from ..device import Architecture, Bitstream, ClbConfig, Coord, Rect
from ..netlist import Netlist
from .bitcache import BitstreamCache
from .errors import AdmissionError, UnknownConfigError

__all__ = ["ConfigEntry", "ConfigRegistry", "synthetic_bitstream"]


@dataclass(frozen=True)
class ConfigEntry:
    """One declared configuration.

    Attributes
    ----------
    name:
        Registry key (unique).
    bitstream:
        Relocatable compiled configuration (anchored wherever the manager
        decides at load time).
    critical_path:
        Clock period of the implemented circuit (seconds).
    io_pins:
        Virtual pins the circuit needs while executing (drives the pin
        multiplexer).
    state_accessible:
        Whether the circuit's memory elements are observable *and*
        controllable (paper §3) — save/restore preemption requires it.
    """

    name: str
    bitstream: Bitstream
    critical_path: float
    io_pins: int
    state_accessible: bool = True

    @property
    def region_shape(self) -> tuple:
        return (self.bitstream.region.w, self.bitstream.region.h)

    @property
    def area(self) -> int:
        return self.bitstream.region.area

    @property
    def n_state_bits(self) -> int:
        return self.bitstream.n_state_bits

    @property
    def is_sequential(self) -> bool:
        return self.n_state_bits > 0


def synthetic_bitstream(
    name: str,
    arch: Architecture,
    width: int,
    height: int,
    n_state_bits: int = 0,
) -> Bitstream:
    """A logic-free but physically real bitstream: correct footprint,
    correct frame count, real flip-flops for readback cost.  Used by scale
    benchmarks where compiling hundreds of circuits would dominate runtime
    without changing what is measured."""
    if width > arch.width or height > arch.height:
        raise AdmissionError(
            f"synthetic circuit {name!r} ({width}x{height}) exceeds device "
            f"{arch.width}x{arch.height}"
        )
    if n_state_bits > width * height:
        raise AdmissionError(
            f"{name!r}: {n_state_bits} state bits exceed {width * height} CLBs"
        )
    region = Rect(0, 0, width, height)
    clbs: Dict[Coord, ClbConfig] = {}
    state_bits: Dict[str, Coord] = {}
    coords = list(region.coords())
    for i in range(n_state_bits):
        c = coords[i]
        clbs[c] = ClbConfig(
            lut_truth=0,
            ff_enable=True,
            out_registered=True,
            input_sel=(0,) * arch.k,
        )
        state_bits[f"{name}_ff{i}"] = c
    return Bitstream(
        name=name,
        arch_name=arch.name,
        region=region,
        clbs=clbs,
        relocatable=True,
        state_bits=state_bits,
    )


class ConfigRegistry:
    """Name → :class:`ConfigEntry` tables shared by kernel-side services."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._entries: Dict[str, ConfigEntry] = {}
        #: Anchored-bitstream memo: (name, x, y) → translated bitstream.
        #: Repeated activations of a config at the same anchor reuse the
        #: translation (and, via the instance-memoised content digest, the
        #: bitcache hashes it exactly once).
        self._translated: Dict[Tuple[str, int, int], Bitstream] = {}
        #: Shared content-addressed cache of encoded frame images,
        #: consulted by every service load through this registry.
        self.bitcache = BitstreamCache(arch)
        #: Shared content-addressed compile cache: repeat
        #: :meth:`compile_and_register` calls over the same netlist
        #: content are metadata hits, the way repeat loads already are.
        self.compile_cache = CompileCache()

    # -- registration --------------------------------------------------------
    def register(self, entry: ConfigEntry) -> ConfigEntry:
        if entry.name in self._entries:
            raise AdmissionError(f"configuration {entry.name!r} already declared")
        if not entry.bitstream.relocatable:
            raise AdmissionError(
                f"configuration {entry.name!r}: manager needs relocatable "
                "bitstreams (dedicated ones bind physical pads)"
            )
        entry.bitstream.validate(self.arch)
        self._entries[entry.name] = entry
        self._invalidate(entry.name)
        return entry

    def unregister(self, name: str) -> ConfigEntry:
        """Withdraw a configuration and drop its cached translations."""
        entry = self.get(name)
        del self._entries[name]
        self._invalidate(name)
        return entry

    def _invalidate(self, name: str) -> None:
        for key in [k for k in self._translated if k[0] == name]:
            del self._translated[key]

    def register_compiled(
        self, result: CompileResult, name: Optional[str] = None,
        state_accessible: bool = True,
    ) -> ConfigEntry:
        bs = result.bitstream
        ins, outs = bs.ports()
        return self.register(
            ConfigEntry(
                name=name or bs.name,
                bitstream=bs.anchored_at(0, 0),
                critical_path=result.critical_path,
                io_pins=len(ins) + len(outs),
                state_accessible=state_accessible,
            )
        )

    def compile_and_register(
        self,
        netlist: Netlist,
        name: Optional[str] = None,
        region: Optional[Rect] = None,
        seed: int = 0,
        effort: str = "sa",
        state_accessible: bool = True,
        shape: str = "square",
        engine: str = "auto",
    ) -> ConfigEntry:
        result = compile_netlist(
            netlist, self.arch, region=region, seed=seed, effort=effort,
            shape=shape, engine=engine, cache=self.compile_cache,
        )
        return self.register_compiled(
            result, name=name, state_accessible=state_accessible
        )

    def register_synthetic(
        self,
        name: str,
        width: int,
        height: int,
        n_state_bits: int = 0,
        critical_path: float = 20e-9,
        io_pins: int = 8,
        state_accessible: bool = True,
    ) -> ConfigEntry:
        bs = synthetic_bitstream(name, self.arch, width, height, n_state_bits)
        return self.register(
            ConfigEntry(
                name=name,
                bitstream=bs,
                critical_path=critical_path,
                io_pins=io_pins,
                state_accessible=state_accessible,
            )
        )

    # -- lookup ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str) -> ConfigEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownConfigError(name) from None

    def translated(self, name: str, anchor: Tuple[int, int]) -> Bitstream:
        """The named configuration's bitstream anchored at ``anchor``,
        memoised per (name, anchor) — the encode hot path consults this
        instead of re-translating on every demand fault."""
        key = (name, anchor[0], anchor[1])
        bs = self._translated.get(key)
        if bs is None:
            bs = self.get(name).bitstream.anchored_at(*anchor)
            self._translated[key] = bs
        return bs

    def names(self) -> List[str]:
        return list(self._entries)

    def entries(self) -> List[ConfigEntry]:
        return list(self._entries.values())

    def total_area(self, names: Optional[Iterable[str]] = None) -> int:
        chosen = self._entries.values() if names is None else [
            self.get(n) for n in names
        ]
        return sum(e.area for e in chosen)
