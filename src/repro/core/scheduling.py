"""Pluggable scheduling engines — CPU ready-queue and fabric preemption.

The fourth engine quadrant (after placement, replacement and dispatch):
scheduling as strategy objects, priced by what a context switch actually
costs on a reconfigurable device.

Two protocols live here:

* :class:`CpuSchedulerPolicy` — the ready-queue strategy behind
  :class:`repro.osim.scheduler.PolicyScheduler`.  A strategy is *pure*:
  ``pick(ReadyView) -> CpuDecision`` inspects an immutable snapshot of
  the ready queue and names the entry to dispatch; the host owns the
  mutable queue and keeps O(1)/O(log n) fast paths (deque / heap) for
  strategies that declare a static :attr:`~CpuSchedulerPolicy.order`.
  The seed ``Fifo``/``RoundRobin``/``PriorityScheduler`` behaviors are
  reproduced event-for-event; :class:`DeadlineEDF` and
  :class:`AgedPriority` add deadline- and starvation-aware strategies.

* :class:`FabricSchedulerPolicy` — decides *whether* preempting the
  resident circuit is worth it.  The paper's §3 preemption mechanics
  (save/restore vs rollback) say *how* to preempt; this engine prices
  the whole switch — the victim's eventual reload (delta-frame cost
  from the resident :class:`~repro.device.ConfigRam` digests), the
  state movement of the :class:`~repro.core.preemption.PreemptDecision`,
  the progress a rollback discards — and weighs the bill against the
  fabric time a switch buys the waiters.  ``fixed-quantum`` reproduces
  the seed behavior (preempt whenever anyone waits);
  :class:`CostAwareFabric` skips switches whose bill exceeds the
  benefit, following the cost models of task-based preemptive
  FPGA scheduling on partial reconfiguration (PAPERS.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Optional,
    Tuple,
    Type,
    Union,
)

from .preemption import PreemptDecision

if TYPE_CHECKING:  # pragma: no cover
    from ..osim.task import Task

__all__ = [
    "ReadyEntry",
    "ReadyView",
    "CpuDecision",
    "CpuSchedulerPolicy",
    "FifoCpu",
    "RoundRobinCpu",
    "PriorityCpu",
    "DeadlineEDF",
    "AgedPriority",
    "CPU_SCHEDULERS",
    "make_cpu_policy",
    "make_cpu_scheduler",
    "SwitchContext",
    "FabricDecision",
    "FabricSchedulerPolicy",
    "FixedQuantumFabric",
    "CostAwareFabric",
    "FABRIC_SCHEDULERS",
    "make_fabric_scheduler",
]


# ---------------------------------------------------------------------------
# CPU side: ready-queue strategies
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReadyEntry:
    """One ready task as a strategy sees it.

    ``seq`` is the host-minted monotone enqueue ticket — unique per
    enqueue, so relative ``seq`` order *is* arrival order (the seed
    list index).  ``enqueued_at`` is the simulation time the task
    (re-)entered the ready queue, the input priority aging needs.
    """

    task: "Task"
    seq: int
    enqueued_at: float


@dataclass(frozen=True)
class ReadyView:
    """Immutable snapshot of the ready queue at one decision instant."""

    now: float
    entries: Tuple[ReadyEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class CpuDecision:
    """A strategy's answer: dispatch the entry with this ``seq``."""

    seq: int


class CpuSchedulerPolicy(ABC):
    """Pure ready-queue strategy.

    :attr:`order` declares the selection discipline so the host can keep
    a matching fast path:

    * ``"fifo"`` — always the oldest entry (host uses an O(1) deque);
    * ``"keyed"`` — minimal ``(key(task), seq)`` under a key that is
      fixed at enqueue time (host uses an O(log n) heap);
    * ``"dynamic"`` — the key depends on the decision instant (aging);
      the host materializes a :class:`ReadyView` and calls
      :meth:`pick` for every dispatch.

    :meth:`pick` is total for every order — property tests drive the
    pure protocol directly and hold the fast paths to decision
    equivalence with it.
    """

    name: str = "abstract"
    #: Selection discipline: ``"fifo"`` | ``"keyed"`` | ``"dynamic"``.
    order: str = "fifo"

    def key(self, task: "Task") -> Tuple[float, ...]:
        """Enqueue-time sort key (``order == "keyed"`` strategies)."""
        raise NotImplementedError(
            f"{type(self).__name__} declares order={self.order!r} "
            "but does not implement key()"
        )

    def pick(self, view: ReadyView) -> Optional[CpuDecision]:
        """Name the entry to dispatch (``None`` on an empty view)."""
        if not view.entries:
            return None
        if self.order == "fifo":
            best = min(view.entries, key=lambda e: e.seq)
        else:
            # Any keyed strategy driven through the pure protocol makes
            # the same decisions as its heap fast path.
            best = min(view.entries,
                       key=lambda e: (self.key(e.task), e.seq))
        return CpuDecision(best.seq)

    @abstractmethod
    def quantum(self, task: "Task") -> float:
        """CPU time slice granted to ``task`` (inf = run burst to end)."""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items())
            if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


def _require_positive(value: float, what: str) -> float:
    if value <= 0:
        raise ValueError(f"{what} must be positive")
    return value


class FifoCpu(CpuSchedulerPolicy):
    """Run-to-completion batch scheduling (the seed ``Fifo``)."""

    name = "fifo"
    order = "fifo"

    def quantum(self, task: "Task") -> float:
        return float("inf")


class RoundRobinCpu(CpuSchedulerPolicy):
    """Time-shared FIFO with a fixed quantum (the seed ``RoundRobin``)."""

    name = "rr"
    order = "fifo"

    def __init__(self, time_slice: float = 10e-3) -> None:
        self.time_slice = _require_positive(time_slice, "time_slice")

    def quantum(self, task: "Task") -> float:
        return self.time_slice


class PriorityCpu(CpuSchedulerPolicy):
    """Static priorities, stable within a level (the seed
    ``PriorityScheduler``): minimal ``(priority, arrival)``."""

    name = "priority"
    order = "keyed"

    def __init__(self, time_slice: float = 10e-3) -> None:
        self.time_slice = _require_positive(time_slice, "time_slice")

    def key(self, task: "Task") -> Tuple[float, ...]:
        return (task.priority,)

    def quantum(self, task: "Task") -> float:
        return self.time_slice


class DeadlineEDF(CpuSchedulerPolicy):
    """Earliest deadline first.

    Tasks without a :attr:`~repro.osim.task.Task.deadline` sort last
    (infinite deadline) and fall back to arrival order among
    themselves — a deadline-free workload behaves exactly like FIFO
    with a quantum.
    """

    name = "edf"
    order = "keyed"

    def __init__(self, time_slice: float = 10e-3) -> None:
        self.time_slice = _require_positive(time_slice, "time_slice")

    def key(self, task: "Task") -> Tuple[float, ...]:
        deadline = getattr(task, "deadline", None)
        return (float("inf") if deadline is None else deadline,)

    def quantum(self, task: "Task") -> float:
        return self.time_slice


class AgedPriority(CpuSchedulerPolicy):
    """Static priorities with aging — no starvation.

    A task's effective priority drops by one level for every ``aging``
    seconds it has waited in the ready queue, so any task eventually
    outranks a steady stream of higher-priority arrivals.  With
    ``aging = inf`` this degenerates to :class:`PriorityCpu`.
    """

    name = "aged-priority"
    order = "dynamic"

    def __init__(self, time_slice: float = 10e-3,
                 aging: float = 50e-3) -> None:
        self.time_slice = _require_positive(time_slice, "time_slice")
        self.aging = _require_positive(aging, "aging")

    def effective_priority(self, entry: ReadyEntry, now: float) -> float:
        waited = max(0.0, now - entry.enqueued_at)
        return entry.task.priority - waited / self.aging

    def pick(self, view: ReadyView) -> Optional[CpuDecision]:
        if not view.entries:
            return None
        best = min(
            view.entries,
            key=lambda e: (self.effective_priority(e, view.now), e.seq),
        )
        return CpuDecision(best.seq)

    def quantum(self, task: "Task") -> float:
        return self.time_slice


#: Registry of instantiable CPU strategies (CLI sweep space).
CPU_SCHEDULERS: Dict[str, Type[CpuSchedulerPolicy]] = {
    cls.name: cls
    for cls in (FifoCpu, RoundRobinCpu, PriorityCpu, DeadlineEDF,
                AgedPriority)
}


def make_cpu_policy(
    name: Union[str, CpuSchedulerPolicy], **kw
) -> CpuSchedulerPolicy:
    """Instantiate a CPU strategy by name (instances pass through)."""
    if isinstance(name, CpuSchedulerPolicy):
        if kw:
            raise ValueError(
                "cannot pass constructor kwargs with a ready-made "
                f"CpuSchedulerPolicy instance ({name!r})"
            )
        return name
    try:
        cls = CPU_SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown cpu scheduler {name!r}; have {sorted(CPU_SCHEDULERS)}"
        ) from None
    return cls(**kw)


def make_cpu_scheduler(name: Union[str, CpuSchedulerPolicy], **kw):
    """A ready-to-use kernel scheduler driving the named strategy."""
    from ..osim.scheduler import PolicyScheduler

    return PolicyScheduler(make_cpu_policy(name, **kw))


# ---------------------------------------------------------------------------
# Fabric side: preemption worth it?
# ---------------------------------------------------------------------------

class SwitchContext:
    """Everything a fabric strategy may price at one preemption point.

    The reload cost is computed lazily through ``reload_cost`` (a
    callback into the service's delta-frame pricing against the
    resident :class:`~repro.device.ConfigRam` digests) and memoized, so
    strategies that never look at it — ``fixed-quantum`` — pay nothing.

    ``decision`` is the mechanism the
    :class:`~repro.core.preemption.PreemptionPolicy` already chose
    (save/restore vs rollback); the fabric strategy prices that
    mechanism, it never overrides it.
    """

    def __init__(
        self,
        waiting: int,
        remaining: float,
        progress_done: float,
        decision: PreemptDecision,
        waiter_slack: float,
        reload_cost: Callable[[], float],
    ) -> None:
        #: Operations queued for the fabric right now.
        self.waiting = waiting
        #: Fabric seconds the resident op still needs.
        self.remaining = remaining
        #: Fabric seconds the resident op has already run.
        self.progress_done = progress_done
        #: The preemption mechanism's verdict for this point.
        self.decision = decision
        #: Tightest waiter deadline slack (inf = no deadlines waiting).
        self.waiter_slack = waiter_slack
        self._reload_cost = reload_cost
        self._reconfig_cost: Optional[float] = None

    @property
    def reconfig_cost(self) -> float:
        """Port seconds to make the victim resident again (memoized)."""
        if self._reconfig_cost is None:
            self._reconfig_cost = float(self._reload_cost())
        return self._reconfig_cost

    @property
    def state_cost(self) -> float:
        """Save + restore seconds if the mechanism keeps progress."""
        d = self.decision
        return d.state_cost if d.allowed else 0.0

    @property
    def lost_progress(self) -> float:
        """Fabric seconds a rollback would discard (re-done later)."""
        d = self.decision
        if d.allowed and not d.keep_progress:
            return self.progress_done
        return 0.0

    @property
    def bill(self) -> float:
        """Total cost of switching now: reload + state + lost work."""
        return self.reconfig_cost + self.state_cost + self.lost_progress


@dataclass(frozen=True)
class FabricDecision:
    """A fabric strategy's verdict at one preemption point."""

    preempt: bool
    reason: str = ""


class FabricSchedulerPolicy(ABC):
    """Strategy deciding whether a priced context switch happens."""

    name: str = "abstract"

    @abstractmethod
    def decide(self, ctx: SwitchContext) -> FabricDecision:
        """Preempt the resident op at this quantum boundary?"""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items())
            if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


class FixedQuantumFabric(FabricSchedulerPolicy):
    """The seed behavior, reproduced exactly: preempt whenever anyone
    is waiting, blind to what the switch costs."""

    name = "fixed-quantum"

    def decide(self, ctx: SwitchContext) -> FabricDecision:
        if ctx.waiting > 0:
            return FabricDecision(True, "waiters")
        return FabricDecision(False, "idle")


class CostAwareFabric(FabricSchedulerPolicy):
    """Skip preemptions whose bill exceeds the benefit.

    Switching now buys the waiters up to ``remaining`` fabric seconds
    of earlier access; it costs the switch bill (victim reload + state
    movement or lost progress).  The strategy preempts only when

    * a waiter's deadline slack is tighter than ``remaining`` (deadline
      pressure overrides economics), or
    * ``bill * margin <= remaining`` — the switch is cheap relative to
      what it buys.

    ``margin > 1`` demands a larger payoff before switching (more
    conservative); ``margin < 1`` switches more eagerly.
    """

    name = "cost-aware"

    def __init__(self, margin: float = 1.0) -> None:
        self.margin = _require_positive(margin, "margin")

    def decide(self, ctx: SwitchContext) -> FabricDecision:
        if ctx.waiting == 0:
            return FabricDecision(False, "idle")
        if ctx.waiter_slack < ctx.remaining:
            return FabricDecision(True, "deadline-pressure")
        if ctx.bill * self.margin <= ctx.remaining:
            return FabricDecision(True, "cheap-switch")
        return FabricDecision(False, "bill-exceeds-benefit")


#: Registry of instantiable fabric strategies (CLI sweep space).
FABRIC_SCHEDULERS: Dict[str, Type[FabricSchedulerPolicy]] = {
    cls.name: cls for cls in (FixedQuantumFabric, CostAwareFabric)
}


def make_fabric_scheduler(
    name: Union[str, FabricSchedulerPolicy], **kw
) -> FabricSchedulerPolicy:
    """Instantiate a fabric strategy by name (instances pass through)."""
    if isinstance(name, FabricSchedulerPolicy):
        if kw:
            raise ValueError(
                "cannot pass constructor kwargs with a ready-made "
                f"FabricSchedulerPolicy instance ({name!r})"
            )
        return name
    try:
        cls = FABRIC_SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown fabric scheduler {name!r}; "
            f"have {sorted(FABRIC_SCHEDULERS)}"
        ) from None
    return cls(**kw)
