"""Configuration scrubbing: periodic testing, diagnosis and repair (§5).

"In embedded control systems, execution of different non-frequent
functions (e.g., periodic system testing and diagnosis …) can benefit
from the performance achieved by FPGAs."

The scrubber is that periodic diagnosis function for the configuration
memory itself: every ``period`` seconds it reads back the resident frames
(:meth:`repro.device.Fpga.scrub`), compares them with the golden
bitstreams, and reloads any corrupted circuit.  Paired with
:class:`UpsetInjector` (a seeded model of configuration upsets — the
radiation/EMI concern that made real systems scrub), experiment E19
charts mean-time-to-repair and the availability/overhead trade against
the scrub period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..device import Fpga
from ..sim import Simulator
from ..telemetry import ConfigPortOp, EventBus, Repair, ScrubPass, Upset, make_source

__all__ = ["Scrubber", "UpsetInjector", "UpsetRecord"]


@dataclass
class UpsetRecord:
    """One injected configuration upset and its repair, if any."""

    time: float
    frame: int
    bit: int
    handle: Optional[str]      #: resident circuit hit (None = empty area)
    repaired_at: Optional[float] = None

    @property
    def exposure(self) -> Optional[float]:
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.time


class UpsetInjector:
    """Flips random configuration bits at exponentially spaced times."""

    def __init__(
        self,
        sim: Simulator,
        fpga: Fpga,
        mean_interval: float,
        seed: int = 0,
        stop_after: Optional[float] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        self.sim = sim
        self.fpga = fpga
        self.mean_interval = mean_interval
        self.stop_after = stop_after
        self.rng = random.Random(seed)
        self.records: List[UpsetRecord] = []
        self.bus = bus
        self.source = make_source(type(self).__name__)
        sim.process(self._run(), name="upset-injector")

    def _run(self):
        arch = self.fpga.arch
        while True:
            delay = self.rng.expovariate(1.0 / self.mean_interval)
            if self.stop_after is not None and \
                    self.sim.now + delay > self.stop_after:
                return
            yield self.sim.timeout(delay)
            frame = self.rng.randrange(arch.n_frames)
            bit = self.rng.randrange(arch.frame_bits)
            # flip_bit (not a raw frames[] poke) keeps the RAM's frame
            # digests coherent so delta repairs diff against real content.
            self.fpga.ram.flip_bit(frame, bit)
            handle = None
            for h, bs in self.fpga.resident.items():
                if frame in bs.frames_touched(arch):
                    handle = h
                    break
            self.records.append(
                UpsetRecord(time=self.sim.now, frame=frame, bit=bit,
                            handle=handle)
            )
            if self.bus is not None:
                self.bus.publish(Upset(
                    self.sim.now, source=self.source, frame=frame, bit=bit,
                    handle=handle or "",
                ))


class Scrubber:
    """Periodic readback-compare-repair process over one device.

    Repairs reload the corrupted circuit's golden bitstream; both the
    readback pass and each repair's unload + reload charge their
    configuration-port time, so availability numbers are honest and the
    device-port stream stays serial (the
    :class:`~repro.telemetry.Auditor` ``device_port`` monitor holds the
    scrubbing experiment to this).

    When a ``bus`` is given and the device has no telemetry hook yet (no
    service owns it — the scrubbing experiment runs the device bare),
    the scrubber installs one, so repairs appear as
    :class:`~repro.telemetry.ConfigPortOp` events.
    """

    def __init__(
        self,
        sim: Simulator,
        fpga: Fpga,
        period: float,
        injector: Optional[UpsetInjector] = None,
        stop_after: Optional[float] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.fpga = fpga
        self.period = period
        self.injector = injector
        self.stop_after = stop_after
        self.n_scrubs = 0
        self.n_repairs = 0
        self.scrub_time_total = 0.0
        self.repair_time_total = 0.0
        self.bus = bus
        self.source = make_source(type(self).__name__)
        if bus is not None and fpga.telemetry is None:
            fpga.telemetry = self._device_port_event
        sim.process(self._run(), name="scrubber")

    def _device_port_event(self, op: str, handle: str, timing) -> None:
        self._publish(ConfigPortOp(
            self.sim.now, source=self.source, op=op, handle=handle,
            seconds=timing.seconds, frames=timing.n_frames,
            mode=timing.mode, frames_written=timing.written,
        ))

    def _publish(self, event) -> None:
        if self.bus is not None:
            self.bus.publish(event)

    def _run(self):
        while True:
            if self.stop_after is not None and \
                    self.sim.now + self.period > self.stop_after:
                return
            yield self.sim.timeout(self.period)
            cost = self.fpga.scrub_time()
            yield self.sim.timeout(cost)
            self.scrub_time_total += cost
            self.n_scrubs += 1
            corrupted = self.fpga.scrub()
            self._publish(ScrubPass(self.sim.now, source=self.source,
                                    seconds=cost,
                                    n_corrupted=len(corrupted)))
            for handle in corrupted:
                golden = self.fpga.resident[handle]
                t_unload = self.fpga.unload(handle)
                yield self.sim.timeout(t_unload.seconds)
                t_load = self.fpga.load(handle, golden)
                yield self.sim.timeout(t_load.seconds)
                self.repair_time_total += t_unload.seconds + t_load.seconds
                self.n_repairs += 1
                self._publish(Repair(self.sim.now, source=self.source,
                                     handle=handle))
                if self.injector is not None:
                    for rec in self.injector.records:
                        if rec.handle == handle and rec.repaired_at is None:
                            rec.repaired_at = self.sim.now
