"""Segmentation — the paper's variable-size demand loading (§2).

"Segmentation decomposes the function to be downloaded in the FPGA into
smaller parts computing a self-contained sub-function and, as a
consequence, having variable size."

Unlike pages, segments have the sizes their logic dictates, so placement
uses the variable column allocator rather than fixed frames — trading the
internal fragmentation of pagination for external fragmentation and
placement work, which is precisely the axis experiment E8 sweeps.

Two ways to obtain segments:

* :func:`segment_netlist` — genuinely cut a netlist into self-contained
  sub-functions along its topological order (cut nets become segment
  ports), compile each, and register the results;
* :func:`make_segmented_circuit` — synthetic segments for scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..netlist import CellKind, Netlist
from ..osim import FpgaOp, Task
from ..sim import Resource
from .base import VfpgaServiceBase
from .errors import CapacityError, UnknownConfigError
from ..telemetry import OpStart, PageAccess, Placement, SegmentFault
from .placement import PlacementStrategy, make_placement
from .policies import ReplacementPolicy, access_trace, make_replacement
from .partitioning import ColumnAllocator
from .registry import ConfigRegistry

__all__ = [
    "SegmentedCircuit",
    "SegmentedVfpgaService",
    "segment_netlist",
    "make_segmented_circuit",
]


@dataclass(frozen=True)
class SegmentedCircuit:
    """A virtual circuit decomposed into variable-size segments."""

    name: str
    segment_names: tuple
    pattern: str = "looping"
    working_set: Optional[int] = None
    seed: int = 0

    @property
    def n_segments(self) -> int:
        return len(self.segment_names)


def segment_netlist(netlist: Netlist, n_segments: int) -> List[Netlist]:
    """Cut ``netlist`` into ``n_segments`` self-contained sub-functions.

    Cells are sliced along the topological order so every segment's
    internal fanin comes from earlier segments; cut nets become the
    segment's ports (see :meth:`repro.netlist.Netlist.subcircuit`).
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    body = [
        c.name
        for c in netlist.topo_order()
        if c.kind not in (CellKind.INPUT, CellKind.OUTPUT)
    ]
    if len(body) < n_segments:
        raise ValueError(
            f"{netlist.name!r} has {len(body)} cells, cannot make "
            f"{n_segments} segments"
        )
    per = (len(body) + n_segments - 1) // n_segments
    segments = []
    for i in range(n_segments):
        chunk = body[i * per : (i + 1) * per]
        if not chunk:
            break
        keep = set(chunk)
        # Primary outputs driven from inside the chunk belong to it too.
        for out in netlist.primary_outputs:
            if out.fanin[0] in keep:
                keep.add(out.name)
        segments.append(
            netlist.subcircuit(sorted(keep), f"{netlist.name}.seg{i}")
        )
    return segments


def make_segmented_circuit(
    registry: ConfigRegistry,
    name: str,
    widths: Sequence[int],
    height: Optional[int] = None,
    state_bits_per_segment: int = 0,
    critical_path: float = 20e-9,
    pattern: str = "looping",
    working_set: Optional[int] = None,
    seed: int = 0,
) -> SegmentedCircuit:
    """Register synthetic segments of the given column ``widths``."""
    height = registry.arch.height if height is None else height
    names = []
    for i, w in enumerate(widths):
        entry = registry.register_synthetic(
            f"{name}.s{i}", w, height,
            n_state_bits=state_bits_per_segment, critical_path=critical_path,
        )
        names.append(entry.name)
    return SegmentedCircuit(
        name=name, segment_names=tuple(names), pattern=pattern,
        working_set=working_set, seed=seed,
    )


class SegmentedVfpgaService(VfpgaServiceBase):
    """Demand loading of variable-size segments over a column allocator.

    ``op.cycles`` counts segment accesses; each access computes
    ``cycles_per_access`` cycles on the touched segment.  When a segment
    does not fit, unpinned resident segments are evicted by the
    replacement policy until it does (external fragmentation shows up as
    extra evictions and is reported through the allocator's
    ``fragmentation`` gauge).
    """

    def __init__(
        self,
        registry: ConfigRegistry,
        circuits: List[SegmentedCircuit],
        replacement: Union[str, ReplacementPolicy] = "lru",
        replacement_seed: int = 0,
        placement: Union[str, PlacementStrategy] = "column-first-fit",
        cycles_per_access: int = 256,
        **kw,
    ) -> None:
        super().__init__(registry, **kw)
        arch = self.fpga.arch
        self.circuits: Dict[str, SegmentedCircuit] = {c.name: c for c in circuits}
        for circ in circuits:
            for seg in circ.segment_names:
                entry = registry.get(seg)
                r = entry.bitstream.region
                if r.w > arch.width or r.h > arch.height:
                    raise CapacityError(
                        f"segment {seg!r} ({r.w}x{r.h}) exceeds the device"
                    )
        self.replacement = make_replacement(replacement,
                                            seed=replacement_seed)
        self.placement = make_placement(placement)
        self.cycles_per_access = cycles_per_access
        self.allocator = ColumnAllocator(arch.width)
        #: segment name -> anchor x (the segment table).
        self.segment_table: Dict[str, int] = {}
        self._pins: Dict[str, int] = {}
        self._waiters: List = []
        self._op_counter = 0

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self._fault_lock = Resource(self.sim, capacity=1)

    def register_task(self, task: Task) -> None:
        for name in task.configs:
            if name not in self.circuits and name not in self.registry:
                raise UnknownConfigError(name)

    # ------------------------------------------------------------------
    def _pin(self, seg: str) -> None:
        self._pins[seg] = self._pins.get(seg, 0) + 1

    def _unpin(self, seg: str) -> None:
        self._pins[seg] -= 1
        if self._pins[seg] == 0:
            del self._pins[seg]
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    # -- demand-fault pipeline hooks (see VfpgaServiceBase.ensure_resident) --
    def _resident_lookup(self, task, seg):
        return self.segment_table.get(seg)

    def _note_hit(self, task, seg, anchor) -> None:
        self._pin(seg)
        self.replacement.on_access(seg)

    def _publish_fault(self, task, seg) -> None:
        self._publish(SegmentFault, task, unit=seg)

    def _place_unit(self, task, seg):
        """A column span for the segment, evicting unpinned residents by
        replacement-policy order until the strategy finds a fit."""
        entry = self.registry.get(seg)
        w = entry.bitstream.region.w
        while True:
            x = self.allocator.allocate(w, fit=self.placement)
            if x is not None:
                return x
            unpinned = [
                s for s in self.segment_table if s not in self._pins
            ]
            if not unpinned:
                return None
            victim = self.replacement.victim(unpinned)
            vx = self.segment_table.pop(victim)
            self.replacement.on_remove(victim)
            ventry = self.registry.get(victim)
            yield from self._charge_unload(task, victim)
            self.allocator.release(vx, ventry.bitstream.region.w)

    def _undo_place(self, task, seg, x) -> None:
        entry = self.registry.get(seg)
        self.allocator.release(x, entry.bitstream.region.w)

    def _load_unit(self, task, seg, x):
        self.segment_table[seg] = x
        self._pin(seg)
        entry = self.registry.get(seg)
        proposal = self.allocator.last_proposal
        self._publish(
            Placement, task, strategy=self.placement.name, handle=seg,
            anchor=(x, 0),
            candidates=proposal.candidates if proposal is not None else 1,
            fragmentation=self.allocator.fragmentation,
        )
        yield from self._charge_load(task, entry, (x, 0), handle=seg)
        self.replacement.on_insert(seg)
        return x

    def _wait_for_space(self, task, seg):
        ev = self.sim.event()
        self._waiters.append(ev)
        yield ev

    def execute(self, task: Task, op: FpgaOp):
        circ = self.circuits.get(op.config)
        if circ is None:
            raise UnknownConfigError(op.config)
        self._op_counter += 1
        trace = access_trace(
            circ.n_segments,
            op.cycles,
            pattern=circ.pattern,
            working_set=circ.working_set,
            seed=circ.seed * 1_000_003 + self._op_counter,
        )
        t0 = self.sim.now
        self._publish(OpStart, task, config=op.config)
        first_io = True
        for index in trace:
            seg = circ.segment_names[index]
            self._publish(PageAccess, task, unit=seg)
            yield from self.ensure_resident(task, seg)
            try:
                entry = self.registry.get(seg)
                if first_io:
                    self._charge_wait(task, t0)
                    yield from self._charge_io(task, entry, op)
                    first_io = False
                yield from self._charge_exec(
                    task, entry,
                    self.cycles_per_access * entry.critical_path,
                    handle=seg,
                )
            finally:
                self._unpin(seg)
        task.current_config = op.config
