"""The user-facing Virtual FPGA facade.

Two complementary views, matching the paper's two promises:

* **a virtual device of your own** — :meth:`VirtualFpga.evaluate` /
  :meth:`step` functionally execute any registered circuit as if it owned
  the whole device; the facade downloads configurations behind the scenes
  (counting every reconfiguration, so even interactive use shows the
  cost being hidden);
* **an OS-managed shared device** — :meth:`VirtualFpga.simulate` runs a
  task workload under any of the paper's management policies and returns
  the run statistics the experiments are built from.

The policy factory :func:`make_service` gives every benchmark a one-line
way to instantiate a management strategy by name.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..device import Architecture, DeviceView, Fpga, get_family
from ..netlist import Netlist
from ..osim import DEFAULT_MAX_TRACE_EVENTS, Kernel, RoundRobin, RunStats, Scheduler, Task
from ..sim import Simulator
from ..telemetry import Auditor, EventBus
from .baselines import (
    MergedResidentService,
    NonPreemptableService,
    SoftwareOnlyService,
)
from .dynamic_loading import DynamicLoadingService
from .multidevice import MultiDeviceService
from .overlay import OverlayService
from .pagination import PagedVfpgaService
from .partitioning import FixedPartitionService, VariablePartitionService
from .preemption import Adaptive, PreemptionPolicy, Rollback, RunToCompletion, SaveRestore
from .registry import ConfigEntry, ConfigRegistry
from .segmentation import SegmentedVfpgaService

__all__ = ["VirtualFpga", "make_service", "make_preemption_policy"]

_PREEMPTION = {
    "run-to-completion": RunToCompletion,
    "rollback": Rollback,
    "save-restore": SaveRestore,
    "adaptive": Adaptive,
}


def make_preemption_policy(name: Union[str, PreemptionPolicy]) -> PreemptionPolicy:
    if isinstance(name, PreemptionPolicy):
        return name
    try:
        return _PREEMPTION[name]()
    except KeyError:
        raise ValueError(
            f"unknown preemption policy {name!r}; have {sorted(_PREEMPTION)}"
        ) from None


def make_service(policy: str, registry: ConfigRegistry, **kw):
    """Instantiate a management policy by name.

    Names: ``merged``, ``software``, ``nonpreemptable``, ``dynamic``
    (kw: ``preemption``, ``fpga_time_slice``, ``fabric_sched``),
    ``fixed`` (kw: ``partition_widths`` or ``n_partitions``,
    ``replacement``), ``variable`` (kw: ``fit``, ``gc``, ``layout``,
    ``placement``, ``replacement``), ``overlay`` (kw: ``resident_names``,
    ``replacement``, ``overlay_slots``), ``paged`` (kw: ``circuits``,
    ``frame_width``, ``replacement``), ``segmented`` (kw: ``circuits``,
    ``replacement``, ``placement``), ``multi`` (kw: ``n_devices``,
    ``board_factory``, ``dispatch``).

    The pluggable engines are shared across policies: ``placement``
    accepts any :data:`~repro.core.placement.PLACEMENT_STRATEGIES` name,
    ``replacement`` any :func:`~repro.core.policies.make_replacement`
    name (plus ``replacement_seed`` for stochastic policies),
    ``dispatch`` any :data:`~repro.core.dispatch.DISPATCH_POLICIES` name,
    ``fabric_sched`` any :data:`~repro.core.scheduling.FABRIC_SCHEDULERS`
    name (``dynamic`` only), and ``load_mode``
    (``full``/``delta``/``auto``) selects the reconfiguration engine on
    every policy.  The CPU-side siblings live in
    :data:`~repro.core.scheduling.CPU_SCHEDULERS` and are instantiated
    via :func:`~repro.core.scheduling.make_cpu_scheduler` (the kernel's
    ``scheduler`` argument, not a service kwarg).
    """
    kw = dict(kw)  # never mutate the caller's kwargs
    if policy == "merged":
        return MergedResidentService(registry, **kw)
    if policy == "software":
        return SoftwareOnlyService(registry, **kw)
    if policy == "nonpreemptable":
        return NonPreemptableService(registry, **kw)
    if policy == "dynamic":
        if "preemption" in kw:
            kw["preemption"] = make_preemption_policy(kw["preemption"])
        return DynamicLoadingService(registry, **kw)
    if policy == "fixed":
        if "n_partitions" in kw:
            n = kw.pop("n_partitions")
            return FixedPartitionService.equal(registry, n, **kw)
        return FixedPartitionService(registry, **kw)
    if policy == "variable":
        return VariablePartitionService(registry, **kw)
    if policy == "overlay":
        return OverlayService(registry, **kw)
    if policy == "paged":
        return PagedVfpgaService(registry, **kw)
    if policy == "segmented":
        return SegmentedVfpgaService(registry, **kw)
    if policy == "multi":
        return MultiDeviceService(registry, **kw)
    raise ValueError(f"unknown policy {policy!r}")


class VirtualFpga:
    """One virtual FPGA over one physical device.

    Parameters
    ----------
    family:
        Catalog device name (see :data:`repro.device.FAMILIES`) or an
        :class:`~repro.device.Architecture` instance.
    """

    def __init__(self, family: Union[str, Architecture] = "VF16") -> None:
        self.arch = get_family(family) if isinstance(family, str) else family
        self.registry = ConfigRegistry(self.arch)
        self.fpga = Fpga(self.arch)
        #: Interactive-mode reconfiguration counter ("the cost you didn't see").
        self.interactive_loads = 0
        self.interactive_load_time = 0.0
        self._views: Dict[str, DeviceView] = {}

    # -- circuit management ------------------------------------------------
    def add_circuit(
        self,
        netlist: Netlist,
        name: Optional[str] = None,
        seed: int = 0,
        effort: str = "sa",
        state_accessible: bool = True,
    ) -> ConfigEntry:
        """Compile ``netlist`` for this device and declare it."""
        return self.registry.compile_and_register(
            netlist, name=name, seed=seed, effort=effort,
            state_accessible=state_accessible,
        )

    @property
    def circuits(self) -> List[str]:
        return self.registry.names()

    # -- interactive (functional) use -----------------------------------------
    def _ensure_loaded(self, name: str) -> DeviceView:
        self.registry.get(name)  # raises UnknownConfigError if missing
        if name in self.fpga.resident:
            view = self._views.get(name)
            if view is not None:
                return view
        else:
            # The virtual view: this circuit sees the whole device, so
            # whatever else is resident silently makes way — the exact
            # multiplexing the paper hides behind the OS.
            for other in list(self.fpga.resident):
                self.fpga.unload(other)
                self._views.pop(other, None)
            bitstream = self.registry.translated(name, (0, 0))
            image, _cache = self.registry.bitcache.frames_for(bitstream)
            timing = self.fpga.load(name, bitstream, image=image)
            self.interactive_loads += 1
            self.interactive_load_time += timing.seconds
        view = self.fpga.view(name)
        self._views[name] = view
        return view

    def evaluate(self, name: str, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Combinational evaluation of circuit ``name`` on the device."""
        return self._ensure_loaded(name).evaluate(inputs)

    def step(self, name: str, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One clock cycle of circuit ``name`` on the device."""
        return self._ensure_loaded(name).step(inputs)

    def read_state(self, name: str) -> Dict[str, int]:
        return self._ensure_loaded(name).read_state()

    def write_state(self, name: str, state: Mapping[str, int]) -> None:
        self._ensure_loaded(name).write_state(state)

    # -- managed (simulated OS) use ----------------------------------------------
    def simulate(
        self,
        tasks: Iterable[Task],
        policy: str = "dynamic",
        scheduler: Optional[Scheduler] = None,
        context_switch: float = 20e-6,
        bus: Optional[EventBus] = None,
        telemetry_steps: bool = False,
        audit: Union[None, str, Auditor] = None,
        audit_deadline: Optional[float] = None,
        op_deadline: Optional[float] = None,
        max_trace_events: Optional[int] = DEFAULT_MAX_TRACE_EVENTS,
        **policy_kw,
    ) -> RunStats:
        """Run ``tasks`` under ``policy`` on a fresh simulated system.

        Returns the :class:`~repro.osim.trace.RunStats`; the service used
        is available afterwards as :attr:`last_service` and the kernel as
        :attr:`last_kernel` for metric inspection.  Pass a telemetry
        ``bus`` (with recorders/exporters already subscribed) to capture
        the run's full event stream; ``telemetry_steps`` additionally
        publishes one event per simulator step.

        Auditing: ``audit`` may be ``"lenient"``/``"strict"`` (an
        :class:`~repro.telemetry.Auditor` is created and subscribed
        before the kernel boots, so boot downloads are audited too) or a
        ready-made auditor to attach; it is available afterwards as
        :attr:`last_auditor` with its end-of-stream checks already run.
        ``audit_deadline`` is the auditor's liveness bound;
        ``op_deadline`` arms the kernel's fail-fast watchdog (a
        :class:`~repro.osim.DeadlockError` at the deadline instant).
        """
        sim = Simulator()
        service = make_service(policy, self.registry, **policy_kw)
        auditor: Optional[Auditor] = None
        if audit is not None:
            if bus is None:
                bus = EventBus()
            if isinstance(audit, Auditor):
                auditor = audit
                if auditor.bus is None:
                    auditor.bus = bus
                    bus.subscribe_all(auditor)
            else:
                auditor = Auditor(bus, mode=audit, deadline=audit_deadline,
                                  clb_capacity=self.arch.n_clbs)
        self.last_auditor = auditor
        kernel = Kernel(
            sim,
            scheduler if scheduler is not None else RoundRobin(),
            service,
            context_switch=context_switch,
            bus=bus,
            telemetry_steps=telemetry_steps,
            max_trace_events=max_trace_events,
            op_deadline=op_deadline,
        )
        kernel.spawn_all(list(tasks))
        # Expose before running so a DeadlockError still leaves the
        # service inspectable (starvation post-mortems need it).
        self.last_service = service
        self.last_kernel = kernel
        try:
            return kernel.run()
        finally:
            if auditor is not None:
                auditor.finish()
