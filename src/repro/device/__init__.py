"""Symmetrical-array FPGA device model.

The physical substrate of the reproduction: CLB array, segmented routing,
IOB ring, frame-organised configuration RAM with a bijective bit codec, a
configuration-port timing model calibrated to the paper's XC4000-era
numbers, and a functional simulator that interprets raw configuration bits.
"""

from .bitstream import Bitstream, BitstreamError
from .bitstream_io import (
    bitstream_from_dict,
    bitstream_to_dict,
    load_bitstream,
    save_bitstream,
)
from .clb import ClbConfig
from .config_ram import ConfigRam, FrameCodec, SwitchKey, digest_bits
from .families import FAMILIES, Architecture, get_family
from .fpga import DeviceView, Fpga
from .funcsim import ConfigurationError, DeviceFunctionalSimulator
from .geometry import Coord, Rect
from .interconnect import (
    SWITCH_PAIRS,
    IobSite,
    Wire,
    all_wires,
    clb_input_candidates,
    clb_output_candidates,
    hlong_wires,
    hwires,
    iob_candidates,
    iob_sites,
    long_switch_stubs,
    long_wires,
    switch_stubs,
    switchboxes_in_region,
    vlong_wires,
    vwires,
    wire_in_region,
    wires_in_region,
)
from .iob import IobConfig, IobDirection
from .timing_model import ConfigPort, ConfigTimingBreakdown

__all__ = [
    "FAMILIES",
    "SWITCH_PAIRS",
    "Architecture",
    "Bitstream",
    "BitstreamError",
    "ClbConfig",
    "ConfigPort",
    "ConfigRam",
    "ConfigTimingBreakdown",
    "ConfigurationError",
    "Coord",
    "DeviceFunctionalSimulator",
    "DeviceView",
    "Fpga",
    "FrameCodec",
    "IobConfig",
    "IobDirection",
    "IobSite",
    "Rect",
    "SwitchKey",
    "Wire",
    "all_wires",
    "bitstream_from_dict",
    "bitstream_to_dict",
    "clb_input_candidates",
    "clb_output_candidates",
    "digest_bits",
    "get_family",
    "hlong_wires",
    "hwires",
    "load_bitstream",
    "long_switch_stubs",
    "long_wires",
    "iob_candidates",
    "iob_sites",
    "save_bitstream",
    "switch_stubs",
    "switchboxes_in_region",
    "vlong_wires",
    "vwires",
    "wire_in_region",
    "wires_in_region",
]
