"""Compiled configuration artifacts.

A :class:`Bitstream` is what the CAD flow produces and the VFPGA manager
loads: the structured per-tile configuration of one circuit, its footprint
region, its I/O binding, its state-bit locations (for the paper's §3
save/restore) and its timing summary.

Two flavours exist:

* **dedicated** — compiled for the whole device, primary I/O bound to
  physical IOB pads.  Not relocatable.
* **relocatable** — compiled into a region anchored anywhere, primary I/O
  bound to *virtual pins* (designated boundary wires).  ``translated()``
  produces the identical circuit at another anchor — the paper's §4
  "relocatable circuit to be loaded virtually in any location".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Set, Tuple

from .clb import ClbConfig
from .config_ram import SwitchKey
from .families import Architecture
from .geometry import Coord, Rect
from .interconnect import IobSite, Wire, wire_in_region
from .iob import IobConfig

__all__ = ["Bitstream", "BitstreamError"]


class BitstreamError(Exception):
    """Ill-formed or illegally used bitstream."""


@dataclass(frozen=True)
class Bitstream:
    """One compiled circuit configuration.

    Attributes
    ----------
    name:
        Circuit name (from the source netlist).
    arch_name:
        Device family the bitstream targets (loading elsewhere is an error).
    region:
        CLB footprint.  For dedicated bitstreams this is the full array.
    clbs / switches / iobs:
        Structured tile configurations (absolute coordinates).
    relocatable:
        Whether :meth:`translated` is legal.
    state_bits:
        DFF name → CLB coordinate holding it; drives frame-accurate
        readback cost and the save/restore machinery.
    virtual_inputs / virtual_outputs:
        For relocatable bitstreams: primary-port name → boundary wire used
        as the virtual pin.
    pad_inputs / pad_outputs:
        For dedicated bitstreams: primary-port name → IOB site.
    critical_path:
        Post-route critical path delay in seconds (combinational depth or
        register-to-register, whichever dominates).
    """

    name: str
    arch_name: str
    region: Rect
    clbs: Dict[Coord, ClbConfig] = field(default_factory=dict)
    switches: Dict[Coord, FrozenSet[SwitchKey]] = field(default_factory=dict)
    iobs: Dict[IobSite, IobConfig] = field(default_factory=dict)
    relocatable: bool = False
    state_bits: Dict[str, Coord] = field(default_factory=dict)
    virtual_inputs: Dict[str, Wire] = field(default_factory=dict)
    virtual_outputs: Dict[str, Wire] = field(default_factory=dict)
    pad_inputs: Dict[str, IobSite] = field(default_factory=dict)
    pad_outputs: Dict[str, IobSite] = field(default_factory=dict)
    critical_path: float = 0.0

    # -- structural checks ---------------------------------------------------
    def validate(self, arch: Architecture) -> None:
        """Consistency of footprint, ownership and field widths."""
        if arch.name != self.arch_name:
            raise BitstreamError(
                f"bitstream {self.name!r} targets {self.arch_name}, not {arch.name}"
            )
        if not arch.full_rect.contains_rect(self.region):
            raise BitstreamError(f"region {self.region} outside {arch.name}")
        for coord, cfg in self.clbs.items():
            if not self.region.contains(coord):
                raise BitstreamError(f"CLB {coord} outside region {self.region}")
            cfg.validate(arch)
        for (x, y), enabled in self.switches.items():
            if self.relocatable:
                # Owned switch boxes only — the translation-safe set.
                if not (self.region.x <= x < self.region.x2
                        and self.region.y <= y < self.region.y2):
                    raise BitstreamError(f"switch box ({x},{y}) outside owned area")
                if any(s >= 6 for _t, s in enabled):
                    raise BitstreamError(
                        f"switch box ({x},{y}): relocatable bitstreams "
                        "cannot tap device-global long lines"
                    )
            elif not (0 <= x <= arch.width and 0 <= y <= arch.height):
                raise BitstreamError(f"switch box ({x},{y}) outside device")
        if self.relocatable:
            if self.iobs or self.pad_inputs or self.pad_outputs:
                raise BitstreamError("relocatable bitstream cannot bind IOBs")
            for port, wire in {**self.virtual_inputs, **self.virtual_outputs}.items():
                if not wire_in_region(wire, self.region):
                    raise BitstreamError(
                        f"virtual pin {port!r} on unowned wire {wire}"
                    )
        for name, coord in self.state_bits.items():
            if coord not in self.clbs or not self.clbs[coord].ff_enable:
                raise BitstreamError(f"state bit {name!r} points at non-FF CLB {coord}")

    # -- derived ---------------------------------------------------------------
    @property
    def n_state_bits(self) -> int:
        return len(self.state_bits)

    def frames_touched(self, arch: Architecture) -> Set[int]:
        """Configuration frames this bitstream writes.

        By the ownership rule every owned resource of the region lives in
        the region's own CLB-column frames, and the *whole* region is the
        allocation unit — every region column is (re)written on load so no
        stale bits survive, exactly like frame-addressed hardware.
        Dedicated bitstreams also touch the final (IOB) frame.
        """
        frames: Set[int] = set(self.region.columns())
        if self.iobs:
            frames.add(arch.width)
        return frames

    def state_frames(self, arch: Architecture) -> Set[int]:
        """Frames containing flip-flops — what readback must touch."""
        return {coord.x for coord in self.state_bits.values()}

    # -- relocation ---------------------------------------------------------------
    def translated(self, dx: int, dy: int) -> "Bitstream":
        """The same circuit anchored at ``region.translated(dx, dy)``.

        Pure coordinate translation: legal because the fabric is
        homogeneous and a region owns only resources that exist at every
        anchor inside the device (validated at load time).
        """
        if not self.relocatable:
            raise BitstreamError(f"bitstream {self.name!r} is not relocatable")
        if dx == 0 and dy == 0:
            return self
        return replace(
            self,
            region=self.region.translated(dx, dy),
            clbs={c.translated(dx, dy): cfg for c, cfg in self.clbs.items()},
            switches={
                Coord(x + dx, y + dy): en for (x, y), en in self.switches.items()
            },
            state_bits={
                name: c.translated(dx, dy) for name, c in self.state_bits.items()
            },
            virtual_inputs={
                p: w.translated(dx, dy) for p, w in self.virtual_inputs.items()
            },
            virtual_outputs={
                p: w.translated(dx, dy) for p, w in self.virtual_outputs.items()
            },
        )

    def anchored_at(self, x: int, y: int) -> "Bitstream":
        """Relocate so the region's lower-left corner sits at ``(x, y)``."""
        return self.translated(x - self.region.x, y - self.region.y)

    # -- introspection ---------------------------------------------------------------
    @property
    def used_clbs(self) -> int:
        return sum(1 for cfg in self.clbs.values() if cfg.is_used)

    def ports(self) -> Tuple[List[str], List[str]]:
        """(input port names, output port names), deterministic order."""
        if self.relocatable:
            return sorted(self.virtual_inputs), sorted(self.virtual_outputs)
        return sorted(self.pad_inputs), sorted(self.pad_outputs)

    def __str__(self) -> str:
        flavour = "relocatable" if self.relocatable else "dedicated"
        return (
            f"Bitstream({self.name!r}, {flavour}, region={self.region}, "
            f"{self.used_clbs} CLBs, {self.n_state_bits} state bits)"
        )
