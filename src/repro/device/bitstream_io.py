"""Bitstream serialization (JSON-compatible dictionaries).

A compiled configuration is the artifact a VFPGA deployment distributes;
round-tripping it through JSON makes bitstreams storable, diffable and
shippable without re-running the CAD flow.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .bitstream import Bitstream
from .clb import ClbConfig
from .geometry import Coord, Rect
from .interconnect import IobSite, Wire
from .iob import IobConfig, IobDirection

__all__ = [
    "bitstream_to_dict",
    "bitstream_from_dict",
    "save_bitstream",
    "load_bitstream",
]

_FORMAT = "repro-bitstream-v1"


def _wire(w: Wire) -> list:
    return [w.kind, w.x, w.y, w.t]


def _site(s: IobSite) -> list:
    return [s.side, s.pos, s.j]


def bitstream_to_dict(bs: Bitstream) -> Dict[str, Any]:
    return {
        "format": _FORMAT,
        "name": bs.name,
        "arch": bs.arch_name,
        "region": [bs.region.x, bs.region.y, bs.region.w, bs.region.h],
        "relocatable": bs.relocatable,
        "critical_path": bs.critical_path,
        "clbs": [
            {
                "at": [c.x, c.y],
                "truth": cfg.lut_truth,
                "ff": int(cfg.ff_enable),
                "init": cfg.ff_init,
                "reg": int(cfg.out_registered),
                "in": list(cfg.input_sel),
                "out": sorted(cfg.out_drives),
            }
            for c, cfg in sorted(bs.clbs.items())
        ],
        "switches": [
            {"at": [x, y], "keys": sorted(map(list, keys))}
            for (x, y), keys in sorted(bs.switches.items())
        ],
        "iobs": [
            {
                "at": _site(site),
                "enable": int(cfg.enable),
                "dir": cfg.direction.value,
                "track": cfg.track_sel,
            }
            for site, cfg in sorted(bs.iobs.items())
        ],
        "state_bits": {
            name: [c.x, c.y] for name, c in sorted(bs.state_bits.items())
        },
        "virtual_inputs": {p: _wire(w) for p, w in sorted(bs.virtual_inputs.items())},
        "virtual_outputs": {p: _wire(w) for p, w in sorted(bs.virtual_outputs.items())},
        "pad_inputs": {p: _site(s) for p, s in sorted(bs.pad_inputs.items())},
        "pad_outputs": {p: _site(s) for p, s in sorted(bs.pad_outputs.items())},
    }


def bitstream_from_dict(data: Dict[str, Any]) -> Bitstream:
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document: {data.get('format')!r}")
    return Bitstream(
        name=data["name"],
        arch_name=data["arch"],
        region=Rect(*data["region"]),
        relocatable=data["relocatable"],
        critical_path=data["critical_path"],
        clbs={
            Coord(*e["at"]): ClbConfig(
                lut_truth=e["truth"],
                ff_enable=bool(e["ff"]),
                ff_init=e["init"],
                out_registered=bool(e["reg"]),
                input_sel=tuple(e["in"]),
                out_drives=frozenset(e["out"]),
            )
            for e in data["clbs"]
        },
        switches={
            Coord(*e["at"]): frozenset(tuple(k) for k in e["keys"])
            for e in data["switches"]
        },
        iobs={
            IobSite(*e["at"]): IobConfig(
                enable=bool(e["enable"]),
                direction=IobDirection(e["dir"]),
                track_sel=e["track"],
            )
            for e in data["iobs"]
        },
        state_bits={
            name: Coord(*at) for name, at in data["state_bits"].items()
        },
        virtual_inputs={
            p: Wire(*w) for p, w in data["virtual_inputs"].items()
        },
        virtual_outputs={
            p: Wire(*w) for p, w in data["virtual_outputs"].items()
        },
        pad_inputs={p: IobSite(*s) for p, s in data["pad_inputs"].items()},
        pad_outputs={p: IobSite(*s) for p, s in data["pad_outputs"].items()},
    )


def save_bitstream(bs: Bitstream, path) -> None:
    with open(path, "w") as fh:
        json.dump(bitstream_to_dict(bs), fh, indent=1)


def load_bitstream(path) -> Bitstream:
    with open(path) as fh:
        return bitstream_from_dict(json.load(fh))
