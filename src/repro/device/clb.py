"""Configurable logic block (CLB) configuration state.

One CLB is a basic logic element (BLE): a K-input LUT feeding an optional
D flip-flop, with an output multiplexer selecting the combinational or the
registered value.  The input pins tap adjacent channel wires through the
connection box; the output can drive any subset of the adjacent wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from .families import Architecture

__all__ = ["ClbConfig", "EMPTY_CLB"]


@dataclass(frozen=True)
class ClbConfig:
    """Configuration of one CLB.

    Attributes
    ----------
    lut_truth:
        Truth table over the K inputs; bit *i* is the output for input
        pattern *i* (pin 0 = LSB).  Open pins read as 0.
    ff_enable:
        Whether the flip-flop is used (if False the FF holds 0 and the
        output must be combinational).
    ff_init:
        Flip-flop power-up / reset value.
    out_registered:
        Output multiplexer: True → FF output, False → LUT output.
    input_sel:
        Per-pin selector: 0 = open, ``i+1`` = i-th candidate wire of
        :func:`repro.device.interconnect.clb_input_candidates`.
    out_drives:
        Indices of candidate wires driven by the CLB output (bitmask
        semantics; empty = output unused).
    """

    lut_truth: int = 0
    ff_enable: bool = False
    ff_init: int = 0
    out_registered: bool = False
    input_sel: Tuple[int, ...] = ()
    out_drives: FrozenSet[int] = field(default_factory=frozenset)

    def validate(self, arch: Architecture) -> None:
        """Check the config against the architecture's field widths."""
        if not 0 <= self.lut_truth < (1 << (1 << arch.k)):
            raise ValueError(f"LUT truth {self.lut_truth:#x} too wide for k={arch.k}")
        if len(self.input_sel) != arch.k:
            raise ValueError(
                f"input_sel has {len(self.input_sel)} entries, expected {arch.k}"
            )
        n_candidates = 4 * arch.channel_width
        for i, sel in enumerate(self.input_sel):
            if not 0 <= sel <= n_candidates:
                raise ValueError(f"input {i} selector {sel} out of range")
        for idx in self.out_drives:
            if not 0 <= idx < n_candidates:
                raise ValueError(f"output drive index {idx} out of range")
        if self.ff_init not in (0, 1):
            raise ValueError(f"ff_init must be 0/1, got {self.ff_init}")
        if self.out_registered and not self.ff_enable:
            raise ValueError("registered output requires ff_enable")

    @property
    def is_used(self) -> bool:
        """True if the CLB contributes logic or drives anything."""
        return bool(self.out_drives) or self.ff_enable or self.lut_truth != 0

    @staticmethod
    def empty(arch: Architecture) -> "ClbConfig":
        return ClbConfig(input_sel=(0,) * arch.k)


#: Convenience constant for documentation/tests (k must match the arch).
EMPTY_CLB = ClbConfig(input_sel=(0, 0, 0, 0))
