"""Frame-organised configuration RAM and its bit-level codec.

The configuration memory is a 2-D bit array: ``n_frames`` frames of
``frame_bits`` bits each (all frames padded to the worst-case length, as in
real devices).  Frame *x* for ``x < width`` holds CLB column *x* plus
switch-box column *x*; the final frame holds switch-box column ``width``
and every IOB's configuration.

The codec is *bijective*: :class:`FrameCodec` encodes structured tile
configurations into bits and decodes bits back into structures.  The
functional device simulator works exclusively from decoded bits, so a
bitstream is only "correct" if its raw bits are — there is no side channel
from the CAD flow into device simulation.

Field layouts (all little-endian within a field):

* CLB: ``lut_truth[2^k] | ff_enable | ff_init | out_registered |
  input_sel[k * input_sel_bits] | out_drives[4*channel_width]``
* switch box: bit ``t*6 + s`` enables switch ``s`` (see
  :data:`repro.device.interconnect.SWITCH_PAIRS`) on track ``t``; after the
  ``6*channel_width`` regular bits, two bits per long index ``l`` enable
  the long-line taps: key ``(l, 6)`` = H-long↔H-right, ``(l, 7)`` =
  V-long↔V-above
* IOB: ``enable | direction | track_sel[iob_sel_bits]``
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from .clb import ClbConfig
from .families import Architecture
from .geometry import Coord
from .interconnect import IobSite, iob_sites
from .iob import IobConfig, IobDirection

__all__ = ["ConfigRam", "FrameCodec", "SwitchKey"]

#: An enabled switch: (track, pair-index into SWITCH_PAIRS).
SwitchKey = Tuple[int, int]


def _int_to_bits(value: int, n: int) -> np.ndarray:
    if value < 0 or (n < value.bit_length()):
        raise ValueError(f"value {value} does not fit in {n} bits")
    return np.array([(value >> i) & 1 for i in range(n)], dtype=np.uint8)


def _bits_to_int(bits: np.ndarray) -> int:
    value = 0
    for i, b in enumerate(bits):
        value |= int(b) << i
    return value


class ConfigRam:
    """The device's static configuration memory.

    Tracks write statistics so the timing model can charge exactly what was
    touched.
    """

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self.frames = np.zeros((arch.n_frames, arch.frame_bits), dtype=np.uint8)
        self.frame_writes = 0
        self.bits_written = 0
        #: Optional hook ``fn(frame_index)`` invoked after every frame
        #: write (telemetry tap for write-traffic studies; ``None`` = off).
        self.on_write = None

    def write_frame(self, index: int, bits: np.ndarray) -> None:
        if not 0 <= index < self.arch.n_frames:
            raise IndexError(f"frame {index} out of range")
        if bits.shape != (self.arch.frame_bits,):
            raise ValueError(
                f"frame bits shape {bits.shape} != ({self.arch.frame_bits},)"
            )
        self.frames[index] = bits
        self.frame_writes += 1
        self.bits_written += self.arch.frame_bits
        if self.on_write is not None:
            self.on_write(index)

    def read_frame(self, index: int) -> np.ndarray:
        if not 0 <= index < self.arch.n_frames:
            raise IndexError(f"frame {index} out of range")
        return self.frames[index].copy()

    def clear(self) -> None:
        self.frames[:] = 0


class FrameCodec:
    """Encode/decode structured configurations ↔ frame bits."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._iob_order: List[IobSite] = iob_sites(arch)
        self._iob_index = {site: i for i, site in enumerate(self._iob_order)}

    # -- field encoders ------------------------------------------------------
    def encode_clb(self, cfg: ClbConfig) -> np.ndarray:
        arch = self.arch
        cfg.validate(arch)
        parts = [
            _int_to_bits(cfg.lut_truth, 1 << arch.k),
            np.array(
                [int(cfg.ff_enable), cfg.ff_init, int(cfg.out_registered)],
                dtype=np.uint8,
            ),
        ]
        for sel in cfg.input_sel:
            parts.append(_int_to_bits(sel, arch.input_sel_bits))
        mask = np.zeros(4 * arch.channel_width, dtype=np.uint8)
        for idx in cfg.out_drives:
            mask[idx] = 1
        parts.append(mask)
        bits = np.concatenate(parts)
        assert bits.size == arch.clb_config_bits
        return bits

    def decode_clb(self, bits: np.ndarray) -> ClbConfig:
        arch = self.arch
        if bits.size != arch.clb_config_bits:
            raise ValueError("wrong CLB field width")
        pos = 0
        truth = _bits_to_int(bits[pos : pos + (1 << arch.k)])
        pos += 1 << arch.k
        ff_enable, ff_init, out_reg = (int(b) for b in bits[pos : pos + 3])
        pos += 3
        sels = []
        for _ in range(arch.k):
            sels.append(_bits_to_int(bits[pos : pos + arch.input_sel_bits]))
            pos += arch.input_sel_bits
        drives = frozenset(
            int(i) for i in np.nonzero(bits[pos : pos + 4 * arch.channel_width])[0]
        )
        return ClbConfig(
            lut_truth=truth,
            ff_enable=bool(ff_enable),
            ff_init=ff_init,
            out_registered=bool(out_reg),
            input_sel=tuple(sels),
            out_drives=drives,
        )

    def encode_switchbox(self, enabled: FrozenSet[SwitchKey]) -> np.ndarray:
        arch = self.arch
        bits = np.zeros(arch.switchbox_config_bits, dtype=np.uint8)
        long_base = 6 * arch.channel_width
        for t, s in enabled:
            if 0 <= s < 6 and 0 <= t < arch.channel_width:
                bits[t * 6 + s] = 1
            elif s in (6, 7) and 0 <= t < arch.long_per_channel:
                bits[long_base + 2 * t + (s - 6)] = 1
            else:
                raise ValueError(f"bad switch key ({t}, {s})")
        return bits

    def decode_switchbox(self, bits: np.ndarray) -> FrozenSet[SwitchKey]:
        arch = self.arch
        if bits.size != arch.switchbox_config_bits:
            raise ValueError("wrong switch-box field width")
        long_base = 6 * arch.channel_width
        keys = set()
        for i in np.nonzero(bits)[0]:
            i = int(i)
            if i < long_base:
                keys.add((i // 6, i % 6))
            else:
                off = i - long_base
                keys.add((off // 2, 6 + off % 2))
        return frozenset(keys)

    def encode_iob(self, cfg: IobConfig) -> np.ndarray:
        cfg.validate(self.arch)
        head = np.array(
            [int(cfg.enable), int(cfg.direction is IobDirection.OUTPUT)],
            dtype=np.uint8,
        )
        return np.concatenate([head, _int_to_bits(cfg.track_sel, self.arch.iob_sel_bits)])

    def decode_iob(self, bits: np.ndarray) -> IobConfig:
        if bits.size != self.arch.iob_config_bits:
            raise ValueError("wrong IOB field width")
        return IobConfig(
            enable=bool(bits[0]),
            direction=IobDirection.OUTPUT if bits[1] else IobDirection.INPUT,
            track_sel=_bits_to_int(bits[2:]),
        )

    # -- frame layout ----------------------------------------------------------
    def clb_offset(self, y: int) -> int:
        return y * self.arch.clb_config_bits

    def switch_offset_in_clb_frame(self, y: int) -> int:
        return self.arch.clb_column_bits + y * self.arch.switchbox_config_bits

    def switch_offset_in_last_frame(self, y: int) -> int:
        return y * self.arch.switchbox_config_bits

    def iob_offset(self, site: IobSite) -> int:
        return (
            self.arch.switchbox_column_bits
            + self._iob_index[site] * self.arch.iob_config_bits
        )

    # -- whole-device encode/decode ------------------------------------------------
    def build_frames(
        self,
        clbs: Dict[Coord, ClbConfig],
        switches: Dict[Coord, FrozenSet[SwitchKey]],
        iobs: Dict[IobSite, IobConfig],
    ) -> np.ndarray:
        """Encode a full device configuration into an (n_frames, frame_bits)
        array.  Unmentioned tiles stay all-zero (= unconfigured)."""
        arch = self.arch
        frames = np.zeros((arch.n_frames, arch.frame_bits), dtype=np.uint8)
        for coord, cfg in clbs.items():
            if not arch.full_rect.contains(coord):
                raise ValueError(f"CLB {coord} outside device")
            off = self.clb_offset(coord.y)
            frames[coord.x, off : off + arch.clb_config_bits] = self.encode_clb(cfg)
        for coord, enabled in switches.items():
            x, y = coord
            if not (0 <= x <= arch.width and 0 <= y <= arch.height):
                raise ValueError(f"switch box ({x},{y}) outside device")
            bits = self.encode_switchbox(enabled)
            if x < arch.width:
                off = self.switch_offset_in_clb_frame(y)
                frames[x, off : off + arch.switchbox_config_bits] = bits
            else:
                off = self.switch_offset_in_last_frame(y)
                frames[arch.width, off : off + arch.switchbox_config_bits] = bits
        for site, cfg in iobs.items():
            off = self.iob_offset(site)
            frames[arch.width, off : off + arch.iob_config_bits] = self.encode_iob(cfg)
        return frames

    def decode_frames(
        self, frames: np.ndarray
    ) -> Tuple[
        Dict[Coord, ClbConfig],
        Dict[Coord, FrozenSet[SwitchKey]],
        Dict[IobSite, IobConfig],
    ]:
        """Decode a full configuration.  Only *used* tiles are returned
        (all-zero fields are skipped), so the result mirrors build_frames
        input."""
        arch = self.arch
        if frames.shape != (arch.n_frames, arch.frame_bits):
            raise ValueError(f"bad frame array shape {frames.shape}")
        clbs: Dict[Coord, ClbConfig] = {}
        switches: Dict[Coord, FrozenSet[SwitchKey]] = {}
        iobs: Dict[IobSite, IobConfig] = {}
        for x in range(arch.width):
            for y in range(arch.height):
                off = self.clb_offset(y)
                field = frames[x, off : off + arch.clb_config_bits]
                if field.any():
                    clbs[Coord(x, y)] = self.decode_clb(field)
            for y in range(arch.height + 1):
                off = self.switch_offset_in_clb_frame(y)
                field = frames[x, off : off + arch.switchbox_config_bits]
                if field.any():
                    switches[Coord(x, y)] = self.decode_switchbox(field)
        for y in range(arch.height + 1):
            off = self.switch_offset_in_last_frame(y)
            field = frames[arch.width, off : off + arch.switchbox_config_bits]
            if field.any():
                switches[Coord(arch.width, y)] = self.decode_switchbox(field)
        for site in self._iob_order:
            off = self.iob_offset(site)
            field = frames[arch.width, off : off + arch.iob_config_bits]
            if field.any():
                iobs[site] = self.decode_iob(field)
        return clbs, switches, iobs
