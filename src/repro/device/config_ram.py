"""Frame-organised configuration RAM and its bit-level codec.

The configuration memory is a 2-D bit array: ``n_frames`` frames of
``frame_bits`` bits each (all frames padded to the worst-case length, as in
real devices).  Frame *x* for ``x < width`` holds CLB column *x* plus
switch-box column *x*; the final frame holds switch-box column ``width``
and every IOB's configuration.

The codec is *bijective*: :class:`FrameCodec` encodes structured tile
configurations into bits and decodes bits back into structures.  The
functional device simulator works exclusively from decoded bits, so a
bitstream is only "correct" if its raw bits are — there is no side channel
from the CAD flow into device simulation.

Field layouts (all little-endian within a field):

* CLB: ``lut_truth[2^k] | ff_enable | ff_init | out_registered |
  input_sel[k * input_sel_bits] | out_drives[4*channel_width]``
* switch box: bit ``t*6 + s`` enables switch ``s`` (see
  :data:`repro.device.interconnect.SWITCH_PAIRS`) on track ``t``; after the
  ``6*channel_width`` regular bits, two bits per long index ``l`` enable
  the long-line taps: key ``(l, 6)`` = H-long↔H-right, ``(l, 7)`` =
  V-long↔V-above
* IOB: ``enable | direction | track_sel[iob_sel_bits]``
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from .clb import ClbConfig
from .families import Architecture
from .geometry import Coord
from .interconnect import IobSite, iob_sites
from .iob import IobConfig, IobDirection

__all__ = ["ConfigRam", "FrameCodec", "SwitchKey", "digest_bits"]

#: An enabled switch: (track, pair-index into SWITCH_PAIRS).
SwitchKey = Tuple[int, int]


def _int_to_bits(value: int, n: int) -> np.ndarray:
    """Little-endian bit expansion via ``np.unpackbits`` (no Python loop)."""
    if value < 0 or (n < value.bit_length()):
        raise ValueError(f"value {value} does not fit in {n} bits")
    raw = value.to_bytes((n + 7) // 8, "little")
    return np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8), bitorder="little"
    )[:n]


def _bits_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`_int_to_bits` via ``np.packbits``."""
    packed = np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def digest_bits(bits: np.ndarray) -> bytes:
    """Content digest of one frame row (packed bits, blake2b-128).

    The shared hashing primitive behind the delta-reconfiguration engine
    (:meth:`ConfigRam.frame_digest`) and the content-addressed bitstream
    cache (:mod:`repro.core.bitcache`).
    """
    packed = np.packbits(np.ascontiguousarray(bits, dtype=np.uint8))
    return hashlib.blake2b(packed.tobytes(), digest_size=16).digest()


class ConfigRam:
    """The device's static configuration memory.

    Tracks write statistics so the timing model can charge exactly what was
    touched, and a lazy per-frame content digest
    (:meth:`frame_digest`) so the delta-reconfiguration engine can diff an
    incoming bitstream against the resident bits without scanning the
    whole array.  All mutation must go through :meth:`write_frame`,
    :meth:`flip_bit` or :meth:`clear` so the digests stay coherent.
    """

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self.frames = np.zeros((arch.n_frames, arch.frame_bits), dtype=np.uint8)
        self.frame_writes = 0
        self.bits_written = 0
        #: Lazily computed per-frame content digests (``None`` = stale).
        self._digests: List[Optional[bytes]] = [None] * arch.n_frames
        #: Optional hook ``fn(frame_index)`` invoked after every frame
        #: write (telemetry tap for write-traffic studies; ``None`` = off).
        self.on_write = None

    def write_frame(
        self, index: int, bits: np.ndarray,
        digest: Optional[bytes] = None,
    ) -> None:
        """Overwrite frame ``index``.  Callers that already hashed ``bits``
        may pass ``digest`` to seed the digest cache."""
        if not 0 <= index < self.arch.n_frames:
            raise IndexError(f"frame {index} out of range")
        if bits.shape != (self.arch.frame_bits,):
            raise ValueError(
                f"frame bits shape {bits.shape} != ({self.arch.frame_bits},)"
            )
        self.frames[index] = bits
        self._digests[index] = digest
        self.frame_writes += 1
        self.bits_written += self.arch.frame_bits
        if self.on_write is not None:
            self.on_write(index)

    def read_frame(self, index: int) -> np.ndarray:
        if not 0 <= index < self.arch.n_frames:
            raise IndexError(f"frame {index} out of range")
        return self.frames[index].copy()

    def frame_digest(self, index: int) -> bytes:
        """Content digest of frame ``index`` (computed lazily, cached
        until the frame is next written)."""
        if not 0 <= index < self.arch.n_frames:
            raise IndexError(f"frame {index} out of range")
        d = self._digests[index]
        if d is None:
            d = digest_bits(self.frames[index])
            self._digests[index] = d
        return d

    def flip_bit(self, frame: int, bit: int) -> None:
        """Invert one configuration bit in place (upset-injection hook).

        Unlike poking ``frames`` directly, this keeps the digest cache
        coherent — essential or a later delta load would diff against a
        stale hash and skip a genuinely different frame.
        """
        if not 0 <= frame < self.arch.n_frames:
            raise IndexError(f"frame {frame} out of range")
        self.frames[frame, bit] ^= 1
        self._digests[frame] = None

    def clear(self) -> None:
        self.frames[:] = 0
        self._digests = [None] * self.arch.n_frames


class FrameCodec:
    """Encode/decode structured configurations ↔ frame bits."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._iob_order: List[IobSite] = iob_sites(arch)
        self._iob_index = {site: i for i, site in enumerate(self._iob_order)}

    # -- field encoders ------------------------------------------------------
    def encode_clb(self, cfg: ClbConfig) -> np.ndarray:
        arch = self.arch
        cfg.validate(arch)
        bits = np.zeros(arch.clb_config_bits, dtype=np.uint8)
        pos = 1 << arch.k
        bits[:pos] = _int_to_bits(cfg.lut_truth, pos)
        bits[pos] = int(cfg.ff_enable)
        bits[pos + 1] = cfg.ff_init
        bits[pos + 2] = int(cfg.out_registered)
        pos += 3
        w = arch.input_sel_bits
        for sel in cfg.input_sel:
            bits[pos : pos + w] = _int_to_bits(sel, w)
            pos += w
        if cfg.out_drives:
            bits[pos + np.fromiter(cfg.out_drives, dtype=np.intp)] = 1
        return bits

    def decode_clb(self, bits: np.ndarray) -> ClbConfig:
        arch = self.arch
        if bits.size != arch.clb_config_bits:
            raise ValueError("wrong CLB field width")
        pos = 0
        truth = _bits_to_int(bits[pos : pos + (1 << arch.k)])
        pos += 1 << arch.k
        ff_enable, ff_init, out_reg = (int(b) for b in bits[pos : pos + 3])
        pos += 3
        sels = []
        for _ in range(arch.k):
            sels.append(_bits_to_int(bits[pos : pos + arch.input_sel_bits]))
            pos += arch.input_sel_bits
        drives = frozenset(
            int(i) for i in np.nonzero(bits[pos : pos + 4 * arch.channel_width])[0]
        )
        return ClbConfig(
            lut_truth=truth,
            ff_enable=bool(ff_enable),
            ff_init=ff_init,
            out_registered=bool(out_reg),
            input_sel=tuple(sels),
            out_drives=drives,
        )

    def encode_switchbox(self, enabled: FrozenSet[SwitchKey]) -> np.ndarray:
        arch = self.arch
        bits = np.zeros(arch.switchbox_config_bits, dtype=np.uint8)
        long_base = 6 * arch.channel_width
        for t, s in enabled:
            if 0 <= s < 6 and 0 <= t < arch.channel_width:
                bits[t * 6 + s] = 1
            elif s in (6, 7) and 0 <= t < arch.long_per_channel:
                bits[long_base + 2 * t + (s - 6)] = 1
            else:
                raise ValueError(f"bad switch key ({t}, {s})")
        return bits

    def decode_switchbox(self, bits: np.ndarray) -> FrozenSet[SwitchKey]:
        arch = self.arch
        if bits.size != arch.switchbox_config_bits:
            raise ValueError("wrong switch-box field width")
        long_base = 6 * arch.channel_width
        keys = set()
        for i in np.nonzero(bits)[0]:
            i = int(i)
            if i < long_base:
                keys.add((i // 6, i % 6))
            else:
                off = i - long_base
                keys.add((off // 2, 6 + off % 2))
        return frozenset(keys)

    def encode_iob(self, cfg: IobConfig) -> np.ndarray:
        cfg.validate(self.arch)
        bits = np.zeros(self.arch.iob_config_bits, dtype=np.uint8)
        bits[0] = int(cfg.enable)
        bits[1] = int(cfg.direction is IobDirection.OUTPUT)
        bits[2:] = _int_to_bits(cfg.track_sel, self.arch.iob_sel_bits)
        return bits

    def decode_iob(self, bits: np.ndarray) -> IobConfig:
        if bits.size != self.arch.iob_config_bits:
            raise ValueError("wrong IOB field width")
        return IobConfig(
            enable=bool(bits[0]),
            direction=IobDirection.OUTPUT if bits[1] else IobDirection.INPUT,
            track_sel=_bits_to_int(bits[2:]),
        )

    # -- frame layout ----------------------------------------------------------
    def clb_offset(self, y: int) -> int:
        return y * self.arch.clb_config_bits

    def switch_offset_in_clb_frame(self, y: int) -> int:
        return self.arch.clb_column_bits + y * self.arch.switchbox_config_bits

    def switch_offset_in_last_frame(self, y: int) -> int:
        return y * self.arch.switchbox_config_bits

    def iob_offset(self, site: IobSite) -> int:
        return (
            self.arch.switchbox_column_bits
            + self._iob_index[site] * self.arch.iob_config_bits
        )

    # -- whole-device encode/decode ------------------------------------------------
    def build_frames(
        self,
        clbs: Dict[Coord, ClbConfig],
        switches: Dict[Coord, FrozenSet[SwitchKey]],
        iobs: Dict[IobSite, IobConfig],
    ) -> np.ndarray:
        """Encode a full device configuration into an (n_frames, frame_bits)
        array.  Unmentioned tiles stay all-zero (= unconfigured)."""
        arch = self.arch
        frames = np.zeros((arch.n_frames, arch.frame_bits), dtype=np.uint8)
        for coord, cfg in clbs.items():
            if not arch.full_rect.contains(coord):
                raise ValueError(f"CLB {coord} outside device")
            off = self.clb_offset(coord.y)
            frames[coord.x, off : off + arch.clb_config_bits] = self.encode_clb(cfg)
        for coord, enabled in switches.items():
            x, y = coord
            if not (0 <= x <= arch.width and 0 <= y <= arch.height):
                raise ValueError(f"switch box ({x},{y}) outside device")
            bits = self.encode_switchbox(enabled)
            if x < arch.width:
                off = self.switch_offset_in_clb_frame(y)
                frames[x, off : off + arch.switchbox_config_bits] = bits
            else:
                off = self.switch_offset_in_last_frame(y)
                frames[arch.width, off : off + arch.switchbox_config_bits] = bits
        for site, cfg in iobs.items():
            off = self.iob_offset(site)
            frames[arch.width, off : off + arch.iob_config_bits] = self.encode_iob(cfg)
        return frames

    def decode_frames(
        self, frames: np.ndarray
    ) -> Tuple[
        Dict[Coord, ClbConfig],
        Dict[Coord, FrozenSet[SwitchKey]],
        Dict[IobSite, IobConfig],
    ]:
        """Decode a full configuration.  Only *used* tiles are returned
        (all-zero fields are skipped), so the result mirrors build_frames
        input."""
        arch = self.arch
        if frames.shape != (arch.n_frames, arch.frame_bits):
            raise ValueError(f"bad frame array shape {frames.shape}")
        clbs: Dict[Coord, ClbConfig] = {}
        switches: Dict[Coord, FrozenSet[SwitchKey]] = {}
        iobs: Dict[IobSite, IobConfig] = {}
        for x in range(arch.width):
            for y in range(arch.height):
                off = self.clb_offset(y)
                field = frames[x, off : off + arch.clb_config_bits]
                if field.any():
                    clbs[Coord(x, y)] = self.decode_clb(field)
            for y in range(arch.height + 1):
                off = self.switch_offset_in_clb_frame(y)
                field = frames[x, off : off + arch.switchbox_config_bits]
                if field.any():
                    switches[Coord(x, y)] = self.decode_switchbox(field)
        for y in range(arch.height + 1):
            off = self.switch_offset_in_last_frame(y)
            field = frames[arch.width, off : off + arch.switchbox_config_bits]
            if field.any():
                switches[Coord(arch.width, y)] = self.decode_switchbox(field)
        for site in self._iob_order:
            off = self.iob_offset(site)
            field = frames[arch.width, off : off + arch.iob_config_bits]
            if field.any():
                iobs[site] = self.decode_iob(field)
        return clbs, switches, iobs
