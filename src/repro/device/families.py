"""Architecture parameters and the device family catalog.

:class:`Architecture` captures everything about a symmetrical-array FPGA
that the CAD flow, the configuration codec and the VFPGA manager need:
array geometry, LUT size, routing channel width, I/O pad count, unit delays
and configuration-port characteristics.

The catalog (:data:`FAMILIES`) is sized after the mid-90s Xilinx XC4000
series the paper discusses: the paper's statement that a full serial
configuration takes "no more than 200 ms" (§2) calibrates the default
serial rate, and the pin/gate limits in §1 calibrate the geometry range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

from .geometry import Rect

__all__ = ["Architecture", "FAMILIES", "get_family"]


@dataclass(frozen=True)
class Architecture:
    """All parameters of one device model.

    Geometry
    --------
    width, height:
        CLB array dimensions.
    k:
        LUT input count per CLB.
    channel_width:
        Wires per routing channel (single-length segments).
    io_per_edge:
        Bonded IOBs per perimeter CLB position; total pins =
        ``io_per_edge * (2*width + 2*height)``.

    Timing (seconds)
    ----------------
    lut_delay, wire_delay, switch_delay, clock_to_q, setup:
        Unit delays used by static timing analysis.

    Configuration port
    ------------------
    serial_rate:
        Full-configuration serial download rate, bits/second.
    supports_partial:
        Whether the device can write individual frames (paper §2 notes only
        some families can; this is experiment E12's ablation knob).
    frame_overhead:
        Fixed addressing/setup cost per partial frame write, seconds.
    delta_addr_bits:
        Extra bits serialised per frame in a delta (frame-diff) write: the
        explicit frame address + write-command header that a sequential
        partial reload amortises away.  This is what makes delta loads
        *lose* once nearly every frame changed — the fallback condition is
        ``changed * (frame_bits + delta_addr_bits) >= touched * frame_bits``.
    readback_rate:
        State readback (observe) and state write (control) rate, bits/s.
    """

    name: str
    width: int
    height: int
    k: int = 4
    channel_width: int = 8
    io_per_edge: int = 2
    #: Long-distance lines per channel (paper §2: "long-distance
    #: interconnection busses are available to reduce the propagation time
    #: in large devices").  Each spans its whole row/column and taps the
    #: same-index track at every switch box.  0 disables them.
    long_per_channel: int = 2
    # -- timing
    lut_delay: float = 2.0e-9
    wire_delay: float = 0.8e-9
    switch_delay: float = 0.5e-9
    #: One hop on a long line (higher RC than a segment, but crosses the
    #: whole device in a single hop).
    long_wire_delay: float = 2.4e-9
    clock_to_q: float = 1.5e-9
    setup: float = 0.5e-9
    # -- configuration port
    serial_rate: float = 1.0e6
    supports_partial: bool = True
    frame_overhead: float = 5.0e-6
    delta_addr_bits: int = 32
    readback_rate: float = 1.0e6

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("array must be at least 2x2")
        if not 2 <= self.k <= 6:
            raise ValueError(f"k={self.k} outside supported range [2, 6]")
        if self.channel_width < 2:
            raise ValueError("channel_width must be >= 2")
        if self.io_per_edge < 1:
            raise ValueError("io_per_edge must be >= 1")
        if not 0 <= self.long_per_channel <= self.channel_width:
            raise ValueError(
                "long_per_channel must be in [0, channel_width] (long line "
                "l taps regular track l at every switch box)"
            )
        if self.delta_addr_bits < 0:
            raise ValueError("delta_addr_bits must be >= 0")

    # -- derived geometry ----------------------------------------------------
    @property
    def n_clbs(self) -> int:
        return self.width * self.height

    @property
    def n_pins(self) -> int:
        """Physical pin count — the paper's first physical barrier."""
        return self.io_per_edge * (2 * self.width + 2 * self.height)

    @property
    def full_rect(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    #: Equivalent-gate marketing factor (gates per CLB) used only for the
    #: cost axis of experiment E10, calibrated so a 32x32 device lands in
    #: the paper's "up to 250 K gates" era at the top of the range.
    GATES_PER_CLB = 24

    @property
    def equivalent_gates(self) -> int:
        return self.n_clbs * self.GATES_PER_CLB

    # -- configuration bit layout ---------------------------------------------
    @property
    def input_sel_bits(self) -> int:
        """Bits for one CLB input-pin selector: 4*cw candidates + 'open'."""
        return math.ceil(math.log2(4 * self.channel_width + 1))

    @property
    def iob_sel_bits(self) -> int:
        """Bits for one IOB track selector: cw candidates + 'open'."""
        return math.ceil(math.log2(self.channel_width + 1))

    @property
    def clb_config_bits(self) -> int:
        """LUT truth + ff_enable + ff_init + out_registered + input
        selectors + output drive mask."""
        return (
            (1 << self.k)            # LUT truth table
            + 3                      # ff_enable, ff_init, out_registered
            + self.k * self.input_sel_bits
            + 4 * self.channel_width  # output drive mask, one bit per wire
        )

    @property
    def switchbox_config_bits(self) -> int:
        """6 programmable pass switches per track, plus 2 long-line taps
        per long index (H-long↔H-right and V-long↔V-above)."""
        return 6 * self.channel_width + 2 * self.long_per_channel

    @property
    def iob_config_bits(self) -> int:
        """enable + direction + track selector."""
        return 2 + self.iob_sel_bits

    @property
    def n_frames(self) -> int:
        """Frames 0..width-1 hold CLB columns (plus their switchbox
        column); frame ``width`` holds the last switchbox column and all
        IOB configuration."""
        return self.width + 1

    @property
    def clb_column_bits(self) -> int:
        return self.height * self.clb_config_bits

    @property
    def switchbox_column_bits(self) -> int:
        return (self.height + 1) * self.switchbox_config_bits

    @property
    def iob_total_bits(self) -> int:
        return self.n_pins * self.iob_config_bits

    @property
    def frame_bits(self) -> int:
        """All frames share the worst-case length (hardware-style padding)."""
        clb_frame = self.clb_column_bits + self.switchbox_column_bits
        last_frame = self.switchbox_column_bits + self.iob_total_bits
        return max(clb_frame, last_frame)

    @property
    def total_config_bits(self) -> int:
        return self.n_frames * self.frame_bits

    # -- derived timing ------------------------------------------------------------
    @property
    def full_config_time(self) -> float:
        """Serial download of the whole configuration RAM (paper §2)."""
        return self.total_config_bits / self.serial_rate

    def scaled(self, **overrides) -> "Architecture":
        """Copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)


def _family(name: str, side: int, **kw) -> Architecture:
    return Architecture(name=name, width=side, height=side, **kw)


#: Catalog of square devices spanning the paper's era, smallest to largest.
FAMILIES: Dict[str, Architecture] = {
    a.name: a
    for a in (
        _family("VF4", 4),
        _family("VF6", 6),
        _family("VF8", 8),
        _family("VF10", 10),
        _family("VF12", 12),
        _family("VF16", 16),
        _family("VF20", 20),
        _family("VF24", 24),
        _family("VF32", 32),
    )
}


def get_family(name: str) -> Architecture:
    """Look up a catalog device by name."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; available: {sorted(FAMILIES)}"
        ) from None
