"""The physical FPGA device: configuration RAM + port + residency.

:class:`Fpga` is the object the VFPGA manager multiplexes.  It is purely
*physical*: it loads/unloads bitstreams by read-modify-writing their frames,
enforces non-overlap of resident regions, counts port traffic, and can
instantiate a :class:`~repro.device.funcsim.DeviceFunctionalSimulator` from
its (decoded) RAM content at any moment.  All *policy* — who gets the
device when — lives in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .bitstream import Bitstream, BitstreamError
from .config_ram import ConfigRam, FrameCodec, digest_bits
from .families import Architecture
from .funcsim import DeviceFunctionalSimulator, Node
from .geometry import Coord, Rect
from .timing_model import ConfigPort, ConfigTimingBreakdown

__all__ = ["Fpga", "DeviceView"]


class Fpga:
    """One physical device instance.

    Attributes
    ----------
    arch:
        The immutable architecture parameters.
    ram:
        The frame-organised configuration memory.
    resident:
        Currently loaded bitstreams, keyed by an instance handle chosen by
        the caller (the VFPGA manager uses task/config identifiers).
    """

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self.ram = ConfigRam(arch)
        self.codec = FrameCodec(arch)
        self.port = ConfigPort(arch)
        self.resident: Dict[str, Bitstream] = {}
        #: Cumulative seconds spent on the configuration port.
        self.port_busy_time = 0.0
        self.n_loads = 0
        self.n_unloads = 0
        #: Optional hook ``fn(op, handle, timing)`` called on every port
        #: operation — the telemetry layer's device-level tap (the service
        #: that owns this device installs it at attach time).
        self.telemetry = None

    # -- masks ---------------------------------------------------------------
    def _region_mask(self, bs: Bitstream) -> np.ndarray:
        """Bit mask of everything ``bs`` owns (whole region, used or not).

        Owned CLB fields and switch-box fields of the region live entirely
        in the region's own column frames; dedicated bitstreams also own
        their IOB fields in the final frame.
        """
        a = self.arch
        mask = np.zeros((a.n_frames, a.frame_bits), dtype=np.uint8)
        if not bs.relocatable:
            # Dedicated bitstreams target the whole device (incl. edge
            # switch boxes and IOBs): they own every configuration bit.
            mask[:] = 1
            return mask
        r = bs.region
        for x in r.columns():
            for y in range(r.y, r.y2):
                off = self.codec.clb_offset(y)
                mask[x, off : off + a.clb_config_bits] = 1
                off = self.codec.switch_offset_in_clb_frame(y)
                mask[x, off : off + a.switchbox_config_bits] = 1
        for site in bs.iobs:
            off = self.codec.iob_offset(site)
            mask[a.width, off : off + a.iob_config_bits] = 1
        return mask

    # -- load / unload ----------------------------------------------------------
    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in ("full", "delta", "auto"):
            raise ValueError(
                f"load mode must be 'full', 'delta' or 'auto', got {mode!r}"
            )

    def _apply_frames(
        self, bitstream: Bitstream, new_bits: np.ndarray, mode: str,
        full_timing: ConfigTimingBreakdown,
    ) -> ConfigTimingBreakdown:
        """Merge ``new_bits`` into the RAM over ``bitstream``'s owned bits.

        ``full`` writes every touched frame and charges ``full_timing``.
        ``delta`` diffs each merged frame against the resident content
        digest and writes/charges only the differing frames (plus the
        per-frame address header).  ``auto`` prices both and falls back to
        the full reload when the delta would cost at least as much —
        ``changed * (frame_bits + delta_addr_bits) >= touched * frame_bits``.
        Either way the post-condition is identical RAM content.
        """
        mask = self._region_mask(bitstream)
        touched = sorted(bitstream.frames_touched(self.arch))
        use_delta = mode != "full" and self.arch.supports_partial
        if not use_delta:
            for fx in touched:
                merged = (self.ram.frames[fx] & ~mask[fx]) | (new_bits[fx] & mask[fx])
                self.ram.write_frame(fx, merged)
            return full_timing
        pending = []
        for fx in touched:
            merged = (self.ram.frames[fx] & ~mask[fx]) | (new_bits[fx] & mask[fx])
            digest = digest_bits(merged)
            if digest != self.ram.frame_digest(fx):
                pending.append((fx, merged, digest))
        timing = self.port.delta_load_time(bitstream, len(pending))
        if mode == "auto" and timing.seconds >= full_timing.seconds:
            for fx in touched:
                merged = (self.ram.frames[fx] & ~mask[fx]) | (new_bits[fx] & mask[fx])
                self.ram.write_frame(fx, merged)
            return full_timing
        for fx, merged, digest in pending:
            self.ram.write_frame(fx, merged, digest=digest)
        return timing

    def load(
        self, handle: str, bitstream: Bitstream, mode: str = "full",
        image: Optional[np.ndarray] = None,
    ) -> ConfigTimingBreakdown:
        """Make ``bitstream`` resident under ``handle``.

        Overlapping an already-resident region is a physical-sanity error:
        the manager must unload the previous occupant first.

        ``mode`` selects the reconfiguration engine: ``full`` writes every
        touched frame, ``delta`` writes only frames whose content differs
        from the resident bits, ``auto`` prices both and picks the cheaper.
        ``image`` optionally supplies the pre-encoded frame array (from the
        content-addressed bitstream cache) so the encode path is skipped.
        """
        self._check_mode(mode)
        bitstream.validate(self.arch)
        if handle in self.resident:
            raise BitstreamError(f"handle {handle!r} already resident")
        for other_handle, other in self.resident.items():
            if other.region.overlaps(bitstream.region):
                raise BitstreamError(
                    f"region {bitstream.region} overlaps resident "
                    f"{other_handle!r} at {other.region}"
                )
        if image is not None:
            new_bits = image
        else:
            new_bits = self.codec.build_frames(
                bitstream.clbs, bitstream.switches, bitstream.iobs
            )
        timing = self._apply_frames(
            bitstream, new_bits, mode, self.port.load_time(bitstream)
        )
        self.resident[handle] = bitstream
        self.port_busy_time += timing.seconds
        self.n_loads += 1
        if self.telemetry is not None:
            self.telemetry("load", handle, timing)
        return timing

    def unload(self, handle: str, mode: str = "full") -> ConfigTimingBreakdown:
        """Clear ``handle``'s owned bits and forget it.

        Under ``delta``/``auto`` only the frames whose owned bits are
        actually non-zero need a write (clearing an already-clear frame is
        a no-op the frame-diff detects for free).
        """
        self._check_mode(mode)
        try:
            bitstream = self.resident.pop(handle)
        except KeyError:
            raise BitstreamError(f"handle {handle!r} is not resident") from None
        zeros = np.zeros(
            (self.arch.n_frames, self.arch.frame_bits), dtype=np.uint8
        )
        timing = self._apply_frames(
            bitstream, zeros, mode, self.port.unload_time(bitstream)
        )
        self.port_busy_time += timing.seconds
        self.n_unloads += 1
        if self.telemetry is not None:
            self.telemetry("unload", handle, timing)
        return timing

    def wipe(self) -> None:
        """Forget all residents and zero the RAM *without* port accounting.

        Used when a full-serial download is about to overwrite the whole
        configuration anyway: the overwrite is charged once by the caller,
        and the previous residents simply cease to exist.
        """
        self.ram.clear()
        self.resident.clear()

    def clear(self) -> ConfigTimingBreakdown:
        """Full wipe (the power-up / reboot path)."""
        self.ram.clear()
        self.resident.clear()
        timing = self.port.full_config()
        self.port_busy_time += timing.seconds
        if self.telemetry is not None:
            self.telemetry("clear", "", timing)
        return timing

    # -- inspection ----------------------------------------------------------------
    def free_area(self) -> int:
        """CLBs not covered by any resident region."""
        return self.arch.n_clbs - sum(
            b.region.area for b in self.resident.values()
        )

    def region_is_free(self, region: Rect) -> bool:
        return all(
            not b.region.overlaps(region) for b in self.resident.values()
        )

    def find_handle_at(self, coord: Coord) -> Optional[str]:
        for handle, b in self.resident.items():
            if b.region.contains(coord):
                return handle
        return None

    # -- integrity ---------------------------------------------------------------
    def scrub(self) -> List[str]:
        """Compare the RAM against every resident bitstream's expected
        bits; returns the handles whose owned bits diverge.

        This is the paper's §5 "periodic system testing and diagnosis"
        primitive: a scrubber task can call it to detect configuration
        upsets (and reload the offenders).  Reading the frames costs
        readback time — the caller charges it via
        ``port.state_save_time``-style accounting if simulating.
        """
        corrupted: List[str] = []
        for handle, bs in self.resident.items():
            expect = self.codec.build_frames(bs.clbs, bs.switches, bs.iobs)
            mask = self._region_mask(bs)
            for fx in sorted(bs.frames_touched(self.arch)):
                got = self.ram.frames[fx] & mask[fx]
                want = expect[fx] & mask[fx]
                if not (got == want).all():
                    corrupted.append(handle)
                    break
        return corrupted

    def scrub_time(self) -> float:
        """Seconds to read back every resident frame once."""
        frames = set()
        for bs in self.resident.values():
            frames |= bs.frames_touched(self.arch)
        a = self.arch
        return len(frames) * (a.frame_overhead + a.frame_bits / a.readback_rate)

    # -- simulation ----------------------------------------------------------------
    def functional_simulator(
        self, external_drivers: List[Node] = ()
    ) -> DeviceFunctionalSimulator:
        """Decode the RAM and build the whole-array simulator.

        ``external_drivers`` lists virtual-pin wires / input pads that will
        be driven from outside during simulation.
        """
        clbs, switches, iobs = self.codec.decode_frames(self.ram.frames)
        return DeviceFunctionalSimulator(
            self.arch, clbs, switches, iobs, external_drivers
        )

    def view(self, handle: str) -> "DeviceView":
        """Port-name-level simulation view of one resident circuit."""
        return DeviceView(self, handle)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Fpga {self.arch.name}: {len(self.resident)} resident, "
            f"{self.free_area()}/{self.arch.n_clbs} CLBs free>"
        )


class DeviceView:
    """Drive and observe one resident circuit by its port names.

    The view simulates the *entire* configured device (one clock domain —
    physically honest), but exposes only the named circuit's primary ports
    and state bits.  Other resident circuits' external inputs are held at 0.
    """

    def __init__(self, fpga: Fpga, handle: str) -> None:
        if handle not in fpga.resident:
            raise BitstreamError(f"handle {handle!r} is not resident")
        self.fpga = fpga
        self.handle = handle
        self.bitstream = fpga.resident[handle]
        drivers: List[Node] = []
        self._in_nodes: Dict[str, Node] = {}
        self._out_nodes: Dict[str, Node] = {}
        bs = self.bitstream
        if bs.relocatable:
            self._in_nodes = dict(bs.virtual_inputs)
            self._out_nodes = dict(bs.virtual_outputs)
        else:
            self._in_nodes = dict(bs.pad_inputs)
            self._out_nodes = dict(bs.pad_outputs)
        drivers.extend(self._in_nodes.values())
        # Other resident circuits' inputs must also be declared as external
        # drivers (held at 0) or their nets would be reported driverless.
        for other_handle, other in fpga.resident.items():
            if other_handle == handle:
                continue
            src = other.virtual_inputs if other.relocatable else other.pad_inputs
            drivers.extend(src.values())
        self.sim = fpga.functional_simulator(external_drivers=drivers)
        self._background = {
            node: 0
            for node in drivers
            if node not in self._in_nodes.values()
        }

    # -- port-level API mirroring repro.netlist.LogicSimulator ----------------
    def _stimulus(self, inputs) -> Dict[Node, int]:
        stim: Dict[Node, int] = dict(self._background)
        for port, node in self._in_nodes.items():
            try:
                stim[node] = inputs[port] & 1
            except KeyError:
                raise KeyError(f"missing stimulus for input {port!r}") from None
        return stim

    def _outputs(self, net_values) -> Dict[str, int]:
        return {
            port: self.sim.observe(node, net_values)
            for port, node in self._out_nodes.items()
        }

    def evaluate(self, inputs) -> Dict[str, int]:
        return self._outputs(self.sim.evaluate(self._stimulus(inputs)))

    def step(self, inputs) -> Dict[str, int]:
        return self._outputs(self.sim.step(self._stimulus(inputs)))

    def read_state(self) -> Dict[str, int]:
        """Named snapshot of this circuit's flip-flops (observability)."""
        raw = self.sim.read_state()
        return {name: raw[coord] for name, coord in self.bitstream.state_bits.items()}

    def write_state(self, state) -> None:
        """Restore a named snapshot (controllability)."""
        self.sim.write_state(
            {self.bitstream.state_bits[name]: v for name, v in state.items()}
        )

    def reset(self) -> None:
        self.sim.reset()
