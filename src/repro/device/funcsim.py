"""Functional simulation of a *configured* device.

This simulator is deliberately built from the **decoded configuration RAM
bits only** — not from any CAD data structure.  It reconstructs electrical
nets from enabled switches, connection-box selectors and IOB taps, checks
electrical legality (single driver per net, no combinational loops, no
switches hanging off the device edge), and then evaluates the array cycle
by cycle.  If the CAD flow or the VFPGA manager corrupts so much as one
frame bit, this is where it shows up — e.g. two partitions shorting a
shared wire raises :class:`ConfigurationError` with both drivers named.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from .clb import ClbConfig
from .config_ram import SwitchKey
from .families import Architecture
from .geometry import Coord
from .interconnect import (
    SWITCH_PAIRS,
    IobSite,
    clb_input_candidates,
    clb_output_candidates,
    iob_candidates,
    long_switch_stubs,
    switch_stubs,
)
from .iob import IobConfig, IobDirection

__all__ = ["DeviceFunctionalSimulator", "ConfigurationError"]

#: A node in the electrical graph: a Wire, an IobSite (pad), or a CLB
#: output ("O", x, y).
Node = Hashable


class ConfigurationError(Exception):
    """The configuration bits describe an electrically illegal circuit."""


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Node, Node] = {}

    def find(self, a: Node) -> Node:
        path = []
        while True:
            p = self.parent.setdefault(a, a)
            if p is a:
                break
            path.append(a)
            a = p
        for n in path:
            self.parent[n] = a
        return a

    def union(self, a: Node, b: Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            self.parent[rb] = ra


class DeviceFunctionalSimulator:
    """Evaluates the whole configured array, one clock domain.

    Parameters
    ----------
    arch:
        Device architecture.
    clbs / switches / iobs:
        Decoded configuration (see
        :meth:`repro.device.config_ram.FrameCodec.decode_frames`).
    external_drivers:
        Extra injection points: wires or pads driven from outside (virtual
        pins of relocatable circuits, input pads).  Values are supplied per
        evaluation via the ``inputs`` mapping keyed by these node objects.
    """

    def __init__(
        self,
        arch: Architecture,
        clbs: Mapping[Coord, ClbConfig],
        switches: Mapping[Coord, FrozenSet[SwitchKey]],
        iobs: Mapping[IobSite, IobConfig],
        external_drivers: Iterable[Node] = (),
    ) -> None:
        self.arch = arch
        self.clbs = dict(clbs)
        self.switches = dict(switches)
        self.iobs = dict(iobs)
        self.external_drivers: List[Node] = list(external_drivers)
        self._build_nets()
        self._check_drivers()
        self._order = self._topo_order()
        self.state: Dict[Coord, int] = {
            c: cfg.ff_init for c, cfg in self.clbs.items() if cfg.ff_enable
        }

    # ------------------------------------------------------------------
    # Electrical graph construction
    # ------------------------------------------------------------------
    def _build_nets(self) -> None:
        uf = _UnionFind()
        arch = self.arch
        # Switch boxes join wire stubs (incl. long-line taps, keys s >= 6).
        for (x, y), enabled in self.switches.items():
            for t, s in enabled:
                if s >= 6:
                    pair = long_switch_stubs(arch, x, y, t)[s - 6]
                    a, b = pair
                else:
                    stubs = switch_stubs(arch, x, y, t)
                    a_idx, b_idx = SWITCH_PAIRS[s]
                    a, b = stubs[a_idx], stubs[b_idx]
                if a is None or b is None:
                    raise ConfigurationError(
                        f"switch box ({x},{y}) track {t} enables switch "
                        f"{s} off the device edge"
                    )
                uf.union(a, b)
        # CLB outputs join the wires they drive; inputs join their taps.
        self._clb_input_net: Dict[Tuple[Coord, int], Node] = {}
        for coord, cfg in self.clbs.items():
            out_node = ("O", coord.x, coord.y)
            out_cands = clb_output_candidates(arch, coord.x, coord.y)
            for idx in cfg.out_drives:
                uf.union(out_node, out_cands[idx])
            in_cands = clb_input_candidates(arch, coord.x, coord.y)
            for pin, sel in enumerate(cfg.input_sel):
                if sel:
                    wire = in_cands[sel - 1]
                    self._clb_input_net[(coord, pin)] = wire
                    uf.find(wire)  # materialise the node
        # IOBs join their selected track.
        for site, cfg in self.iobs.items():
            if cfg.enable and cfg.track_sel:
                uf.union(site, iob_candidates(arch, site)[cfg.track_sel - 1])
        for node in self.external_drivers:
            uf.find(node)
        self._uf = uf

    def _check_drivers(self) -> None:
        """Exactly one driver per net that is read by anything."""
        drivers: Dict[Node, Dict[Node, None]] = {}  # root -> ordered node set
        for coord, cfg in self.clbs.items():
            if cfg.out_drives:
                root = self._uf.find(("O", coord.x, coord.y))
                drivers.setdefault(root, {})[("O", coord.x, coord.y)] = None
        for site, cfg in self.iobs.items():
            if cfg.enable and cfg.direction is IobDirection.INPUT and cfg.track_sel:
                root = self._uf.find(site)
                drivers.setdefault(root, {})[site] = None
        # An externally driven node may coincide with an input pad — that is
        # the same (one) driver, hence the dict-set semantics above.
        for node in self.external_drivers:
            root = self._uf.find(node)
            drivers.setdefault(root, {})[node] = None
        for root, who in drivers.items():
            if len(who) > 1:
                raise ConfigurationError(
                    f"net {root!r} has {len(who)} drivers: {list(who)[:4]}"
                )
        self._net_driver: Dict[Node, Node] = {
            root: next(iter(who)) for root, who in drivers.items()
        }

    def _topo_order(self) -> List[Coord]:
        """CLB evaluation order over combinational dependencies."""
        # reader CLB <- driver CLB when a reader input net is driven by the
        # driver's *combinational* output.
        readers: Dict[Coord, List[Coord]] = {c: [] for c in self.clbs}
        indeg: Dict[Coord, int] = {c: 0 for c in self.clbs}
        for (coord, _pin), wire in self._clb_input_net.items():
            driver = self._net_driver.get(self._uf.find(wire))
            if isinstance(driver, tuple) and driver and driver[0] == "O":
                src = Coord(driver[1], driver[2])
                if not self.clbs[src].out_registered:
                    readers[src].append(coord)
                    indeg[coord] += 1
        ready = deque(c for c, d in sorted(indeg.items()) if d == 0)
        order: List[Coord] = []
        while ready:
            c = ready.popleft()
            order.append(c)
            for r in readers[c]:
                indeg[r] -= 1
                if indeg[r] == 0:
                    ready.append(r)
        if len(order) != len(self.clbs):
            cyclic = sorted(set(self.clbs) - set(order))
            raise ConfigurationError(
                f"combinational loop through CLBs {cyclic[:6]}"
            )
        return order

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _net_values(self, inputs: Mapping[Node, int]) -> Dict[Node, int]:
        """Evaluate every net; external inputs keyed by driver node."""
        net_val: Dict[Node, int] = {}
        for node, value in inputs.items():
            net_val[self._uf.find(node)] = value & 1
        # Registered outputs are state, known before any logic settles —
        # publish them first so readers ordered before their driver see them.
        for coord, cfg in self.clbs.items():
            if cfg.out_registered and cfg.out_drives:
                net_val[self._uf.find(("O", coord.x, coord.y))] = self.state[coord]

        def input_value(coord: Coord, pin: int) -> int:
            wire = self._clb_input_net.get((coord, pin))
            if wire is None:
                return 0  # open pin
            return net_val.get(self._uf.find(wire), 0)  # undriven floats low

        lut_out_map: Dict[Coord, int] = {}
        for coord in self._order:
            cfg = self.clbs[coord]
            index = 0
            for pin in range(self.arch.k):
                index |= input_value(coord, pin) << pin
            lut_out = (cfg.lut_truth >> index) & 1
            lut_out_map[coord] = lut_out
            if cfg.out_drives and not cfg.out_registered:
                net_val[self._uf.find(("O", coord.x, coord.y))] = lut_out
        self._last_lut_out = lut_out_map
        return net_val

    def evaluate(self, inputs: Mapping[Node, int]) -> Dict[Node, int]:
        """Combinational settle; returns net values keyed by canonical
        root.  Use :meth:`observe` to read a specific node."""
        return self._net_values(inputs)

    def observe(self, node: Node, net_values: Mapping[Node, int]) -> int:
        """Value of ``node``'s net after an evaluate/step."""
        return net_values.get(self._uf.find(node), 0)

    def step(self, inputs: Mapping[Node, int]) -> Dict[Node, int]:
        """One clock: settle, then every enabled FF latches its LUT output."""
        net_val = self._net_values(inputs)
        self.state = {
            coord: self._last_lut_out[coord]
            for coord, cfg in self.clbs.items()
            if cfg.ff_enable
        }
        return net_val

    # -- state access (paper §3 observability/controllability) ---------------
    def read_state(self) -> Dict[Coord, int]:
        return dict(self.state)

    def write_state(self, state: Mapping[Coord, int]) -> None:
        unknown = set(state) - set(self.state)
        if unknown:
            raise KeyError(f"no flip-flop at {sorted(unknown)[:4]}")
        for coord, value in state.items():
            self.state[coord] = value & 1

    def reset(self) -> None:
        self.state = {
            c: cfg.ff_init for c, cfg in self.clbs.items() if cfg.ff_enable
        }
