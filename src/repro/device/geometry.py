"""Grid geometry for the symmetrical-array FPGA model.

Coordinates are zero-based: CLB ``(x, y)`` sits in column *x* (0 at the
left), row *y* (0 at the bottom).  A :class:`Rect` describes a rectangular
region of CLBs — the unit of partitioning, relocation and paging in the
VFPGA manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

__all__ = ["Coord", "Rect"]


class Coord(NamedTuple):
    """A CLB location on the array."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Coord":
        return Coord(self.x + dx, self.y + dy)


@dataclass(frozen=True, order=True)
class Rect:
    """A ``w`` × ``h`` rectangle of CLBs whose lower-left corner is
    ``(x, y)``.  Width and height must be positive."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 1 or self.h < 1:
            raise ValueError(f"degenerate rect {self.w}x{self.h}")
        if self.x < 0 or self.y < 0:
            raise ValueError(f"negative origin ({self.x}, {self.y})")

    # -- measures ---------------------------------------------------------
    @property
    def area(self) -> int:
        return self.w * self.h

    @property
    def x2(self) -> int:
        """One past the rightmost column."""
        return self.x + self.w

    @property
    def y2(self) -> int:
        """One past the topmost row."""
        return self.y + self.h

    # -- predicates ---------------------------------------------------------
    def contains(self, c: Coord) -> bool:
        return self.x <= c.x < self.x2 and self.y <= c.y < self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def overlaps(self, other: "Rect") -> bool:
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    # -- construction -----------------------------------------------------------
    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def coords(self) -> Iterator[Coord]:
        """All CLB coordinates, column-major (x outer) for frame locality."""
        for x in range(self.x, self.x2):
            for y in range(self.y, self.y2):
                yield Coord(x, y)

    def split_vertical(self, left_width: int) -> tuple["Rect", "Rect"]:
        """Split into left/right parts; ``left_width`` columns on the left."""
        if not 0 < left_width < self.w:
            raise ValueError(f"cannot split width {self.w} at {left_width}")
        return (
            Rect(self.x, self.y, left_width, self.h),
            Rect(self.x + left_width, self.y, self.w - left_width, self.h),
        )

    def split_horizontal(self, bottom_height: int) -> tuple["Rect", "Rect"]:
        """Split into bottom/top parts; ``bottom_height`` rows at the bottom."""
        if not 0 < bottom_height < self.h:
            raise ValueError(f"cannot split height {self.h} at {bottom_height}")
        return (
            Rect(self.x, self.y, self.w, bottom_height),
            Rect(self.x, self.y + bottom_height, self.w, self.h - bottom_height),
        )

    def columns(self) -> range:
        return range(self.x, self.x2)

    def __str__(self) -> str:
        return f"{self.w}x{self.h}@({self.x},{self.y})"
