"""Routing fabric enumeration: wires, switch boxes, pin candidates.

The fabric is a classic island-style segmented-channel interconnect:

* a horizontal channel runs between every pair of CLB rows (and along the
  top and bottom edges): ``H(x, y, t)`` is the single-length wire in track
  *t* spanning column *x* of horizontal channel *y* (``y`` in ``0..height``);
* vertical channels likewise: ``V(x, y, t)`` with ``x`` in ``0..width``;
* a *disjoint* switch box sits at every channel crossing ``(x, y)`` and can
  connect, per track, any pair of its up-to-four incident wire stubs;
* connection boxes give every CLB pin full access to the four adjacent
  channels (fc = 1.0), and every IOB access to its edge channel span.

This module is pure enumeration — deterministic candidate orderings that
the configuration codec (:mod:`repro.device.config_ram`), the routing
resource graph (:mod:`repro.cad.rrg`) and the functional simulator all
share.  If these orderings disagree anywhere, bitstreams stop being
interpretable, so everything routes through here.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from .families import Architecture
from .geometry import Rect

__all__ = [
    "Wire",
    "IobSite",
    "hwires",
    "vwires",
    "hlong_wires",
    "vlong_wires",
    "long_wires",
    "long_switch_stubs",
    "all_wires",
    "clb_input_candidates",
    "clb_output_candidates",
    "switch_stubs",
    "SWITCH_PAIRS",
    "iob_sites",
    "iob_candidates",
    "wires_in_region",
    "wire_in_region",
    "switchboxes_in_region",
]


class Wire(NamedTuple):
    """One routing wire.  ``kind``:

    * ``"H"`` / ``"V"`` — single-length channel segments (span one tile);
    * ``"HL"`` — long line crossing every column of horizontal channel
      ``y`` on long index ``t`` (``x`` is always 0);
    * ``"VL"`` — long line crossing every row of vertical channel ``x``
      (``y`` is always 0).

    Long lines are device-global: they are never owned by a region, so
    only dedicated (full-device) compilations may use them (paper §2 uses
    them exactly for large single-application circuits).
    """

    kind: str
    x: int
    y: int
    t: int

    def translated(self, dx: int, dy: int) -> "Wire":
        return Wire(self.kind, self.x + dx, self.y + dy, self.t)


class IobSite(NamedTuple):
    """One bonded pad.  ``side`` in NSEW; ``pos`` indexes the perimeter
    position along that side; ``j`` disambiguates multiple pads per
    position."""

    side: str
    pos: int
    j: int


def hwires(arch: Architecture) -> List[Wire]:
    """All horizontal wires, deterministic order (y, x, t)."""
    return [
        Wire("H", x, y, t)
        for y in range(arch.height + 1)
        for x in range(arch.width)
        for t in range(arch.channel_width)
    ]


def vwires(arch: Architecture) -> List[Wire]:
    """All vertical wires, deterministic order (x, y, t)."""
    return [
        Wire("V", x, y, t)
        for x in range(arch.width + 1)
        for y in range(arch.height)
        for t in range(arch.channel_width)
    ]


def hlong_wires(arch: Architecture) -> List[Wire]:
    """Horizontal long lines, order (y, t)."""
    return [
        Wire("HL", 0, y, t)
        for y in range(arch.height + 1)
        for t in range(arch.long_per_channel)
    ]


def vlong_wires(arch: Architecture) -> List[Wire]:
    """Vertical long lines, order (x, t)."""
    return [
        Wire("VL", x, 0, t)
        for x in range(arch.width + 1)
        for t in range(arch.long_per_channel)
    ]


def long_wires(arch: Architecture) -> List[Wire]:
    return hlong_wires(arch) + vlong_wires(arch)


def all_wires(arch: Architecture) -> List[Wire]:
    return hwires(arch) + vwires(arch) + long_wires(arch)


def long_switch_stubs(
    arch: Architecture, x: int, y: int, l: int
) -> Tuple[Tuple[Wire, Optional[Wire]], Tuple[Wire, Optional[Wire]]]:
    """The two long-line taps at switch box ``(x, y)`` for long index
    ``l``: (H-long ↔ H-right stub), (V-long ↔ V-above stub).  The stub is
    None at the far device edge (no wire to tap there)."""
    hr = Wire("H", x, y, l) if x < arch.width else None
    va = Wire("V", x, y, l) if y < arch.height else None
    return (
        (Wire("HL", 0, y, l), hr),
        (Wire("VL", x, 0, l), va),
    )


def clb_input_candidates(arch: Architecture, x: int, y: int) -> List[Wire]:
    """Wires a CLB input pin at ``(x, y)`` may tap, in codec order:
    below, above, left, right channel; tracks ascending.  Selector value 0
    means "open"; value ``i+1`` selects ``candidates[i]``."""
    cw = arch.channel_width
    out: List[Wire] = []
    out += [Wire("H", x, y, t) for t in range(cw)]        # below
    out += [Wire("H", x, y + 1, t) for t in range(cw)]    # above
    out += [Wire("V", x, y, t) for t in range(cw)]        # left
    out += [Wire("V", x + 1, y, t) for t in range(cw)]    # right
    return out


def clb_output_candidates(arch: Architecture, x: int, y: int) -> List[Wire]:
    """Wires the CLB output at ``(x, y)`` may drive — same list and order
    as the input candidates; the output config is a bitmask over it."""
    return clb_input_candidates(arch, x, y)


def switch_stubs(
    arch: Architecture, x: int, y: int, t: int
) -> Tuple[Optional[Wire], Optional[Wire], Optional[Wire], Optional[Wire]]:
    """The four wire stubs incident to switch box ``(x, y)`` on track ``t``:
    (H-left, H-right, V-below, V-above).  ``None`` where the device edge
    truncates the channel."""
    hl = Wire("H", x - 1, y, t) if x > 0 else None
    hr = Wire("H", x, y, t) if x < arch.width else None
    vb = Wire("V", x, y - 1, t) if y > 0 else None
    va = Wire("V", x, y, t) if y < arch.height else None
    return (hl, hr, vb, va)


#: Per-track programmable switch ordering: indices into the stub tuple.
#: Switch ``s < 6`` of track ``t`` occupies config bit ``t*6 + s``; the
#: long-line taps use pseudo-pair indices 6 (H-long↔H-right) and 7
#: (V-long↔V-above) with ``t`` as the long index, stored after the
#: regular bits (see FrameCodec).
SWITCH_PAIRS: Tuple[Tuple[int, int], ...] = (
    (0, 1),  # H-left  <-> H-right
    (0, 2),  # H-left  <-> V-below
    (0, 3),  # H-left  <-> V-above
    (1, 2),  # H-right <-> V-below
    (1, 3),  # H-right <-> V-above
    (2, 3),  # V-below <-> V-above
)


def iob_sites(arch: Architecture) -> List[IobSite]:
    """All pads in pin-number order: south, north (pos = column), then
    west, east (pos = row); ``io_per_edge`` pads per position."""
    sites: List[IobSite] = []
    for side, count in (("S", arch.width), ("N", arch.width),
                        ("W", arch.height), ("E", arch.height)):
        for pos in range(count):
            for j in range(arch.io_per_edge):
                sites.append(IobSite(side, pos, j))
    return sites


def iob_candidates(arch: Architecture, site: IobSite) -> List[Wire]:
    """Wires of the edge channel span adjacent to ``site`` (track order)."""
    cw = arch.channel_width
    if site.side == "S":
        return [Wire("H", site.pos, 0, t) for t in range(cw)]
    if site.side == "N":
        return [Wire("H", site.pos, arch.height, t) for t in range(cw)]
    if site.side == "W":
        return [Wire("V", 0, site.pos, t) for t in range(cw)]
    if site.side == "E":
        return [Wire("V", arch.width, site.pos, t) for t in range(cw)]
    raise ValueError(f"bad side {site.side!r}")


def wire_in_region(wire: Wire, region: Rect) -> bool:
    """Whether ``wire`` is *owned* by ``region``.

    Ownership is deliberately asymmetric — a region owns only its bottom
    horizontal channels and left vertical channels (both indices in
    ``region.x .. region.x2-1`` × ``region.y .. region.y2-1``).  Two
    disjoint regions therefore never own a common wire, switch box or
    configuration frame, which is what makes partition loading free of
    interference (paper §4) and relocation a pure coordinate translation.
    """
    if wire.kind in ("HL", "VL"):
        return False  # long lines are device-global, owned by nobody
    return (
        region.x <= wire.x < region.x2 and region.y <= wire.y < region.y2
    )


def wires_in_region(arch: Architecture, region: Rect) -> List[Wire]:
    """All wires owned by ``region``, deterministic order."""
    cw = arch.channel_width
    out: List[Wire] = []
    for y in range(region.y, region.y2):
        for x in range(region.x, region.x2):
            out += [Wire("H", x, y, t) for t in range(cw)]
    for x in range(region.x, region.x2):
        for y in range(region.y, region.y2):
            out += [Wire("V", x, y, t) for t in range(cw)]
    return out


def switchboxes_in_region(region: Rect) -> List[Tuple[int, int]]:
    """Switch boxes whose every owned-wire switch stays inside ``region``."""
    return [
        (x, y)
        for x in range(region.x, region.x2)
        for y in range(region.y, region.y2)
    ]
