"""Input/output block (IOB) configuration state.

Each bonded pad can be configured as an input (pad drives a channel wire)
or an output (a channel wire drives the pad), tapping one track of its
adjacent edge-channel span.  The pad count is the paper's second physical
barrier; :mod:`repro.core.iomux` virtualises it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .families import Architecture

__all__ = ["IobDirection", "IobConfig"]


class IobDirection(enum.Enum):
    INPUT = "input"    # pad → fabric
    OUTPUT = "output"  # fabric → pad


@dataclass(frozen=True)
class IobConfig:
    """Configuration of one IOB.

    Attributes
    ----------
    enable:
        Whether the pad is in use at all.
    direction:
        Data direction (meaningful only when enabled).
    track_sel:
        0 = open, ``t+1`` = track *t* of the adjacent channel span (see
        :func:`repro.device.interconnect.iob_candidates`).
    """

    enable: bool = False
    direction: IobDirection = IobDirection.INPUT
    track_sel: int = 0

    def validate(self, arch: Architecture) -> None:
        if not 0 <= self.track_sel <= arch.channel_width:
            raise ValueError(f"track_sel {self.track_sel} out of range")
        if self.enable and self.track_sel == 0:
            raise ValueError("enabled IOB must select a track")

    @staticmethod
    def empty() -> "IobConfig":
        return IobConfig()
