"""Configuration-port timing: the quantity the whole paper turns on.

The paper (§2) observes that VFPGA feasibility "is strictly related to the
configuration time": full-serial devices (XC4000-style, ≤ 200 ms) restrict
virtualization to occasional reconfiguration, while partially
reconfigurable families make frequent reprogramming feasible.  This module
prices every configuration-port transaction:

* full serial download of the entire RAM,
* partial (frame-addressed) writes of only the frames a bitstream touches,
* delta (frame-diff) writes of only the frames whose content *changed*,
  each carrying an explicit address header (``Architecture.delta_addr_bits``),
* state readback (observe all flip-flops, §3),
* state restore (control all flip-flops, §3).

Readback and restore are frame-granular, as in real devices: touching one
flip-flop costs its whole frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .bitstream import Bitstream
from .families import Architecture

__all__ = ["ConfigPort", "ConfigTimingBreakdown"]


@dataclass(frozen=True)
class ConfigTimingBreakdown:
    """Per-cause accounting for one configuration transaction."""

    n_frames: int
    seconds: float
    mode: str  # "full-serial" | "partial" | "delta" | "readback" | "state-restore"
    #: Frames physically written; ``None`` means "all addressed frames"
    #: (every non-delta mode).  Use :attr:`written` for the resolved count.
    frames_written: Optional[int] = None

    @property
    def written(self) -> int:
        return self.n_frames if self.frames_written is None else self.frames_written


class ConfigPort:
    """Prices configuration transactions for one architecture."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch

    # -- whole-device -----------------------------------------------------
    def full_config(self) -> ConfigTimingBreakdown:
        """Serial download of every frame (the only option on
        non-partially-reconfigurable devices)."""
        a = self.arch
        return ConfigTimingBreakdown(
            n_frames=a.n_frames,
            seconds=a.total_config_bits / a.serial_rate,
            mode="full-serial",
        )

    # -- per-bitstream ------------------------------------------------------
    def frame_write_time(self, n_frames: int) -> float:
        a = self.arch
        return n_frames * (a.frame_overhead + a.frame_bits / a.serial_rate)

    def load_time(self, bitstream: Bitstream) -> ConfigTimingBreakdown:
        """Time to make ``bitstream`` resident.

        On a partial-reconfig device only the touched frames are written;
        otherwise the entire device must be re-downloaded regardless of the
        circuit's size — exactly the §2 restriction experiment E12 measures.
        """
        if not self.arch.supports_partial:
            return self.full_config()
        n = len(bitstream.frames_touched(self.arch))
        return ConfigTimingBreakdown(
            n_frames=n, seconds=self.frame_write_time(n), mode="partial"
        )

    def unload_time(self, bitstream: Bitstream) -> ConfigTimingBreakdown:
        """Clearing a region costs the same frame writes as loading it."""
        return self.load_time(bitstream)

    # -- delta (frame-diff) writes ------------------------------------------
    def delta_frame_write_time(self, n_frames: int) -> float:
        """Each delta frame pays the partial-write cost *plus* an explicit
        per-frame address header — the price of random frame access."""
        a = self.arch
        return n_frames * (
            a.frame_overhead + (a.frame_bits + a.delta_addr_bits) / a.serial_rate
        )

    def delta_load_time(
        self, bitstream: Bitstream, n_changed: int
    ) -> ConfigTimingBreakdown:
        """Time to reconfigure when only ``n_changed`` of the touched
        frames differ from the resident bits.

        Devices without partial reconfiguration cannot address frames at
        all, so the delta path degenerates to a full serial download.
        """
        if not self.arch.supports_partial:
            return self.full_config()
        n_touched = len(bitstream.frames_touched(self.arch))
        return ConfigTimingBreakdown(
            n_frames=n_touched,
            seconds=self.delta_frame_write_time(n_changed),
            mode="delta",
            frames_written=n_changed,
        )

    # -- state save/restore (paper §3) ------------------------------------------
    def _state_frames(self, bitstream: Bitstream) -> int:
        return len(bitstream.state_frames(self.arch))

    def state_save_time(self, bitstream: Bitstream) -> ConfigTimingBreakdown:
        """Observe every memory element: read each frame holding a FF."""
        a = self.arch
        n = self._state_frames(bitstream)
        return ConfigTimingBreakdown(
            n_frames=n,
            seconds=n * (a.frame_overhead + a.frame_bits / a.readback_rate),
            mode="readback",
        )

    def state_restore_time(self, bitstream: Bitstream) -> ConfigTimingBreakdown:
        """Control every memory element: read-modify-write each FF frame."""
        a = self.arch
        n = self._state_frames(bitstream)
        per_frame = a.frame_overhead + a.frame_bits / a.readback_rate \
            + a.frame_bits / a.serial_rate
        return ConfigTimingBreakdown(
            n_frames=n, seconds=n * per_frame, mode="state-restore"
        )
