"""Gate-level netlists: cells, containers, builders, generators, simulation.

This is the "application circuit" substrate: everything the VFPGA manager
loads onto the device model starts life here as a :class:`Netlist`.
"""

from .builder import NetlistBuilder
from .cells import Cell, CellKind, evaluate_kind
from .generators import (
    CIRCUIT_GENERATORS,
    accumulator,
    alu,
    array_multiplier,
    barrel_shifter,
    comparator,
    counter,
    gray_counter,
    johnson_counter,
    kogge_stone_adder,
    priority_encoder,
    lfsr,
    moore_fsm,
    moving_sum_fir,
    parity_tree,
    random_logic,
    ripple_adder,
    serial_crc,
    shift_register,
)
from .io import load_netlist, netlist_from_dict, netlist_to_dict, save_netlist
from .logicsim import LogicSimulator
from .netlist import Netlist, NetlistError
from .stats import NetlistStats, netlist_stats

__all__ = [
    "CIRCUIT_GENERATORS",
    "Cell",
    "CellKind",
    "LogicSimulator",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "NetlistStats",
    "accumulator",
    "alu",
    "array_multiplier",
    "barrel_shifter",
    "comparator",
    "counter",
    "evaluate_kind",
    "gray_counter",
    "johnson_counter",
    "kogge_stone_adder",
    "lfsr",
    "load_netlist",
    "moore_fsm",
    "moving_sum_fir",
    "netlist_from_dict",
    "netlist_stats",
    "netlist_to_dict",
    "parity_tree",
    "priority_encoder",
    "random_logic",
    "ripple_adder",
    "save_netlist",
    "serial_crc",
    "shift_register",
]
