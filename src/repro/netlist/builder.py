"""Fluent construction API for netlists.

The circuit generators build everything through :class:`NetlistBuilder`,
which handles unique naming, bus (multi-bit) signals, and common structural
idioms (reduction trees, adders) so generators stay readable.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from .cells import Cell, CellKind
from .netlist import Netlist

__all__ = ["NetlistBuilder"]


class NetlistBuilder:
    """Builds a :class:`~repro.netlist.netlist.Netlist` incrementally.

    All gate methods return the *name* of the created cell (= its output
    net), so calls compose naturally::

        b = NetlistBuilder("demo")
        a, c = b.input("a"), b.input("c")
        b.output("y", b.xor(a, c))
        nl = b.build()
    """

    def __init__(self, name: str) -> None:
        self.netlist = Netlist(name)
        self._counter = itertools.count()

    # -- naming ------------------------------------------------------------
    def _fresh(self, stem: str) -> str:
        while True:
            name = f"{stem}_{next(self._counter)}"
            if name not in self.netlist:
                return name

    def _gate(self, kind: CellKind, fanin: Sequence[str], name: str | None = None, **kw) -> str:
        cell = Cell(name or self._fresh(kind.value), kind, tuple(fanin), **kw)
        self.netlist.add(cell)
        return cell.name

    # -- sources / sinks -----------------------------------------------------
    def input(self, name: str) -> str:
        return self._gate(CellKind.INPUT, (), name=name)

    def input_bus(self, stem: str, width: int) -> List[str]:
        return [self.input(f"{stem}[{i}]") for i in range(width)]

    def output(self, name: str, src: str) -> str:
        return self._gate(CellKind.OUTPUT, (src,), name=name)

    def output_bus(self, stem: str, srcs: Sequence[str]) -> List[str]:
        return [self.output(f"{stem}[{i}]", s) for i, s in enumerate(srcs)]

    def const(self, value: int, name: str | None = None) -> str:
        kind = CellKind.CONST1 if value else CellKind.CONST0
        return self._gate(kind, (), name=name)

    # -- gates ---------------------------------------------------------------
    def buf(self, a: str, name: str | None = None) -> str:
        return self._gate(CellKind.BUF, (a,), name=name)

    def not_(self, a: str, name: str | None = None) -> str:
        return self._gate(CellKind.NOT, (a,), name=name)

    def and_(self, *srcs: str, name: str | None = None) -> str:
        return self._gate(CellKind.AND, srcs, name=name)

    def or_(self, *srcs: str, name: str | None = None) -> str:
        return self._gate(CellKind.OR, srcs, name=name)

    def nand(self, *srcs: str, name: str | None = None) -> str:
        return self._gate(CellKind.NAND, srcs, name=name)

    def nor(self, *srcs: str, name: str | None = None) -> str:
        return self._gate(CellKind.NOR, srcs, name=name)

    def xor(self, *srcs: str, name: str | None = None) -> str:
        return self._gate(CellKind.XOR, srcs, name=name)

    def xnor(self, *srcs: str, name: str | None = None) -> str:
        return self._gate(CellKind.XNOR, srcs, name=name)

    def mux(self, sel: str, a: str, b: str, name: str | None = None) -> str:
        """2:1 mux: returns ``b`` when ``sel`` else ``a``."""
        return self._gate(CellKind.MUX, (sel, a, b), name=name)

    def lut(self, truth: int, srcs: Sequence[str], name: str | None = None) -> str:
        return self._gate(CellKind.LUT, srcs, name=name, truth=truth)

    def dff(self, d: str, init: int = 0, name: str | None = None) -> str:
        return self._gate(CellKind.DFF, (d,), name=name, init=init)

    # -- idioms ----------------------------------------------------------------
    def reduce_tree(self, kind: CellKind, srcs: Sequence[str]) -> str:
        """Balanced binary reduction (e.g. wide AND as a tree of 2-ANDs)."""
        level = list(srcs)
        if not level:
            raise ValueError("reduce_tree needs at least one source")
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self._gate(kind, (level[i], level[i + 1])))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Returns (sum, carry-out) built from basic gates."""
        axb = self.xor(a, b)
        s = self.xor(axb, cin)
        carry = self.or_(self.and_(a, b), self.and_(axb, cin))
        return s, carry

    def ripple_add(self, a_bits: Sequence[str], b_bits: Sequence[str], cin: str | None = None) -> tuple[List[str], str]:
        """Width-matched ripple-carry addition; returns (sum_bits, carry)."""
        if len(a_bits) != len(b_bits):
            raise ValueError("ripple_add operands must have equal width")
        carry = cin if cin is not None else self.const(0)
        sums: List[str] = []
        for a, b in zip(a_bits, b_bits):
            s, carry = self.full_adder(a, b, carry)
            sums.append(s)
        return sums, carry

    def equals(self, a_bits: Sequence[str], b_bits: Sequence[str]) -> str:
        """Wide equality comparator."""
        if len(a_bits) != len(b_bits):
            raise ValueError("equals operands must have equal width")
        eqs = [self.xnor(a, b) for a, b in zip(a_bits, b_bits)]
        return self.reduce_tree(CellKind.AND, eqs)

    def register_bus(self, srcs: Sequence[str], init: int = 0) -> List[str]:
        """One DFF per bit; ``init`` is interpreted as a little-endian word."""
        return [self.dff(s, init=(init >> i) & 1) for i, s in enumerate(srcs)]

    # -- finish -----------------------------------------------------------------
    def build(self) -> Netlist:
        """Validate and return the netlist."""
        self.netlist.validate()
        return self.netlist
