"""Cell library for gate-level netlists.

A netlist is a graph of named single-output cells.  A cell's ``fanin`` is a
tuple of *names of other cells* whose outputs it reads — i.e. nets are
identified with their (unique) driving cell, which keeps the representation
compact and makes single-driver violations unrepresentable.

Supported kinds:

=========  =============================================================
``INPUT``  primary input (no fanin)
``OUTPUT`` primary output marker (one fanin, no logic)
``CONST0`` constant 0        ``CONST1``  constant 1
``BUF``    identity          ``NOT``     inverter
``AND`` / ``OR`` / ``NAND`` / ``NOR`` / ``XOR`` / ``XNOR``  n-ary gates
``MUX``    2:1 multiplexer, fanin = (sel, a, b): out = b if sel else a
``LUT``    k-input lookup table with an explicit truth table
``DFF``    D flip-flop, fanin = (d,); clocking is implicit (one domain)
=========  =============================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["CellKind", "Cell", "evaluate_kind", "COMBINATIONAL_KINDS"]


class CellKind(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"
    LUT = "lut"
    DFF = "dff"


#: Kinds that compute a boolean function of their fanin (everything except
#: sources, sinks and state elements).
COMBINATIONAL_KINDS = frozenset(
    {
        CellKind.BUF,
        CellKind.NOT,
        CellKind.AND,
        CellKind.OR,
        CellKind.NAND,
        CellKind.NOR,
        CellKind.XOR,
        CellKind.XNOR,
        CellKind.MUX,
        CellKind.LUT,
    }
)

_MIN_ARITY = {
    CellKind.INPUT: 0,
    CellKind.OUTPUT: 1,
    CellKind.CONST0: 0,
    CellKind.CONST1: 0,
    CellKind.BUF: 1,
    CellKind.NOT: 1,
    CellKind.AND: 2,
    CellKind.OR: 2,
    CellKind.NAND: 2,
    CellKind.NOR: 2,
    CellKind.XOR: 2,
    CellKind.XNOR: 2,
    CellKind.MUX: 3,
    CellKind.LUT: 0,  # a 0-input LUT is a constant (truth bit 0)
    CellKind.DFF: 1,
}

_MAX_ARITY = {
    CellKind.INPUT: 0,
    CellKind.OUTPUT: 1,
    CellKind.CONST0: 0,
    CellKind.CONST1: 0,
    CellKind.BUF: 1,
    CellKind.NOT: 1,
    CellKind.MUX: 3,
    CellKind.DFF: 1,
    # n-ary gates and LUTs have no hard upper bound here; the CAD flow's
    # technology mapper enforces the device's K.
}


@dataclass(frozen=True)
class Cell:
    """One netlist cell.  Immutable; netlists are edited by replacement.

    Parameters
    ----------
    name:
        Unique identifier within the netlist; also names the output net.
    kind:
        The cell's :class:`CellKind`.
    fanin:
        Names of the driving cells, in port order.
    truth:
        LUT truth table as an integer bitmask over ``2**len(fanin)``
        entries (bit *i* = output for input pattern *i*, where fanin[0]
        is the least-significant address bit).  Only valid for ``LUT``.
    init:
        Reset value of a ``DFF``.
    """

    name: str
    kind: CellKind
    fanin: Tuple[str, ...] = field(default_factory=tuple)
    truth: int = 0
    init: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cell name must be non-empty")
        fanin = tuple(self.fanin)
        object.__setattr__(self, "fanin", fanin)
        lo = _MIN_ARITY[self.kind]
        hi = _MAX_ARITY.get(self.kind)
        if len(fanin) < lo or (hi is not None and len(fanin) > hi):
            raise ValueError(
                f"{self.kind.value} cell {self.name!r}: fanin arity "
                f"{len(fanin)} outside [{lo}, {hi if hi is not None else 'inf'}]"
            )
        if self.kind is CellKind.LUT:
            entries = 1 << len(fanin)
            if not 0 <= self.truth < (1 << entries):
                raise ValueError(
                    f"LUT {self.name!r}: truth table {self.truth:#x} does not "
                    f"fit {entries} entries"
                )
        elif self.truth:
            raise ValueError(f"{self.kind.value} cell {self.name!r} cannot carry a truth table")
        if self.init not in (0, 1):
            raise ValueError(f"DFF init must be 0 or 1, got {self.init}")
        if self.init and self.kind is not CellKind.DFF:
            raise ValueError(f"{self.kind.value} cell {self.name!r} cannot carry an init value")

    @property
    def is_combinational(self) -> bool:
        return self.kind in COMBINATIONAL_KINDS

    @property
    def is_state(self) -> bool:
        return self.kind is CellKind.DFF


def evaluate_kind(kind: CellKind, values: Tuple[int, ...], truth: int = 0) -> int:
    """Evaluate one combinational cell over bit values (0/1).

    ``DFF``/``INPUT`` are not evaluable here — the logic simulator supplies
    their values from state / stimulus.
    """
    if kind is CellKind.BUF or kind is CellKind.OUTPUT:
        return values[0]
    if kind is CellKind.NOT:
        return 1 - values[0]
    if kind is CellKind.AND:
        return int(all(values))
    if kind is CellKind.OR:
        return int(any(values))
    if kind is CellKind.NAND:
        return 1 - int(all(values))
    if kind is CellKind.NOR:
        return 1 - int(any(values))
    if kind is CellKind.XOR:
        return sum(values) & 1
    if kind is CellKind.XNOR:
        return 1 - (sum(values) & 1)
    if kind is CellKind.MUX:
        sel, a, b = values
        return b if sel else a
    if kind is CellKind.LUT:
        index = 0
        for i, v in enumerate(values):
            index |= (v & 1) << i
        return (truth >> index) & 1
    if kind is CellKind.CONST0:
        return 0
    if kind is CellKind.CONST1:
        return 1
    raise ValueError(f"cannot evaluate {kind.value} combinationally")
