"""Circuit generators — the "application algorithms" of the paper.

The paper motivates VFPGAs with application classes (multimedia codecs,
telecom encoders/modems, embedded diagnostics, device drivers, §1/§5) but
publishes no netlists.  These generators produce parameterised circuits of
the same structural classes (substitution S4 in DESIGN.md): datapath
arithmetic, coding/CRC, filters, and control FSMs, plus seeded random logic
for stress tests.  All are pure functions of their arguments (seeded RNG),
so every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from .builder import NetlistBuilder
from .cells import Cell, CellKind
from .netlist import Netlist

__all__ = [
    "barrel_shifter",
    "kogge_stone_adder",
    "gray_counter",
    "johnson_counter",
    "priority_encoder",
    "ripple_adder",
    "array_multiplier",
    "comparator",
    "parity_tree",
    "alu",
    "random_logic",
    "counter",
    "lfsr",
    "shift_register",
    "serial_crc",
    "accumulator",
    "moore_fsm",
    "moving_sum_fir",
    "CIRCUIT_GENERATORS",
]


# --------------------------------------------------------------------------
# Combinational datapath circuits
# --------------------------------------------------------------------------

def ripple_adder(width: int) -> Netlist:
    """``width``-bit ripple-carry adder: ``s = a + b + cin``.

    Interfaces: inputs ``a[i]``, ``b[i]``, ``cin``; outputs ``s[i]``, ``cout``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"adder{width}")
    a_bits = b.input_bus("a", width)
    b_bits = b.input_bus("b", width)
    cin = b.input("cin")
    sums, cout = b.ripple_add(a_bits, b_bits, cin)
    b.output_bus("s", sums)
    b.output("cout", cout)
    return b.build()


def array_multiplier(width: int) -> Netlist:
    """``width``×``width`` unsigned array multiplier, ``p = a * b``.

    Classic carry-save partial-product array; ~O(width²) gates, which makes
    it the "large circuit" workhorse of the size-sweep experiments.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"mult{width}")
    a_bits = b.input_bus("a", width)
    b_bits = b.input_bus("b", width)
    # Partial products pp[i][j] = a[j] & b[i], accumulated row by row.
    acc: List[str] = [b.and_(a_bits[j], b_bits[0]) for j in range(width)]
    product: List[str] = [acc[0]]
    acc = acc[1:] + [b.const(0)]
    for i in range(1, width):
        row = [b.and_(a_bits[j], b_bits[i]) for j in range(width)]
        carry = b.const(0)
        nxt: List[str] = []
        for j in range(width):
            s, carry = b.full_adder(acc[j], row[j], carry)
            nxt.append(s)
        product.append(nxt[0])
        acc = nxt[1:] + [carry]
    product.extend(acc)
    b.output_bus("p", product[: 2 * width])
    return b.build()


def comparator(width: int) -> Netlist:
    """Magnitude comparator: outputs ``eq`` and ``lt`` (a < b, unsigned)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"cmp{width}")
    a_bits = b.input_bus("a", width)
    b_bits = b.input_bus("b", width)
    b.output("eq", b.equals(a_bits, b_bits))
    # lt = OR over i of (a[i]<b[i] AND a[j]==b[j] for j>i)
    terms: List[str] = []
    eq_above: str | None = None
    for i in reversed(range(width)):
        bit_lt = b.and_(b.not_(a_bits[i]), b_bits[i])
        terms.append(bit_lt if eq_above is None else b.and_(eq_above, bit_lt))
        bit_eq = b.xnor(a_bits[i], b_bits[i])
        eq_above = bit_eq if eq_above is None else b.and_(eq_above, bit_eq)
    b.output("lt", b.reduce_tree(CellKind.OR, terms) if len(terms) > 1 else terms[0])
    return b.build()


def parity_tree(width: int) -> Netlist:
    """XOR reduction over ``width`` inputs (even-parity generator)."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = NetlistBuilder(f"parity{width}")
    bits = b.input_bus("d", width)
    b.output("p", b.reduce_tree(CellKind.XOR, bits))
    return b.build()


def alu(width: int) -> Netlist:
    """Four-function ALU (ADD / AND / OR / XOR) selected by ``op[1:0]``.

    Models the paper's "merged circuit" idea in miniature: all four
    functions coexist; the selector picks the one in use.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"alu{width}")
    a_bits = b.input_bus("a", width)
    b_bits = b.input_bus("b", width)
    op = b.input_bus("op", 2)
    add_bits, _ = b.ripple_add(a_bits, b_bits)
    and_bits = [b.and_(x, y) for x, y in zip(a_bits, b_bits)]
    or_bits = [b.or_(x, y) for x, y in zip(a_bits, b_bits)]
    xor_bits = [b.xor(x, y) for x, y in zip(a_bits, b_bits)]
    out_bits = []
    for i in range(width):
        lo = b.mux(op[0], add_bits[i], and_bits[i])
        hi = b.mux(op[0], or_bits[i], xor_bits[i])
        out_bits.append(b.mux(op[1], lo, hi))
    b.output_bus("y", out_bits)
    return b.build()


def kogge_stone_adder(width: int) -> Netlist:
    """Kogge–Stone parallel-prefix adder: ``s = a + b + cin``.

    Same interface as :func:`ripple_adder` but with O(log width) carry
    depth instead of O(width) — the pair lets the timing experiments show
    topology, not just size, driving the critical path.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"ksadder{width}")
    a_bits = b.input_bus("a", width)
    b_bits = b.input_bus("b", width)
    cin = b.input("cin")
    g = [b.and_(x, y) for x, y in zip(a_bits, b_bits)]
    p = [b.xor(x, y) for x, y in zip(a_bits, b_bits)]
    G, P = list(g), list(p)
    d = 1
    while d < width:
        nG, nP = list(G), list(P)
        for i in range(d, width):
            nG[i] = b.or_(G[i], b.and_(P[i], G[i - d]))
            nP[i] = b.and_(P[i], P[i - d])
        G, P = nG, nP
        d *= 2
    # carry into bit i: c[0] = cin; c[i] = G[i-1] | (P[i-1] & cin).
    carries = [cin]
    for i in range(1, width):
        carries.append(b.or_(G[i - 1], b.and_(P[i - 1], cin)))
    sums = [b.xor(p[i], carries[i]) for i in range(width)]
    cout = b.or_(G[width - 1], b.and_(P[width - 1], cin))
    b.output_bus("s", sums)
    b.output("cout", cout)
    return b.build()


def barrel_shifter(width: int) -> Netlist:
    """Logarithmic barrel shifter: ``y = d << s`` (zero fill).

    Inputs ``d[width]`` and ``s[ceil(log2 width)]``; output ``y[width]``.
    A mux ladder per shift-amount bit — the datapath shape of the DSP
    kernels the paper's multimedia class implies.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    b = NetlistBuilder(f"bshift{width}")
    d = b.input_bus("d", width)
    n_sel = (width - 1).bit_length()
    sel = b.input_bus("s", n_sel)
    zero = b.const(0)
    stage = list(d)
    for k in range(n_sel):
        shift = 1 << k
        nxt = []
        for i in range(width):
            shifted = stage[i - shift] if i >= shift else zero
            nxt.append(b.mux(sel[k], stage[i], shifted))
        stage = nxt
    b.output_bus("y", stage)
    return b.build()


def priority_encoder(width: int) -> Netlist:
    """Highest-set-bit priority encoder.

    Inputs ``d[width]``; outputs ``q[ceil(log2 width)]`` (index of the
    highest set bit) and ``valid`` (any bit set).
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    b = NetlistBuilder(f"prienc{width}")
    d = b.input_bus("d", width)
    n_out = (width - 1).bit_length()
    # higher_clear[i] = no input above i is set.
    grants: List[str] = [None] * width
    higher = None
    for i in reversed(range(width)):
        grants[i] = d[i] if higher is None else b.and_(d[i], higher)
        not_i = b.not_(d[i])
        higher = not_i if higher is None else b.and_(higher, not_i)
    for bit in range(n_out):
        terms = [grants[i] for i in range(width) if (i >> bit) & 1]
        if not terms:
            b.output(f"q[{bit}]", b.const(0))
        elif len(terms) == 1:
            b.output(f"q[{bit}]", b.buf(terms[0]))
        else:
            b.output(f"q[{bit}]", b.reduce_tree(CellKind.OR, terms))
    b.output("valid", b.reduce_tree(CellKind.OR, list(d)))
    return b.build()


def gray_counter(width: int) -> Netlist:
    """Gray-code counter: outputs ``g[i]`` follow the reflected binary
    code.  Implemented as a binary counter plus binary→Gray conversion,
    so consecutive outputs differ in exactly one bit."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = NetlistBuilder(f"gray{width}")
    en = b.input("en")
    q_names = [f"b{i}_ff" for i in range(width)]
    next_names = [f"n{i}" for i in range(width)]
    for i in range(width):
        b.netlist.add(Cell(q_names[i], CellKind.DFF, (next_names[i],)))
    carry = en
    for i in range(width):
        b.xor(q_names[i], carry, name=next_names[i])
        if i < width - 1:
            carry = b.and_(carry, q_names[i])
    gray = []
    for i in range(width):
        if i == width - 1:
            gray.append(b.buf(q_names[i]))
        else:
            gray.append(b.xor(q_names[i], q_names[i + 1]))
    b.output_bus("g", gray)
    return b.build()


def johnson_counter(width: int) -> Netlist:
    """Johnson (twisted-ring) counter: a shift register whose inverted
    tail feeds its head; period ``2*width`` with one-bit transitions."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = NetlistBuilder(f"johnson{width}")
    q_names = [f"q{i}_ff" for i in range(width)]
    b.netlist.add(Cell(q_names[0], CellKind.DFF, ("fb",)))
    for i in range(1, width):
        b.netlist.add(Cell(q_names[i], CellKind.DFF, (q_names[i - 1],)))
    b.not_(q_names[width - 1], name="fb")
    b.output_bus("q", q_names)
    return b.build()


def random_logic(
    n_gates: int, n_inputs: int, n_outputs: int, seed: int, max_fanin: int = 3
) -> Netlist:
    """Seeded random combinational DAG — the stress/soak workload.

    Each gate's fanin is drawn from earlier gates and primary inputs, so the
    result is acyclic by construction.  Outputs tap the last gates so depth
    is exercised.
    """
    if n_gates < 1 or n_inputs < 1 or n_outputs < 1:
        raise ValueError("n_gates, n_inputs, n_outputs must be >= 1")
    rng = random.Random(seed)
    b = NetlistBuilder(f"rand{n_gates}g{n_inputs}i_s{seed}")
    pool: List[str] = b.input_bus("x", n_inputs)
    kinds = [CellKind.AND, CellKind.OR, CellKind.XOR, CellKind.NAND, CellKind.NOR]
    gates: List[str] = []
    for _ in range(n_gates):
        kind = rng.choice(kinds)
        fanin_n = rng.randint(2, max_fanin)
        fanin = rng.sample(pool, min(fanin_n, len(pool)))
        if len(fanin) < 2:
            fanin = fanin * 2
        name = b._gate(kind, fanin)
        pool.append(name)
        gates.append(name)
    taps = gates[-n_outputs:] if len(gates) >= n_outputs else gates * n_outputs
    b.output_bus("y", taps[:n_outputs])
    return b.build()


# --------------------------------------------------------------------------
# Sequential circuits (these have state — the hard case of paper §3)
# --------------------------------------------------------------------------

def counter(width: int) -> Netlist:
    """``width``-bit binary up-counter with enable.

    Inputs ``en``; outputs ``q[i]``.  Increments when ``en`` is 1.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"counter{width}")
    en = b.input("en")
    # Create DFFs with placeholder feedback via two-phase construction:
    # next[i] = q[i] XOR (en AND q[0..i-1]) — but DFF fanin must exist, so
    # build next-state logic referencing DFF names chosen up front.
    q_names = [f"q{i}_ff" for i in range(width)]
    carry = en
    next_bits: List[str] = []
    # DFF cells are added *after* their input logic exists; to allow the
    # feedback reference we insert the DFFs first with a temporary driver,
    # then the builder pattern: declare DFFs reading named next-state nets.
    next_names = [f"next{i}" for i in range(width)]
    for i in range(width):
        b.netlist.add(Cell(q_names[i], CellKind.DFF, (next_names[i],)))
    for i in range(width):
        nxt = b.xor(q_names[i], carry, name=next_names[i])
        next_bits.append(nxt)
        if i < width - 1:
            carry = b.and_(carry, q_names[i])
    b.output_bus("q", q_names)
    return b.build()


def lfsr(width: int, taps: Sequence[int] | None = None) -> Netlist:
    """Fibonacci LFSR with XOR feedback on ``taps`` (default: maximal-ish).

    Outputs ``q[i]``.  DFF[0] initialises to 1 so the register is nonzero.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if taps is None:
        taps = (width - 1, 0)
    taps = tuple(taps)
    if any(t < 0 or t >= width for t in taps) or len(set(taps)) < 2:
        raise ValueError(f"invalid taps {taps} for width {width}")
    b = NetlistBuilder(f"lfsr{width}")
    q_names = [f"q{i}_ff" for i in range(width)]
    b.netlist.add(Cell(q_names[0], CellKind.DFF, ("fb",), init=1))
    for i in range(1, width):
        b.netlist.add(Cell(q_names[i], CellKind.DFF, (q_names[i - 1],)))
    b.xor(*[q_names[t] for t in taps], name="fb")
    b.output_bus("q", q_names)
    return b.build()


def shift_register(width: int) -> Netlist:
    """Serial-in shift register: input ``din``, outputs ``q[i]``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"shift{width}")
    din = b.input("din")
    prev = din
    q_names = []
    for i in range(width):
        prev = b.dff(prev, name=f"q{i}_ff")
        q_names.append(prev)
    b.output_bus("q", q_names)
    return b.build()


def serial_crc(width: int, poly: int) -> Netlist:
    """Bit-serial CRC register (the paper's telecom encoding example, §5).

    ``poly`` is the generator polynomial without the leading x^width term,
    e.g. CRC-8-ATM is ``width=8, poly=0x07``.  Input ``din``; outputs
    ``crc[i]``.  Each clock shifts one message bit through.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if not 0 < poly < (1 << width):
        raise ValueError(f"poly {poly:#x} out of range for width {width}")
    b = NetlistBuilder(f"crc{width}_{poly:x}")
    din = b.input("din")
    reg = [f"c{i}_ff" for i in range(width)]
    next_names = [f"n{i}" for i in range(width)]
    for i in range(width):
        b.netlist.add(Cell(reg[i], CellKind.DFF, (next_names[i],)))
    fb = b.xor(din, reg[width - 1], name="fb")
    for i in range(width):
        src = fb if i == 0 else reg[i - 1]
        if i > 0 and (poly >> i) & 1:
            b.xor(src, fb, name=next_names[i])
        else:
            b.buf(src, name=next_names[i])
    b.output_bus("crc", reg)
    return b.build()


def accumulator(width: int) -> Netlist:
    """Registered accumulator: ``acc += d`` each clock; outputs ``acc[i]``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"accum{width}")
    d_bits = b.input_bus("d", width)
    acc_names = [f"acc{i}_ff" for i in range(width)]
    next_names = [f"next{i}" for i in range(width)]
    for i in range(width):
        b.netlist.add(Cell(acc_names[i], CellKind.DFF, (next_names[i],)))
    sums, _ = b.ripple_add(acc_names, d_bits)
    for i, s in enumerate(sums):
        b.buf(s, name=next_names[i])
    b.output_bus("acc", acc_names)
    return b.build()


def moore_fsm(n_states: int, n_inputs: int, seed: int) -> Netlist:
    """Seeded random Moore machine (the paper's control/driver workload).

    State is one-hot-free binary-encoded in ``ceil(log2 n_states)`` DFFs;
    next-state and output logic are random LUTs.  Inputs ``x[i]``; output
    ``y``.  The dense random next-state function makes the state vector
    genuinely history-dependent, which is what makes preemption without
    save/restore observable as corruption in the E6 experiment.
    """
    if n_states < 2 or n_inputs < 1:
        raise ValueError("need n_states >= 2 and n_inputs >= 1")
    rng = random.Random(seed)
    state_bits = max(1, (n_states - 1).bit_length())
    b = NetlistBuilder(f"fsm{n_states}s{n_inputs}i_s{seed}")
    xs = b.input_bus("x", n_inputs)
    s_names = [f"s{i}_ff" for i in range(state_bits)]
    n_names = [f"ns{i}" for i in range(state_bits)]
    for i in range(state_bits):
        b.netlist.add(Cell(s_names[i], CellKind.DFF, (n_names[i],)))
    support = s_names + xs
    k = min(len(support), 4)
    for i in range(state_bits):
        fanin = rng.sample(support, k)
        truth = rng.getrandbits(1 << k)
        b.lut(truth, fanin, name=n_names[i])
    out_fanin = rng.sample(support, k)
    out_truth = rng.getrandbits(1 << k)
    b.output("y", b.lut(out_truth, out_fanin))
    return b.build()


def moving_sum_fir(n_taps: int, width: int) -> Netlist:
    """Transposed moving-sum FIR (all-ones coefficients) — the multimedia
    filtering workload class (§5).

    Input ``d[i]`` (a ``width``-bit sample per clock); output ``y[i]``
    (``width + ceil(log2 n_taps)`` bits).  Heavy on both registers and
    adders, so it stresses state saving *and* area simultaneously.
    """
    if n_taps < 2 or width < 1:
        raise ValueError("need n_taps >= 2 and width >= 1")
    b = NetlistBuilder(f"fir{n_taps}t{width}w")
    out_width = width + (n_taps - 1).bit_length()
    d_bits = b.input_bus("d", width)
    zero = b.const(0)
    d_ext = d_bits + [zero] * (out_width - width)
    # Transposed form: y = d + z^-1(d + z^-1(d + ...)); each stage is a
    # registered adder of the extended sample with the previous stage.
    prev: List[str] = [zero] * out_width
    for _ in range(n_taps - 1):
        sums, _ = b.ripple_add(d_ext, prev)
        prev = b.register_bus(sums)
    sums, _ = b.ripple_add(d_ext, prev)
    b.output_bus("y", sums)
    return b.build()


#: Name → factory registry used by workload generators in :mod:`repro.osim`.
CIRCUIT_GENERATORS: Dict[str, object] = {
    "barrel_shifter": barrel_shifter,
    "kogge_stone_adder": kogge_stone_adder,
    "priority_encoder": priority_encoder,
    "gray_counter": gray_counter,
    "johnson_counter": johnson_counter,
    "ripple_adder": ripple_adder,
    "array_multiplier": array_multiplier,
    "comparator": comparator,
    "parity_tree": parity_tree,
    "alu": alu,
    "random_logic": random_logic,
    "counter": counter,
    "lfsr": lfsr,
    "shift_register": shift_register,
    "serial_crc": serial_crc,
    "accumulator": accumulator,
    "moore_fsm": moore_fsm,
    "moving_sum_fir": moving_sum_fir,
}
