"""Netlist serialization (JSON-compatible dictionaries).

Lets a library user save generated/synthesized circuits and reload them
without re-running the generators — the "configuration files" a real
VFPGA deployment would ship.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .cells import Cell, CellKind
from .netlist import Netlist

__all__ = ["netlist_to_dict", "netlist_from_dict", "save_netlist", "load_netlist"]

_FORMAT = "repro-netlist-v1"


def netlist_to_dict(netlist: Netlist) -> Dict[str, Any]:
    """Serialize; insertion order (and thus determinism) is preserved."""
    return {
        "format": _FORMAT,
        "name": netlist.name,
        "cells": [
            {
                "name": c.name,
                "kind": c.kind.value,
                "fanin": list(c.fanin),
                **({"truth": c.truth} if c.kind is CellKind.LUT else {}),
                **({"init": c.init} if c.init else {}),
            }
            for c in netlist.cells.values()
        ],
    }


def netlist_from_dict(data: Dict[str, Any]) -> Netlist:
    """Deserialize and validate."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document: {data.get('format')!r}")
    nl = Netlist(data["name"])
    for c in data["cells"]:
        nl.add(
            Cell(
                c["name"],
                CellKind(c["kind"]),
                tuple(c["fanin"]),
                truth=c.get("truth", 0),
                init=c.get("init", 0),
            )
        )
    nl.validate()
    return nl


def save_netlist(netlist: Netlist, path) -> None:
    with open(path, "w") as fh:
        json.dump(netlist_to_dict(netlist), fh, indent=1)


def load_netlist(path) -> Netlist:
    with open(path) as fh:
        return netlist_from_dict(json.load(fh))
