"""Event-free gate-level logic simulator.

Evaluates a netlist cycle by cycle: within a cycle every combinational cell
is computed once in topological order; at the cycle boundary all DFFs latch
their inputs simultaneously.  This is the golden reference the CAD flow's
post-route verification compares against, and it also provides the state
read/write hooks that model the paper's requirement that sequential circuits
be *observable* and *controllable* for preemption (§3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from .cells import CellKind, evaluate_kind
from .netlist import Netlist

__all__ = ["LogicSimulator"]


class LogicSimulator:
    """Cycle-accurate simulator for one netlist.

    Parameters
    ----------
    netlist:
        The circuit; validated on construction.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._order = [
            c for c in netlist.topo_order()
            if c.kind not in (CellKind.INPUT, CellKind.DFF)
        ]
        self._dffs = netlist.flipflops
        self.state: Dict[str, int] = {ff.name: ff.init for ff in self._dffs}
        self._input_names = [c.name for c in netlist.primary_inputs]
        self._output_names = [c.name for c in netlist.primary_outputs]

    # -- state observability / controllability (paper §3) -------------------
    def read_state(self) -> Dict[str, int]:
        """Observe all memory elements (a copy; safe to stash)."""
        return dict(self.state)

    def write_state(self, state: Mapping[str, int]) -> None:
        """Control all memory elements — restore a previously read state."""
        unknown = set(state) - set(self.state)
        if unknown:
            raise KeyError(f"unknown state elements: {sorted(unknown)[:5]}")
        for name, value in state.items():
            if value not in (0, 1):
                raise ValueError(f"state bit {name!r} must be 0/1, got {value}")
            self.state[name] = value

    def reset(self) -> None:
        """Return every DFF to its init value (the paper's roll-back)."""
        self.state = {ff.name: ff.init for ff in self._dffs}

    # -- evaluation -----------------------------------------------------------
    def _settle(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        values: Dict[str, int] = dict(self.state)
        for name in self._input_names:
            try:
                values[name] = inputs[name] & 1
            except KeyError:
                raise KeyError(f"missing stimulus for input {name!r}") from None
        for cell in self._order:
            operands = tuple(values[s] for s in cell.fanin)
            values[cell.name] = evaluate_kind(cell.kind, operands, cell.truth)
        return values

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Combinational evaluation: outputs for ``inputs`` and the current
        state, *without* advancing the state."""
        values = self._settle(inputs)
        return {name: values[name] for name in self._output_names}

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One clock cycle: evaluate, then latch all DFFs."""
        values = self._settle(inputs)
        self.state = {ff.name: values[ff.fanin[0]] for ff in self._dffs}
        return {name: values[name] for name in self._output_names}

    def run(self, stimulus: Iterable[Mapping[str, int]]) -> List[Dict[str, int]]:
        """Apply a sequence of input maps; returns the per-cycle outputs."""
        return [self.step(vec) for vec in stimulus]

    # -- bus helpers ------------------------------------------------------------
    @staticmethod
    def pack_bus(prefix: str, value: int, width: int) -> Dict[str, int]:
        """Little-endian word → per-bit stimulus map for ``prefix[i]`` nets."""
        return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}

    @staticmethod
    def unpack_bus(outputs: Mapping[str, int], prefix: str) -> int:
        """Per-bit outputs → little-endian integer for ``prefix[i]`` nets."""
        value = 0
        for name, bit in outputs.items():
            if name.startswith(prefix + "["):
                index = int(name[len(prefix) + 1 : -1])
                value |= (bit & 1) << index
        return value
