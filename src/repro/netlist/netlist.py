"""The :class:`Netlist` container and its structural queries.

A netlist is a DAG of combinational cells plus D flip-flops.  Combinational
cycles are illegal; cycles through DFFs are how sequential behaviour is
expressed (the DFF output acts as a source for the combinational next-state
logic, its input as a sink).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterable, List

from .cells import Cell, CellKind

__all__ = ["Netlist", "NetlistError"]


class NetlistError(Exception):
    """Structural error in a netlist."""


class Netlist:
    """A named collection of :class:`~repro.netlist.cells.Cell` objects.

    Attributes
    ----------
    name:
        Human-readable circuit name (used in bitstream / registry labels).
    cells:
        Mapping cell name → cell.  Insertion order is preserved and is the
        construction order, which downstream passes use for determinism.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("netlist name must be non-empty")
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self._fanout: Dict[str, List[str]] | None = None

    # -- construction ------------------------------------------------------
    def add(self, cell: Cell) -> Cell:
        """Insert ``cell``; duplicate names are an error."""
        if cell.name in self.cells:
            raise NetlistError(f"duplicate cell name {cell.name!r}")
        self.cells[cell.name] = cell
        self._fanout = None
        return cell

    def replace(self, cell: Cell) -> Cell:
        """Replace the cell with the same name (used by CAD rewrites)."""
        if cell.name not in self.cells:
            raise NetlistError(f"replace() of unknown cell {cell.name!r}")
        self.cells[cell.name] = cell
        self._fanout = None
        return cell

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __getitem__(self, name: str) -> Cell:
        return self.cells[name]

    @property
    def primary_inputs(self) -> List[Cell]:
        return [c for c in self.cells.values() if c.kind is CellKind.INPUT]

    @property
    def primary_outputs(self) -> List[Cell]:
        return [c for c in self.cells.values() if c.kind is CellKind.OUTPUT]

    @property
    def flipflops(self) -> List[Cell]:
        return [c for c in self.cells.values() if c.kind is CellKind.DFF]

    @property
    def state_bits(self) -> int:
        """Number of memory elements — the quantity the paper's state
        save/restore cost scales with."""
        return sum(1 for c in self.cells.values() if c.kind is CellKind.DFF)

    @property
    def io_count(self) -> int:
        return len(self.primary_inputs) + len(self.primary_outputs)

    def fanout(self, name: str) -> List[str]:
        """Names of cells reading ``name``'s output."""
        if self._fanout is None:
            table: Dict[str, List[str]] = defaultdict(list)
            for cell in self.cells.values():
                for src in cell.fanin:
                    table[src].append(cell.name)
            self._fanout = dict(table)
        return self._fanout.get(name, [])

    # -- structure ---------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling fanin, combinational
        cycles, or useless primary outputs."""
        for cell in self.cells.values():
            for src in cell.fanin:
                if src not in self.cells:
                    raise NetlistError(
                        f"cell {cell.name!r} reads undefined net {src!r}"
                    )
                if self.cells[src].kind is CellKind.OUTPUT:
                    raise NetlistError(
                        f"cell {cell.name!r} reads primary output {src!r}"
                    )
        # Detect combinational cycles via Kahn's algorithm on the
        # combinational sub-graph (DFF outputs act as sources).
        self.topo_order()

    def topo_order(self) -> List[Cell]:
        """Topological order of the combinational evaluation graph.

        Sources (INPUT, CONST*, DFF) come first; DFF *inputs* are edges into
        the DFF cell but the DFF's own output does not propagate within the
        same combinational pass.  Raises on combinational cycles.
        """
        indeg: Dict[str, int] = {}
        for cell in self.cells.values():
            if cell.kind in (CellKind.INPUT, CellKind.CONST0, CellKind.CONST1, CellKind.DFF):
                indeg[cell.name] = 0
            else:
                indeg[cell.name] = len(cell.fanin)
        # Edges from DFFs count as satisfied (state is available at cycle start).
        for cell in self.cells.values():
            if indeg[cell.name] == 0:
                continue
            for src in cell.fanin:
                src_cell = self.cells.get(src)
                if src_cell is not None and src_cell.kind is CellKind.DFF:
                    indeg[cell.name] -= 1
        ready = deque(
            name for name, d in indeg.items() if d == 0
        )
        order: List[Cell] = []
        seen = 0
        while ready:
            name = ready.popleft()
            order.append(self.cells[name])
            seen += 1
            for reader in self.fanout(name):
                reader_cell = self.cells[reader]
                if reader_cell.kind is CellKind.DFF:
                    continue  # DFF consumes the value but is already "ready"
                indeg[reader] -= 1
                if indeg[reader] == 0:
                    ready.append(reader)
        # DFFs that were never appended (no readers path) are sources and
        # were enqueued above; check completeness.
        if seen != len(self.cells):
            missing = sorted(set(self.cells) - {c.name for c in order})
            raise NetlistError(
                f"combinational cycle involving cells: {missing[:8]}"
                + ("…" if len(missing) > 8 else "")
            )
        return order

    def logic_depth(self) -> int:
        """Longest combinational path length, in cells (excluding
        sources/sinks).  Used as a first-order delay estimate."""
        depth: Dict[str, int] = {}
        for cell in self.topo_order():
            if cell.kind in (CellKind.INPUT, CellKind.CONST0, CellKind.CONST1, CellKind.DFF):
                depth[cell.name] = 0
            else:
                base = max((depth[s] for s in cell.fanin), default=0)
                cost = 0 if cell.kind is CellKind.OUTPUT else 1
                depth[cell.name] = base + cost
        return max(depth.values(), default=0)

    def subcircuit(self, cell_names: Iterable[str], name: str) -> "Netlist":
        """Extract the cells in ``cell_names`` as a new netlist.

        Cut nets (fanin coming from outside the set) become new primary
        inputs; cells whose output is read outside get a new primary
        output.  This is how :mod:`repro.core.segmentation` carves a large
        function into self-contained sub-functions.
        """
        chosen = set(cell_names)
        unknown = chosen - set(self.cells)
        if unknown:
            raise NetlistError(f"subcircuit: unknown cells {sorted(unknown)[:5]}")
        sub = Netlist(name)
        # New boundary inputs for cut fanin nets.
        for cname in self.cells:  # preserve deterministic order
            if cname not in chosen:
                continue
            cell = self.cells[cname]
            for src in cell.fanin:
                if src not in chosen and src not in sub.cells:
                    sub.add(Cell(src, CellKind.INPUT))
        for cname in self.cells:
            if cname in chosen:
                sub.add(self.cells[cname])
        # Boundary outputs for internally driven nets read outside.
        for cname in self.cells:
            if cname not in chosen:
                continue
            cell = self.cells[cname]
            if cell.kind is CellKind.OUTPUT:
                continue
            if any(reader not in chosen for reader in self.fanout(cname)):
                out_name = f"{cname}__cut_out"
                if out_name not in sub.cells:
                    sub.add(Cell(out_name, CellKind.OUTPUT, (cname,)))
        sub.validate()
        return sub

    def merged_with(self, other: "Netlist", name: str) -> "Netlist":
        """Disjoint union of two netlists with prefixed cell names.

        This implements the paper's "trivial solution": merging all circuits
        into one configuration when the device is large enough (§3).
        """
        merged = Netlist(name)
        for nl in (self, other):
            prefix = f"{nl.name}."
            for cell in nl.cells.values():
                merged.add(
                    Cell(
                        prefix + cell.name,
                        cell.kind,
                        tuple(prefix + s for s in cell.fanin),
                        truth=cell.truth,
                        init=cell.init,
                    )
                )
        merged.validate()
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Netlist {self.name!r}: {len(self.cells)} cells, "
            f"{len(self.primary_inputs)}i/{len(self.primary_outputs)}o, "
            f"{self.state_bits} FFs>"
        )
