"""Structural statistics over netlists.

These feed the VFPGA manager's admission decisions (does the circuit fit a
partition?) and the experiment tables (circuit size columns).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from .cells import CellKind
from .netlist import Netlist

__all__ = ["NetlistStats", "netlist_stats"]


@dataclass(frozen=True)
class NetlistStats:
    """Summary of one netlist's structure."""

    name: str
    n_cells: int
    n_gates: int          #: combinational cells (excl. BUF)
    n_luts: int           #: cells already in LUT form
    n_ffs: int            #: memory elements (state bits, paper §3)
    n_inputs: int
    n_outputs: int
    depth: int            #: longest combinational path, in cells
    kind_histogram: Dict[str, int]

    @property
    def io_count(self) -> int:
        return self.n_inputs + self.n_outputs

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.n_gates} gates, {self.n_ffs} FFs, "
            f"{self.n_inputs}i/{self.n_outputs}o, depth {self.depth}"
        )


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for ``netlist``."""
    hist = Counter(cell.kind.value for cell in netlist.cells.values())
    n_gates = sum(
        1
        for c in netlist.cells.values()
        if c.is_combinational and c.kind is not CellKind.BUF
    )
    return NetlistStats(
        name=netlist.name,
        n_cells=len(netlist),
        n_gates=n_gates,
        n_luts=hist.get(CellKind.LUT.value, 0),
        n_ffs=netlist.state_bits,
        n_inputs=len(netlist.primary_inputs),
        n_outputs=len(netlist.primary_outputs),
        depth=netlist.logic_depth(),
        kind_histogram=dict(hist),
    )
