"""Simulated multitasking operating system.

Tasks (CPU bursts ↔ FPGA operations), CPU schedulers, a policy-free kernel
and the :class:`FpgaService` boundary behind which :mod:`repro.core`
implements every VFPGA strategy of the paper.
"""

from .kernel import DeadlockError, Kernel
from .scheduler import (
    Fifo,
    PolicyScheduler,
    PriorityScheduler,
    RoundRobin,
    Scheduler,
)
from .syscalls import FpgaService, NullFpgaService, SyscallError
from .task import CpuBurst, FpgaOp, Step, Task, TaskAccounting, TaskState
from .trace import DEFAULT_MAX_TRACE_EVENTS, RunStats, Trace, TraceEvent, run_stats
from .workload import (
    alternating_task,
    bursty_arrivals,
    uniform_workload,
    zipf_index,
    zipf_workload,
)

__all__ = [
    "CpuBurst",
    "DEFAULT_MAX_TRACE_EVENTS",
    "DeadlockError",
    "Fifo",
    "FpgaOp",
    "FpgaService",
    "Kernel",
    "NullFpgaService",
    "PolicyScheduler",
    "PriorityScheduler",
    "RoundRobin",
    "RunStats",
    "Scheduler",
    "Step",
    "SyscallError",
    "Task",
    "TaskAccounting",
    "TaskState",
    "Trace",
    "TraceEvent",
    "alternating_task",
    "bursty_arrivals",
    "run_stats",
    "uniform_workload",
    "zipf_index",
    "zipf_workload",
]
