"""The simulated multitasking kernel.

One CPU, a pluggable CPU scheduler, a pluggable FPGA service.  Tasks are
programs of CPU bursts and FPGA operations: CPU bursts are time-sliced on
the single processor; FPGA operations block the issuing task (it leaves
the CPU) while the service carries them out concurrently — the
co-processor model of the paper (§2).

The kernel is deliberately policy-free about the FPGA: every decision the
paper discusses (when to download, whether to preempt, where to place)
lives behind :class:`repro.osim.syscalls.FpgaService`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Event, Simulator
from ..telemetry import (
    Admit,
    Dispatch,
    EventBus,
    FpgaComplete,
    FpgaRequest,
    QuantumExpired,
    SimStep,
    TaskDone,
)
from .scheduler import Scheduler
from .syscalls import FpgaService, SyscallError
from .task import CpuBurst, FpgaOp, Task, TaskState
from .trace import DEFAULT_MAX_TRACE_EVENTS, RunStats, Trace, run_stats

__all__ = ["Kernel", "DeadlockError"]


class DeadlockError(Exception):
    """The simulation ended with unfinished tasks."""


class _Progress:
    """Kernel-private execution cursor of one task."""

    __slots__ = ("step_index", "remaining", "enqueued_at")

    def __init__(self) -> None:
        self.step_index = 0
        self.remaining: Optional[float] = None  # of the current CPU burst
        self.enqueued_at: float = 0.0


class Kernel:
    """One simulated computing system: CPU + scheduler + FPGA service.

    Parameters
    ----------
    sim:
        The discrete-event simulator to run on.
    scheduler:
        CPU scheduling policy.
    fpga_service:
        FPGA management policy (see :mod:`repro.core`).
    context_switch:
        Seconds charged at every dispatch.
    trace:
        Record a :class:`~repro.osim.trace.Trace` of kernel events (a
        derived subscriber of :attr:`bus`).
    bus:
        The telemetry :class:`~repro.telemetry.EventBus` every layer
        publishes into (a fresh private bus when omitted).  Pass a shared
        bus to attach exporters/profilers before the run starts.
    max_trace_events:
        Bound the legacy trace to a ring of this many rows (see
        :class:`~repro.osim.trace.Trace`).  Every entry point shares the
        same default, :data:`~repro.osim.trace.DEFAULT_MAX_TRACE_EVENTS`
        (DESIGN.md §7c); pass ``None`` for the legacy unbounded ring.
    telemetry_steps:
        Publish a :class:`~repro.telemetry.SimStep` event (with calendar
        depth) for every simulator step.  Off by default — it is the one
        high-frequency event source.
    op_deadline:
        Liveness watchdog in simulation seconds: if an FPGA operation is
        still open that long after its :class:`~repro.telemetry.FpgaRequest`,
        the kernel raises :class:`DeadlockError` at the deadline instant
        instead of simulating a starving system to the bitter end
        (``None`` = off).  The stream-side equivalent is the
        :class:`~repro.telemetry.Auditor` ``deadline``.
    """

    #: ``source`` attribution of kernel-published events.
    SOURCE = "kernel"

    def __init__(
        self,
        sim: Simulator,
        scheduler: Scheduler,
        fpga_service: FpgaService,
        context_switch: float = 20e-6,
        trace: bool = True,
        bus: Optional[EventBus] = None,
        max_trace_events: Optional[int] = DEFAULT_MAX_TRACE_EVENTS,
        telemetry_steps: bool = False,
        op_deadline: Optional[float] = None,
    ) -> None:
        if op_deadline is not None and op_deadline <= 0:
            raise ValueError("op_deadline must be positive (or None)")
        self.sim = sim
        self.scheduler = scheduler
        # Time-aware scheduling strategies (aging, deadline slack) read
        # the simulation clock; duck-typed schedulers without the hook
        # keep working unchanged.
        bind_clock = getattr(scheduler, "bind_clock", None)
        if bind_clock is not None:
            bind_clock(lambda: sim.now)
        self.service = fpga_service
        self.bus = bus if bus is not None else EventBus()
        self.trace = Trace(enabled=trace, max_events=max_trace_events)
        self.bus.subscribe(self.trace.record)
        if telemetry_steps:
            sim.set_step_hook(
                lambda now, depth: self.bus.publish(
                    SimStep(now, source=self.SOURCE, queue_depth=depth)
                )
            )
        self.service.attach(self)
        self.context_switch = context_switch
        self.op_deadline = op_deadline
        self.tasks: List[Task] = []
        #: Span-correlation ids: every FpgaRequest/FpgaComplete pair
        #: shares one kernel-unique op id (see repro.telemetry.spans).
        self._next_op_id = 1
        #: op_id -> (task name, config) of in-flight FPGA operations
        #: (the op_deadline watchdog's view).
        self._open_ops: Dict[int, tuple] = {}
        self._progress: Dict[int, _Progress] = {}
        self._wakeup: Optional[Event] = None
        self._dispatcher_started = False
        self.total_context_switches = 0

    # -- admission -----------------------------------------------------------
    def spawn(self, task: Task) -> Task:
        """Register ``task``; it arrives at ``task.arrival``."""
        if task.state is not TaskState.NEW or task.tid in self._progress:
            raise ValueError(f"task {task.name!r} already spawned")
        self.tasks.append(task)
        self._progress[task.tid] = _Progress()
        delay = task.arrival - self.sim.now
        if delay < 0:
            raise ValueError(f"task {task.name!r} arrives in the past")
        self.sim.schedule_callback(delay, lambda: self._admit(task))
        self._ensure_dispatcher()
        return task

    def spawn_all(self, tasks) -> List[Task]:
        return [self.spawn(t) for t in tasks]

    def _admit(self, task: Task) -> None:
        task.state = TaskState.READY
        task.accounting.arrival = self.sim.now
        self.service.register_task(task)
        self.bus.publish(Admit(self.sim.now, task.name, source=self.SOURCE))
        self._make_ready(task)

    def _make_ready(self, task: Task) -> None:
        task.state = TaskState.READY
        self._progress[task.tid].enqueued_at = self.sim.now
        self.scheduler.enqueue(task)
        self._kick()

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _ensure_dispatcher(self) -> None:
        if not self._dispatcher_started:
            self._dispatcher_started = True
            self.sim.process(self._dispatcher(), name="dispatcher")

    # -- the CPU loop ------------------------------------------------------------
    def _dispatcher(self):
        while True:
            # Let every event scheduled for the current instant (admissions,
            # unblocks) settle before making a scheduling decision.
            yield self.sim.timeout(0)
            task = self.scheduler.pick()
            if task is None:
                if self._all_done():
                    return
                self._wakeup = self.sim.event()
                yield self._wakeup
                self._wakeup = None
                continue
            prog = self._progress[task.tid]
            task.accounting.ready_wait_time += self.sim.now - prog.enqueued_at
            if task.accounting.first_dispatch is None:
                task.accounting.first_dispatch = self.sim.now
            task.state = TaskState.RUNNING
            self.total_context_switches += 1
            self.bus.publish(
                Dispatch(self.sim.now, task.name, source=self.SOURCE)
            )
            if self.context_switch:
                yield self.sim.timeout(self.context_switch)
            self.service.on_dispatch(task)
            yield from self._run_quantum(task)

    def _run_quantum(self, task: Task):
        """Run ``task`` on the CPU until it blocks, exhausts its quantum,
        or finishes."""
        prog = self._progress[task.tid]
        budget = self.scheduler.quantum(task)
        while True:
            if prog.step_index >= len(task.program):
                self._finish(task)
                return
            step = task.program[prog.step_index]
            if isinstance(step, CpuBurst):
                if prog.remaining is None:
                    prog.remaining = step.duration
                slice_ = min(budget, prog.remaining)
                if slice_ > 0:
                    yield self.sim.timeout(slice_)
                    task.accounting.cpu_time += slice_
                    prog.remaining -= slice_
                    budget -= slice_
                if prog.remaining <= 1e-15:
                    prog.remaining = None
                    prog.step_index += 1
                if budget <= 1e-15:
                    if prog.step_index < len(task.program):
                        self.bus.publish(
                            QuantumExpired(self.sim.now, task.name,
                                           source=self.SOURCE)
                        )
                        self._make_ready(task)
                        return
            elif isinstance(step, FpgaOp):
                if step.config not in task.configs:
                    raise SyscallError(
                        f"task {task.name!r} uses undeclared config "
                        f"{step.config!r}"
                    )
                prog.step_index += 1
                task.state = TaskState.WAITING
                task.accounting.n_fpga_ops += 1
                op_id = self._next_op_id
                self._next_op_id += 1
                self.bus.publish(
                    FpgaRequest(self.sim.now, task.name, source=self.SOURCE,
                                config=step.config, op_id=op_id)
                )
                if self.op_deadline is not None:
                    self._open_ops[op_id] = (task.name, step.config)
                    self.sim.schedule_callback(
                        self.op_deadline,
                        lambda oid=op_id: self._check_op_deadline(oid),
                    )
                self.sim.process(
                    self._fpga_wrapper(task, step, op_id),
                    name=f"fpga:{task.name}",
                )
                return  # the CPU is free while the task waits
            else:  # pragma: no cover - guarded by Task typing
                raise TypeError(f"unknown step {step!r}")

    def _check_op_deadline(self, op_id: int) -> None:
        open_op = self._open_ops.get(op_id)
        if open_op is not None:
            task, config = open_op
            raise DeadlockError(
                f"operation {op_id} ({config!r}) of task {task!r} is still "
                f"open {self.op_deadline:g}s after its request "
                f"(op_deadline liveness watchdog)"
            )

    def _fpga_wrapper(self, task: Task, op: FpgaOp, op_id: int):
        yield from self.service.execute(task, op)
        self._open_ops.pop(op_id, None)
        self.bus.publish(
            FpgaComplete(self.sim.now, task.name, source=self.SOURCE,
                         config=op.config, op_id=op_id)
        )
        if self._progress[task.tid].step_index >= len(task.program):
            self._finish(task)
        else:
            self._make_ready(task)

    def _finish(self, task: Task) -> None:
        task.state = TaskState.DONE
        task.accounting.completion = self.sim.now
        self.service.on_task_exit(task)
        self.bus.publish(TaskDone(self.sim.now, task.name, source=self.SOURCE))
        self._kick()

    def _all_done(self) -> bool:
        return all(t.state is TaskState.DONE for t in self.tasks)

    # -- service queries -----------------------------------------------------
    def next_fpga_config(self, task: Task) -> Optional[str]:
        """The configuration of the task's next FPGA operation, if any.

        Services use this at dispatch time to load configurations
        *implicitly* when a task is started or reactivated (paper §3's
        eager variant of dynamic loading).
        """
        prog = self._progress.get(task.tid)
        if prog is None:
            return None
        for step in task.program[prog.step_index:]:
            if isinstance(step, FpgaOp):
                return step.config
        return None

    # -- running -----------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> RunStats:
        """Run the simulation to completion and return the run statistics.

        Raises :class:`DeadlockError` if the calendar empties (or ``until``
        passes) while tasks are unfinished — e.g. a task starving forever
        on a partition request (the paper's §4 hazard).
        """
        self.sim.run(until=until)
        stuck = [
            f"{t.name}({t.state.value})"
            for t in self.tasks
            if t.state is not TaskState.DONE
        ]
        if stuck:
            raise DeadlockError(f"unfinished tasks: {stuck[:8]}")
        return run_stats(self.tasks, makespan=self._makespan())

    def _makespan(self) -> float:
        if not self.tasks:
            return 0.0
        return max(
            (t.accounting.completion or 0.0) for t in self.tasks
        ) - min(t.accounting.arrival for t in self.tasks)

    def stats(self) -> RunStats:
        """Statistics of an already finished run."""
        return run_stats(self.tasks, makespan=self._makespan())
