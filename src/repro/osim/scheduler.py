"""CPU scheduling policies for the simulated kernel.

The kernel asks the scheduler two things: which ready task to dispatch
next, and how long its quantum is.  Three classic policies are provided;
the paper's observation that a non-preemptable FPGA "implicitly forces the
scheduling to a strictly FIFO policy" (§4) is tested by comparing runs
under :class:`RoundRobin` with different FPGA services.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from .task import Task

__all__ = ["Scheduler", "RoundRobin", "Fifo", "PriorityScheduler"]


class Scheduler(ABC):
    """Ready-queue policy."""

    def __init__(self) -> None:
        self._ready: List[Task] = []

    # -- queue ops ----------------------------------------------------------
    def enqueue(self, task: Task) -> None:
        self._ready.append(task)

    def __len__(self) -> int:
        return len(self._ready)

    @property
    def ready_tasks(self) -> List[Task]:
        return list(self._ready)

    @abstractmethod
    def pick(self) -> Optional[Task]:
        """Remove and return the next task to run (None if idle)."""

    @abstractmethod
    def quantum(self, task: Task) -> float:
        """CPU time slice granted to ``task`` (inf = run burst to end)."""


class RoundRobin(Scheduler):
    """Time-shared FIFO with a fixed quantum — the paper's time-shared
    multitasking baseline."""

    def __init__(self, time_slice: float = 10e-3) -> None:
        super().__init__()
        if time_slice <= 0:
            raise ValueError("time_slice must be positive")
        self.time_slice = time_slice

    def pick(self) -> Optional[Task]:
        return self._ready.pop(0) if self._ready else None

    def quantum(self, task: Task) -> float:
        return self.time_slice


class Fifo(Scheduler):
    """Run-to-completion batch scheduling (each CPU burst runs whole)."""

    def pick(self) -> Optional[Task]:
        return self._ready.pop(0) if self._ready else None

    def quantum(self, task: Task) -> float:
        return float("inf")


class PriorityScheduler(Scheduler):
    """Preemptionless static priorities with round-robin inside a level."""

    def __init__(self, time_slice: float = 10e-3) -> None:
        super().__init__()
        if time_slice <= 0:
            raise ValueError("time_slice must be positive")
        self.time_slice = time_slice

    def pick(self) -> Optional[Task]:
        if not self._ready:
            return None
        best = min(range(len(self._ready)), key=lambda i: (self._ready[i].priority, i))
        return self._ready.pop(best)

    def quantum(self, task: Task) -> float:
        return self.time_slice
