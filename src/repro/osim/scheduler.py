"""CPU scheduling for the simulated kernel.

The kernel asks the scheduler two things: which ready task to dispatch
next, and how long its quantum is.  Since the scheduling-engine refactor
the *policy* lives in :mod:`repro.core.scheduling` as a pure
:class:`~repro.core.scheduling.CpuSchedulerPolicy`; the host here,
:class:`PolicyScheduler`, owns the mutable ready queue and keeps a fast
path matched to the strategy's declared order — an O(1)
:class:`collections.deque` for FIFO disciplines, an O(log n) heap keyed
``(key(task), seq)`` for enqueue-time keys, and the pure
``pick(ReadyView)`` protocol for time-varying keys (aging).

The classic policy classes (:class:`Fifo`, :class:`RoundRobin`,
:class:`PriorityScheduler`) remain as thin strategy bindings with their
seed constructor signatures, reproduced decision-for-decision; the
paper's observation that a non-preemptable FPGA "implicitly forces the
scheduling to a strictly FIFO policy" (§4) is tested by comparing runs
under :class:`RoundRobin` with different FPGA services.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from ..core.scheduling import ReadyEntry

__all__ = [
    "Scheduler",
    "PolicyScheduler",
    "RoundRobin",
    "Fifo",
    "PriorityScheduler",
]


def _zero_clock() -> float:
    return 0.0


class Scheduler(ABC):
    """Ready-queue policy host.

    The kernel binds its simulation clock via :meth:`bind_clock` so
    time-aware strategies (aging, deadline slack) see ``sim.now``; an
    unbound scheduler reads time 0.0, which every time-blind strategy
    ignores.
    """

    def __init__(self) -> None:
        self._ready: List[Task] = []
        self._clock: Callable[[], float] = _zero_clock

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock (called by the kernel)."""
        self._clock = clock

    # -- queue ops ----------------------------------------------------------
    def enqueue(self, task: Task) -> None:
        self._ready.append(task)

    def __len__(self) -> int:
        return len(self._ready)

    @property
    def ready_tasks(self) -> List[Task]:
        return list(self._ready)

    @abstractmethod
    def pick(self) -> Optional[Task]:
        """Remove and return the next task to run (None if idle)."""

    @abstractmethod
    def quantum(self, task: Task) -> float:
        """CPU time slice granted to ``task`` (inf = run burst to end)."""


class PolicyScheduler(Scheduler):
    """Drive a pure :class:`~repro.core.scheduling.CpuSchedulerPolicy`.

    Parameters
    ----------
    policy:
        A strategy instance or registry name (kwargs forwarded to the
        strategy constructor, see
        :data:`~repro.core.scheduling.CPU_SCHEDULERS`).

    The host keeps the queue in an insertion-ordered map ``seq ->
    ReadyEntry`` (so :attr:`ready_tasks` snapshots arrival order, like
    the seed list) plus the order-matched fast structure.  Decision
    equivalence between the fast paths and the strategy's pure
    ``pick()`` is pinned by the scheduler property tests.
    """

    def __init__(self, policy, **kw) -> None:
        from ..core.scheduling import make_cpu_policy

        super().__init__()
        self.policy = make_cpu_policy(policy, **kw)
        self._seq = 0
        #: seq -> ReadyEntry, insertion-ordered (arrival order).
        self._queue: Dict[int, "ReadyEntry"] = {}
        #: FIFO fast path: enqueue tickets, oldest left.
        self._fifo: Deque[int] = deque()
        #: Keyed fast path: (key(task), seq) min-heap.
        self._heap: List[Tuple] = []

    # -- queue ops ----------------------------------------------------------
    def enqueue(self, task: Task) -> None:
        from ..core.scheduling import ReadyEntry

        seq = self._seq
        self._seq += 1
        self._queue[seq] = ReadyEntry(
            task=task, seq=seq, enqueued_at=self._clock()
        )
        order = self.policy.order
        if order == "fifo":
            self._fifo.append(seq)
        elif order == "keyed":
            heapq.heappush(self._heap, (self.policy.key(task), seq))

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def ready_tasks(self) -> List[Task]:
        return [entry.task for entry in self._queue.values()]

    def pick(self) -> Optional[Task]:
        if not self._queue:
            return None
        order = self.policy.order
        if order == "fifo":
            return self._queue.pop(self._fifo.popleft()).task
        if order == "keyed":
            # Tickets leave the heap only here, so the heap top is
            # always live while the queue is non-empty.
            _key, seq = heapq.heappop(self._heap)
            return self._queue.pop(seq).task
        from ..core.scheduling import ReadyView

        view = ReadyView(now=self._clock(),
                         entries=tuple(self._queue.values()))
        decision = self.policy.pick(view)
        if decision is None:
            return None
        entry = self._queue.pop(decision.seq, None)
        if entry is None:
            raise ValueError(
                f"{self.policy!r} picked unknown ready entry "
                f"seq={decision.seq}"
            )
        return entry.task

    def quantum(self, task: Task) -> float:
        return self.policy.quantum(task)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.policy!r} n={len(self)}>"


class RoundRobin(PolicyScheduler):
    """Time-shared FIFO with a fixed quantum — the paper's time-shared
    multitasking baseline."""

    def __init__(self, time_slice: float = 10e-3) -> None:
        super().__init__("rr", time_slice=time_slice)
        self.time_slice = time_slice

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RoundRobin time_slice={self.time_slice!r} n={len(self)}>"


class Fifo(PolicyScheduler):
    """Run-to-completion batch scheduling (each CPU burst runs whole)."""

    def __init__(self) -> None:
        super().__init__("fifo")


class PriorityScheduler(PolicyScheduler):
    """Preemptionless static priorities with round-robin inside a level."""

    def __init__(self, time_slice: float = 10e-3) -> None:
        super().__init__("priority", time_slice=time_slice)
        self.time_slice = time_slice
