"""The OS ↔ FPGA-service boundary.

The paper folds FPGA management into the operating system "exactly as the
operating system does for all the other shared resources" (§3).  Here that
boundary is :class:`FpgaService`: the kernel is policy-free and delegates
every FPGA operation to a service implementation.  All the paper's
virtualization strategies (dynamic loading, partitioning, overlaying,
segmentation, pagination) are drop-in :class:`FpgaService` subclasses in
:mod:`repro.core` — swapping policies never touches kernel code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from .task import FpgaOp, Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

__all__ = ["FpgaService", "NullFpgaService", "SyscallError"]


class SyscallError(Exception):
    """A task invoked the FPGA service illegally (e.g. undeclared config)."""


class FpgaService(ABC):
    """Policy object the kernel delegates FPGA operations to.

    Lifecycle: the kernel calls :meth:`attach` once, then
    :meth:`register_task` at each task's admission (the ``fopen``-style
    declaration), :meth:`execute` for every :class:`FpgaOp` (as a simulation
    process — it may wait for partitions, charge reconfiguration time and so
    on), :meth:`on_dispatch` at every context switch to the task, and
    :meth:`on_task_exit` when the task finishes.
    """

    def attach(self, kernel: "Kernel") -> None:
        """Called once when the kernel is constructed."""
        self.kernel = kernel

    def register_task(self, task: Task) -> None:
        """Declare the task's configurations in the OS tables."""

    def on_dispatch(self, task: Task) -> None:
        """Hook at every context switch to ``task`` (eager loaders use it)."""

    def on_task_exit(self, task: Task) -> None:
        """The task finished; release anything it held."""

    @abstractmethod
    def execute(self, task: Task, op: FpgaOp):
        """Simulation-process body (a generator) performing ``op`` for
        ``task``; returns when the operation's results are available."""


class NullFpgaService(FpgaService):
    """Executes FPGA ops in zero time — for kernel-only tests."""

    def execute(self, task: Task, op: FpgaOp):
        if op.config not in task.configs:
            raise SyscallError(
                f"task {task.name!r} uses undeclared config {op.config!r}"
            )
        yield self.kernel.sim.timeout(0)
