"""Task model for the simulated multitasking operating system.

A task is a *program*: a deterministic sequence of CPU bursts and FPGA
operations (the paper's model of an application that offloads selected
algorithms to the FPGA co-processor board, §2/§3).  Tasks also *declare*
the FPGA configurations they will use — the paper's ``fopen``-style
registration that fills the OS tables at task-load time (§3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

__all__ = ["TaskState", "CpuBurst", "FpgaOp", "Step", "Task", "TaskAccounting"]


class TaskState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"        # blocked on the FPGA service
    SUSPENDED = "suspended"    # blocked on a partition / admission queue
    DONE = "done"


@dataclass(frozen=True)
class CpuBurst:
    """``duration`` seconds of pure CPU work (time-sliced by the kernel)."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative CPU burst {self.duration}")


@dataclass(frozen=True)
class FpgaOp:
    """One hardware-accelerated operation.

    Attributes
    ----------
    config:
        Name of the declared configuration implementing the algorithm.
    cycles:
        Clock cycles of work; once resident the operation takes
        ``cycles × critical_path(config)`` seconds of FPGA time.
    io_words:
        Words transferred over the device pins for this operation (drives
        the I/O-multiplexing cost model, paper §2).
    """

    config: str
    cycles: int
    io_words: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError(f"FpgaOp needs >= 1 cycle, got {self.cycles}")
        if self.io_words < 0:
            raise ValueError("negative io_words")


Step = Union[CpuBurst, FpgaOp]

_tid_counter = itertools.count(1)


@dataclass
class TaskAccounting:
    """Per-task time accounting, filled in by the kernel and FPGA service."""

    arrival: float = 0.0
    first_dispatch: Optional[float] = None
    completion: Optional[float] = None
    cpu_time: float = 0.0
    fpga_exec_time: float = 0.0       #: useful cycles on the fabric
    fpga_reconfig_time: float = 0.0   #: loads/unloads charged to this task
    fpga_state_time: float = 0.0      #: state save/restore charged
    fpga_io_time: float = 0.0         #: pin-multiplexed transfer time
    fpga_wait_time: float = 0.0       #: queueing for device/partition
    ready_wait_time: float = 0.0      #: waiting for the CPU
    n_fpga_ops: int = 0
    n_reconfigs: int = 0
    n_preemptions: int = 0
    n_rollbacks: int = 0
    #: Set (once) by the FPGA service when the task completes after its
    #: declared deadline — the idempotency latch behind the
    #: ``DeadlineMiss`` telemetry event.
    deadline_missed: bool = False

    @property
    def turnaround(self) -> Optional[float]:
        if self.completion is None:
            return None
        return self.completion - self.arrival

    @property
    def fpga_overhead_time(self) -> float:
        """All non-useful FPGA-related time."""
        return (
            self.fpga_reconfig_time
            + self.fpga_state_time
            + self.fpga_wait_time
            + self.fpga_io_time
        )


class Task:
    """One application task.

    Parameters
    ----------
    name:
        Human-readable identifier (unique names make traces readable).
    program:
        The step sequence.
    configs:
        Configuration names this task declares (defaults to those used by
        its FpgaOps).  Declaring extra configurations is legal; using an
        undeclared one is a kernel error — mirroring the paper's rule that
        configurations must be registered in the OS tables up front.
    priority:
        Lower = more important (only priority schedulers look at it —
        :class:`~repro.osim.scheduler.PriorityScheduler` and the
        ``aged-priority`` strategy, which decays it with waiting time).
    arrival:
        Simulation time at which the task enters the system.  Absolute
        (not relative to spawn); the kernel admits the task at exactly
        this instant and deadline slack is measured from it.
    deadline:
        Optional absolute completion deadline in simulation seconds.
        Purely advisory metadata: the kernel never aborts a late task.
        Deadline-aware engines read it — ``edf`` CPU scheduling orders
        the ready queue by it, the ``cost-aware`` fabric strategy
        preempts under waiter deadline pressure — and the FPGA service
        publishes a ``DeadlineMiss`` event (counted in
        ``ServiceMetrics.n_deadline_misses``) when the task finishes
        past it.  ``None`` (the default) = no deadline.
    """

    def __init__(
        self,
        name: str,
        program: Sequence[Step],
        configs: Optional[Sequence[str]] = None,
        priority: int = 0,
        arrival: float = 0.0,
        deadline: Optional[float] = None,
    ) -> None:
        self.tid = next(_tid_counter)
        self.name = name
        self.program: List[Step] = list(program)
        used = [s.config for s in self.program if isinstance(s, FpgaOp)]
        self.configs: List[str] = list(
            dict.fromkeys(used if configs is None else list(configs))
        )
        missing = set(used) - set(self.configs)
        if missing:
            raise ValueError(
                f"task {name!r} uses undeclared configurations {sorted(missing)}"
            )
        self.priority = priority
        self.arrival = arrival
        if deadline is not None and deadline < arrival:
            raise ValueError(
                f"task {name!r} deadline {deadline} precedes its "
                f"arrival {arrival}"
            )
        self.deadline = deadline
        self.state = TaskState.NEW
        self.accounting = TaskAccounting(arrival=arrival)
        #: Set by the FPGA service: most recently used configuration.
        self.current_config: Optional[str] = None

    @property
    def total_cpu_demand(self) -> float:
        return sum(s.duration for s in self.program if isinstance(s, CpuBurst))

    @property
    def fpga_ops(self) -> List[FpgaOp]:
        return [s for s in self.program if isinstance(s, FpgaOp)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name!r} #{self.tid} {self.state.value}>"
