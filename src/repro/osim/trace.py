"""Event tracing and run-level statistics.

:class:`Trace` is the legacy kernel-facing event log.  Since the unified
telemetry spine (:mod:`repro.telemetry`) it is a *derived subscriber* of
the event bus: typed events that historically appeared in the trace carry
their legacy ``kind`` string and are folded back into identical
:class:`TraceEvent` rows, so every query (`of_kind`, `count`, indexing)
behaves exactly as before the refactor.  The experiment harness reduces
finished runs to a :class:`RunStats` row — the unit every benchmark table
is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .task import Task

__all__ = ["TraceEvent", "Trace", "RunStats", "run_stats",
           "DEFAULT_MAX_TRACE_EVENTS"]

#: The one default trace bound every entry point shares (see DESIGN.md
#: §7c): large enough that no realistic experiment truncates (the whole
#: benchmark suite stays under ~10^5 rows), small enough that a runaway
#: million-task run cannot exhaust memory.  Pass ``max_trace_events=None``
#: for the legacy unbounded behaviour.
DEFAULT_MAX_TRACE_EVENTS = 1_000_000


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence."""

    time: float
    kind: str          #: e.g. "dispatch", "fpga-load", "fpga-exec", "done"
    task: str          #: task name ("" for system-wide events)
    detail: str = ""


class Trace:
    """Event log with simple queries, fed by the telemetry bus.

    Parameters
    ----------
    enabled:
        ``False`` records nothing (queries return empty).
    max_events:
        ``None`` = unbounded (legacy behaviour).  Otherwise keep only the
        most recent ``max_events`` rows in a ring and count the overflow
        in :attr:`dropped` — million-task runs stay bounded in memory.
    """

    def __init__(self, enabled: bool = True,
                 max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be a positive integer or None")
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0
        self._events: List[TraceEvent] = []
        self._start = 0  # ring start index when bounded

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        if self._start == 0:
            return self._events
        return self._events[self._start:] + self._events[:self._start]

    def log(self, time: float, kind: str, task: str = "", detail: str = "") -> None:
        if not self.enabled:
            return
        ev = TraceEvent(time, kind, task, detail)
        if self.max_events is None or len(self._events) < self.max_events:
            self._events.append(ev)
            return
        self._events[self._start] = ev
        self._start = (self._start + 1) % self.max_events
        self.dropped += 1

    def record(self, event) -> None:
        """Bus subscriber: fold a typed telemetry event into the legacy
        log iff it has a legacy ``kind`` (bus-only events are skipped, so
        the trace content matches the pre-bus implementation exactly)."""
        kind = event.kind
        if kind is not None:
            self.log(event.time, kind, event.task, event.detail)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def __len__(self) -> int:
        return len(self._events)


@dataclass
class RunStats:
    """Aggregate statistics of one finished simulation run."""

    makespan: float
    n_tasks: int
    mean_turnaround: float
    max_turnaround: float
    total_cpu_time: float
    total_fpga_exec: float
    total_fpga_reconfig: float
    total_fpga_state: float
    total_fpga_wait: float
    total_fpga_io: float
    n_reconfigs: int
    n_preemptions: int
    n_rollbacks: int
    per_task: Dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def fpga_overhead(self) -> float:
        return (
            self.total_fpga_reconfig
            + self.total_fpga_state
            + self.total_fpga_wait
            + self.total_fpga_io
        )

    @property
    def useful_fraction(self) -> float:
        """Useful FPGA compute over (useful + all FPGA overhead) — the
        experiments' primary efficiency metric."""
        denom = self.total_fpga_exec + self.fpga_overhead
        return 1.0 if denom == 0 else self.total_fpga_exec / denom

    @property
    def fpga_utilization(self) -> float:
        """Useful FPGA compute over the whole run."""
        return 0.0 if self.makespan == 0 else self.total_fpga_exec / self.makespan


def run_stats(tasks: Iterable[Task], makespan: Optional[float] = None) -> RunStats:
    """Reduce finished tasks to a :class:`RunStats` row."""
    tasks = list(tasks)
    if not tasks:
        # An empty run is a valid (degenerate) run: zero work, zero span.
        return RunStats(
            makespan=makespan if makespan is not None else 0.0,
            n_tasks=0,
            mean_turnaround=0.0,
            max_turnaround=0.0,
            total_cpu_time=0.0,
            total_fpga_exec=0.0,
            total_fpga_reconfig=0.0,
            total_fpga_state=0.0,
            total_fpga_wait=0.0,
            total_fpga_io=0.0,
            n_reconfigs=0,
            n_preemptions=0,
            n_rollbacks=0,
        )
    unfinished = [t.name for t in tasks if t.accounting.completion is None]
    if unfinished:
        raise ValueError(f"tasks not finished: {unfinished[:5]}")
    accs = [t.accounting for t in tasks]
    turnarounds = [a.turnaround for a in accs]
    span = makespan if makespan is not None else max(a.completion for a in accs)
    return RunStats(
        makespan=span,
        n_tasks=len(tasks),
        mean_turnaround=sum(turnarounds) / len(turnarounds),
        max_turnaround=max(turnarounds),
        total_cpu_time=sum(a.cpu_time for a in accs),
        total_fpga_exec=sum(a.fpga_exec_time for a in accs),
        total_fpga_reconfig=sum(a.fpga_reconfig_time for a in accs),
        total_fpga_state=sum(a.fpga_state_time for a in accs),
        total_fpga_wait=sum(a.fpga_wait_time for a in accs),
        total_fpga_io=sum(a.fpga_io_time for a in accs),
        n_reconfigs=sum(a.n_reconfigs for a in accs),
        n_preemptions=sum(a.n_preemptions for a in accs),
        n_rollbacks=sum(a.n_rollbacks for a in accs),
        per_task={t.name: t.accounting for t in tasks},
    )
