"""Event tracing and run-level statistics.

Every kernel/service action appends a :class:`TraceEvent`; the experiment
harness reduces finished runs to a :class:`RunStats` row — the unit every
benchmark table is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .task import Task

__all__ = ["TraceEvent", "Trace", "RunStats", "run_stats"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence."""

    time: float
    kind: str          #: e.g. "dispatch", "fpga-load", "fpga-exec", "done"
    task: str          #: task name ("" for system-wide events)
    detail: str = ""


class Trace:
    """Append-only event log with simple queries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def log(self, time: float, kind: str, task: str = "", detail: str = "") -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, kind, task, detail))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class RunStats:
    """Aggregate statistics of one finished simulation run."""

    makespan: float
    n_tasks: int
    mean_turnaround: float
    max_turnaround: float
    total_cpu_time: float
    total_fpga_exec: float
    total_fpga_reconfig: float
    total_fpga_state: float
    total_fpga_wait: float
    total_fpga_io: float
    n_reconfigs: int
    n_preemptions: int
    n_rollbacks: int
    per_task: Dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def fpga_overhead(self) -> float:
        return (
            self.total_fpga_reconfig
            + self.total_fpga_state
            + self.total_fpga_wait
            + self.total_fpga_io
        )

    @property
    def useful_fraction(self) -> float:
        """Useful FPGA compute over (useful + all FPGA overhead) — the
        experiments' primary efficiency metric."""
        denom = self.total_fpga_exec + self.fpga_overhead
        return 1.0 if denom == 0 else self.total_fpga_exec / denom

    @property
    def fpga_utilization(self) -> float:
        """Useful FPGA compute over the whole run."""
        return 0.0 if self.makespan == 0 else self.total_fpga_exec / self.makespan


def run_stats(tasks: Iterable[Task], makespan: Optional[float] = None) -> RunStats:
    """Reduce finished tasks to a :class:`RunStats` row."""
    tasks = list(tasks)
    if not tasks:
        raise ValueError("no tasks")
    unfinished = [t.name for t in tasks if t.accounting.completion is None]
    if unfinished:
        raise ValueError(f"tasks not finished: {unfinished[:5]}")
    accs = [t.accounting for t in tasks]
    turnarounds = [a.turnaround for a in accs]
    span = makespan if makespan is not None else max(a.completion for a in accs)
    return RunStats(
        makespan=span,
        n_tasks=len(tasks),
        mean_turnaround=sum(turnarounds) / len(turnarounds),
        max_turnaround=max(turnarounds),
        total_cpu_time=sum(a.cpu_time for a in accs),
        total_fpga_exec=sum(a.fpga_exec_time for a in accs),
        total_fpga_reconfig=sum(a.fpga_reconfig_time for a in accs),
        total_fpga_state=sum(a.fpga_state_time for a in accs),
        total_fpga_wait=sum(a.fpga_wait_time for a in accs),
        total_fpga_io=sum(a.fpga_io_time for a in accs),
        n_reconfigs=sum(a.n_reconfigs for a in accs),
        n_preemptions=sum(a.n_preemptions for a in accs),
        n_rollbacks=sum(a.n_rollbacks for a in accs),
        per_task={t.name: t.accounting for t in tasks},
    )
