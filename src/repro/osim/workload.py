"""Workload generators: reproducible task mixes for the experiments.

The paper argues qualitatively over application classes (multimedia
codecs, telecom encoders, device drivers, embedded diagnostics, §5);
these builders produce the corresponding task populations with seeded
randomness so every benchmark table regenerates identically.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .task import CpuBurst, FpgaOp, Step, Task

__all__ = [
    "alternating_task",
    "uniform_workload",
    "zipf_workload",
    "bursty_arrivals",
    "zipf_index",
]


def alternating_task(
    name: str,
    config: str,
    n_ops: int,
    cpu_burst: float,
    cycles: int,
    arrival: float = 0.0,
    io_words: int = 0,
    priority: int = 0,
    configs: Optional[Sequence[str]] = None,
) -> Task:
    """The canonical paper task: compute on the CPU, offload, repeat.

    ``n_ops`` FPGA operations on ``config``, separated (and preceded) by
    ``cpu_burst``-second CPU sections.
    """
    program: List[Step] = []
    for _ in range(n_ops):
        program.append(CpuBurst(cpu_burst))
        program.append(FpgaOp(config, cycles, io_words=io_words))
    program.append(CpuBurst(cpu_burst))
    return Task(name, program, configs=configs, arrival=arrival, priority=priority)


def uniform_workload(
    config_names: Sequence[str],
    n_tasks: int,
    ops_per_task: int,
    cpu_burst: float,
    cycles: int,
    seed: int = 0,
    arrival_spread: float = 0.0,
    io_words: int = 0,
) -> List[Task]:
    """``n_tasks`` alternating tasks, configurations assigned round-robin,
    arrivals uniform in ``[0, arrival_spread]`` (seeded)."""
    if not config_names:
        raise ValueError("need at least one configuration")
    rng = random.Random(seed)
    tasks = []
    for i in range(n_tasks):
        config = config_names[i % len(config_names)]
        arrival = rng.uniform(0, arrival_spread) if arrival_spread else 0.0
        tasks.append(
            alternating_task(
                f"task{i}", config, ops_per_task, cpu_burst, cycles,
                arrival=arrival, io_words=io_words,
            )
        )
    return tasks


def zipf_index(rng: random.Random, n: int, s: float = 1.2) -> int:
    """Sample an index in ``[0, n)`` with Zipf(s) popularity (0 hottest)."""
    weights = [1.0 / (i + 1) ** s for i in range(n)]
    total = sum(weights)
    x = rng.uniform(0, total)
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if x <= acc:
            return i
    return n - 1


def zipf_workload(
    config_names: Sequence[str],
    n_tasks: int,
    ops_per_task: int,
    cpu_burst: float,
    cycles: int,
    seed: int = 0,
    s: float = 1.2,
    arrival_spread: float = 0.0,
) -> List[Task]:
    """Tasks whose per-op configuration follows a Zipf popularity law —
    the overlaying scenario (§2): a few functions are hot, the rest are
    rarely used."""
    rng = random.Random(seed)
    tasks = []
    for i in range(n_tasks):
        program: List[Step] = []
        used: Dict[str, None] = {}
        for _ in range(ops_per_task):
            config = config_names[zipf_index(rng, len(config_names), s)]
            used[config] = None
            program.append(CpuBurst(cpu_burst))
            program.append(FpgaOp(config, cycles))
        program.append(CpuBurst(cpu_burst))
        arrival = rng.uniform(0, arrival_spread) if arrival_spread else 0.0
        tasks.append(
            Task(f"task{i}", program, configs=list(used), arrival=arrival)
        )
    return tasks


def bursty_arrivals(
    tasks: Sequence[Task], burst_gap: float, burst_size: int
) -> List[Task]:
    """Rewrite arrivals into bursts of ``burst_size`` tasks every
    ``burst_gap`` seconds (the churn driver of the fragmentation
    experiment E5)."""
    out = []
    for i, task in enumerate(tasks):
        task.arrival = (i // burst_size) * burst_gap
        task.accounting.arrival = task.arrival
        out.append(task)
    return out
