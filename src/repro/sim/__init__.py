"""Deterministic discrete-event simulation kernel.

This is the substrate beneath the simulated operating system
(:mod:`repro.osim`) and the VFPGA manager (:mod:`repro.core`).  It provides a
SimPy-style generator-process model: processes ``yield`` events, the
simulator advances virtual time between events, and all same-time ties break
deterministically in insertion order.
"""

from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Interrupt, Process
from .resources import Request, Resource, Store
from .simulator import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
