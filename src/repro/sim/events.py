"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-calendar design: an :class:`Event` is a
one-shot occurrence with a value (or an exception) and a list of callbacks.
Events move through three states::

    pending --> triggered --> processed

An event becomes *triggered* when it is given a value and placed on the
simulator calendar; it becomes *processed* once the simulator has popped it
and run its callbacks.  Processes (see :mod:`repro.sim.process`) suspend by
yielding events and are resumed by the event's callbacks.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Simulator

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "SimulationError"]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


#: Sentinel distinguishing "no value yet" from "value is None".
_PENDING = object()


class Event:
    """A one-shot occurrence on the simulation calendar.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.simulator.Simulator`.

    Notes
    -----
    ``callbacks`` is a list of one-argument callables invoked (with the event
    itself) when the simulator processes the event.  After processing,
    ``callbacks`` is set to ``None`` so that late registration is an error
    rather than a silent no-op.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list | None = []
        self._value: object = _PENDING
        self._ok: bool = True
        #: Set to True when a failure has been handled (prevents the
        #: simulator from escalating an unhandled failed event).
        self.defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the calendar."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self):
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value=None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every process waiting on the event.  If
        no waiter handles it, the simulator re-raises it at the top level
        (unless ``defused`` is set).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (chaining helper)."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.sim._enqueue(self, delay=0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value=None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=delay)


class _Condition(Event):
    """Base for composite events (:class:`AnyOf` / :class:`AllOf`)."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all events must share one simulator")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        # Only events whose callbacks have run count as "happened": a
        # Timeout is *triggered* (has a value) from creation, but it has not
        # occurred until the simulator processes it.
        return {
            ev: ev._value for ev in self.events
            if ev.processed and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once all constituent events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())
