"""Generator-based simulation processes.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
instances.  Yielding an event suspends the process until the event is
processed; the event's value is sent back into the generator (or its
exception thrown in).  This mirrors the coroutine style of SimPy, which the
simulated operating system in :mod:`repro.osim` is written in.
"""

from __future__ import annotations

import typing

from .events import Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["Process", "Interrupt", "InterruptedError_"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. "preempted").
    """

    @property
    def cause(self):
        return self.args[0]


#: Backwards-compatible alias (kept so downstream code can catch either name).
InterruptedError_ = Interrupt


class Process(Event):
    """Wraps a generator and drives it through the event calendar.

    A ``Process`` is itself an :class:`Event`: it triggers with the
    generator's return value when the generator finishes (or fails with the
    escaping exception).  Other processes can therefore ``yield`` a process
    to join on it.
    """

    __slots__ = ("generator", "name", "_target", "_started")

    def __init__(self, sim: "Simulator", generator, name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when running
        #: or finished).  Used by interrupt() to detach from the old target.
        self._target: Event | None = None
        self._started = False
        # Kick off the process at the current simulation time.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        sim._enqueue(init, delay=0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event (the event
        still fires, but this process no longer reacts to it).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.sim)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.sim._enqueue(interrupt_ev, delay=0.0)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self.triggered:
            # Already finished (e.g. an interrupt raced with completion).
            return
        # Detach from the event we were waiting on, if any.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self.sim._active_process = self
        try:
            if event._ok:
                next_ev = self.generator.send(event._value if self._started else None)
            else:
                event.defused = True
                next_ev = self.generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self._started = True
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._started = True
            self.fail(exc)
            return
        finally:
            self._started = True
            self.sim._active_process = None

        if not isinstance(next_ev, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_ev!r}, expected an Event"
            )
        if next_ev.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulator")
        if next_ev.processed:
            # Event already happened: resume immediately (next tick, t+0).
            relay = Event(self.sim)
            relay._ok = next_ev._ok
            relay._value = next_ev._value
            if not next_ev._ok:
                relay.defused = True
            relay.callbacks.append(self._resume)
            self.sim._enqueue(relay, delay=0.0)
            self._target = relay
        else:
            next_ev.callbacks.append(self._resume)
            self._target = next_ev

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"
