"""Shared-resource primitives built on the event kernel.

Provides the two constructs the simulated OS needs:

* :class:`Resource` — a capacity-limited resource with a FIFO (optionally
  priority-ordered) wait queue.  ``request()`` returns an event that triggers
  when a slot is granted; ``release()`` frees a slot.
* :class:`Store` — an unbounded (or bounded) FIFO of Python objects with
  blocking ``get``/``put``, used for message queues between OS components.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .events import Event, SimulationError
from .simulator import Simulator

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager inside process bodies::

        with resource.request() as req:
            yield req
            ...   # holding the resource
        # released on exit
    """

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.key = (priority, next(resource._ticket))
        resource._waiting.append(self)
        resource._waiting.sort(key=lambda r: r.key)
        resource._grant()

    def cancel(self) -> None:
        """Withdraw an ungranted request (granted requests must release)."""
        if self in self.resource._waiting:
            self.resource._waiting.remove(self)
        elif self in self.resource.users:
            raise SimulationError("cancel() on a granted request; use release()")

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        if self in self.resource.users:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """Capacity-limited shared resource with an ordered wait queue.

    Lower ``priority`` values are served first; ties are FIFO.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: List[Request] = []
        self._waiting: List[Request] = []
        self._ticket = itertools.count()

    @property
    def count(self) -> int:
        """Number of granted (active) requests."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim one slot; the returned event triggers when granted."""
        return Request(self, priority=priority)

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("release() of a request that is not held") from None
        self._grant()

    def _grant(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            req = self._waiting.pop(0)
            self.users.append(req)
            req.succeed(req)


class Store:
    """Blocking FIFO of arbitrary items.

    ``put`` blocks while the store is full (if bounded); ``get`` blocks while
    it is empty.  Both return events.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed(item)
                progress = True
            if self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progress = True
