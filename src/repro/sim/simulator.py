"""The discrete-event simulation calendar.

:class:`Simulator` keeps a priority queue of ``(time, priority, seq, event)``
entries.  ``seq`` is a monotone counter so that events scheduled for the same
time are processed in insertion order (deterministic FIFO tie-breaking —
essential for reproducible OS scheduling experiments).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process

__all__ = ["Simulator"]

#: Priority for ordinary events.
NORMAL = 1
#: Priority for urgent (kernel-internal) events at the same timestamp.
URGENT = 0


class Simulator:
    """Deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def proc(sim, log):
    ...     yield sim.timeout(5)
    ...     log.append(sim.now)
    >>> _ = sim.process(proc(sim, log))
    >>> sim.run()
    >>> log
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional per-step telemetry hook ``fn(now, queue_depth)`` —
        #: see :meth:`set_step_hook`.
        self._step_hook: Optional[Callable[[float, int], None]] = None

    # -- inspection -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_callback(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> Event:
        """Run ``fn()`` after ``delay`` time units; returns the trigger event."""
        ev = Event(self)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: fn())
        self._enqueue(ev, delay=delay, priority=priority)
        return ev

    # -- telemetry ---------------------------------------------------------
    def set_step_hook(
        self, hook: Optional[Callable[[float, int], None]]
    ) -> None:
        """Install ``hook(now, queue_depth)``, invoked after every event is
        processed (``None`` uninstalls).  This is the event-loop telemetry
        tap: the kernel uses it to publish
        :class:`~repro.telemetry.SimStep` events with the calendar depth
        when step telemetry is enabled.  Costs one ``None`` check per step
        when uninstalled."""
        self._step_hook = hook

    # -- main loop ---------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("calendar is empty")
        time, _prio, _seq, event = heapq.heappop(self._queue)
        if time < self._now:  # pragma: no cover - guarded by _enqueue
            raise SimulationError("time went backwards")
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            # An event failed and nobody was listening: escalate.
            raise event._value
        if self._step_hook is not None:
            self._step_hook(self._now, len(self._queue))

    def run(self, until: float | Event | None = None) -> None:
        """Run until the calendar empties, ``until`` time passes, or an
        ``until`` event is processed.

        Passing a time equal to ``now`` is allowed and processes all events
        scheduled at the current instant.
        """
        if isinstance(until, Event):
            stop = until
            if stop.processed:
                return
            sentinel: list = []
            stop.callbacks.append(lambda ev: sentinel.append(ev))
            while self._queue and not sentinel:
                self.step()
            if not sentinel and not stop.processed:
                raise SimulationError(
                    "run(until=event): calendar emptied before event fired"
                )
            return
        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(f"until={horizon} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
