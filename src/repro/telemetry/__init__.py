"""Unified telemetry spine: one typed event bus across every layer.

Before this package existed, observability was scattered: the kernel kept
a :class:`~repro.osim.trace.Trace`, every service hand-filled a
:class:`~repro.core.metrics.ServiceMetrics` at each charge site, and
tasks carried their own accounting — three disconnected views that were
cross-checked only informally.  Now there is one spine:

* layers **publish** frozen, typed events (:mod:`repro.telemetry.events`)
  into an :class:`EventBus` (:mod:`repro.telemetry.bus`);
* the legacy trace and the service metrics are **derived subscribers**
  (:mod:`repro.telemetry.recorders`) — their public APIs are unchanged;
* exporters (:mod:`repro.telemetry.exporters`) turn a recorded stream
  into JSONL or a Chrome ``trace_event`` file (open in Perfetto);
* the :class:`Profiler` (:mod:`repro.telemetry.profiling`) adds the
  wall-clock dimension for machine-readable benchmark artifacts.

Every future policy gets instrumentation for free by composing the
charging primitives in :class:`repro.core.base.VfpgaServiceBase`.
"""

from .bus import EventBus, Subscription, make_source
from .events import (
    EVENT_TYPES,
    Admit,
    BoardDispatch,
    Compact,
    ConfigPortOp,
    Dispatch,
    Evict,
    Exec,
    FpgaComplete,
    FpgaRequest,
    Hit,
    Load,
    Miss,
    OpStart,
    PageAccess,
    PageFault,
    PinWindow,
    PortTransfer,
    Preempt,
    Prefetch,
    QuantumExpired,
    Relocate,
    Repair,
    Rollback,
    ScrubPass,
    SegmentFault,
    SimStep,
    StateRestore,
    StateSave,
    Suspend,
    TaskDone,
    TelemetryEvent,
    Upset,
    Wait,
    event_type,
)
from .exporters import JsonlExporter, to_chrome_trace, to_jsonl
from .profiling import Profiler
from .recorders import EventLog, MetricsRecorder, derive_metrics

__all__ = [
    "EVENT_TYPES",
    "Admit",
    "BoardDispatch",
    "Compact",
    "ConfigPortOp",
    "Dispatch",
    "EventBus",
    "EventLog",
    "Evict",
    "Exec",
    "FpgaComplete",
    "FpgaRequest",
    "Hit",
    "JsonlExporter",
    "Load",
    "MetricsRecorder",
    "Miss",
    "OpStart",
    "PageAccess",
    "PageFault",
    "PinWindow",
    "PortTransfer",
    "Preempt",
    "Prefetch",
    "Profiler",
    "QuantumExpired",
    "Relocate",
    "Repair",
    "Rollback",
    "ScrubPass",
    "SegmentFault",
    "SimStep",
    "StateRestore",
    "StateSave",
    "Subscription",
    "Suspend",
    "TaskDone",
    "TelemetryEvent",
    "Upset",
    "Wait",
    "derive_metrics",
    "event_type",
    "make_source",
    "to_chrome_trace",
    "to_jsonl",
]
