"""Unified telemetry spine: one typed event bus across every layer.

Before this package existed, observability was scattered: the kernel kept
a :class:`~repro.osim.trace.Trace`, every service hand-filled a
:class:`~repro.core.metrics.ServiceMetrics` at each charge site, and
tasks carried their own accounting — three disconnected views that were
cross-checked only informally.  Now there is one spine:

* layers **publish** frozen, typed events (:mod:`repro.telemetry.events`)
  into an :class:`EventBus` (:mod:`repro.telemetry.bus`);
* the legacy trace and the service metrics are **derived subscribers**
  (:mod:`repro.telemetry.recorders`) — their public APIs are unchanged;
* exporters (:mod:`repro.telemetry.exporters`) turn a recorded stream
  into JSONL or a Chrome ``trace_event`` file (open in Perfetto) — and
  back (:func:`read_jsonl`), plus Prometheus text and per-span CSV;
* the :class:`Profiler` (:mod:`repro.telemetry.profiling`) adds the
  wall-clock dimension for machine-readable benchmark artifacts;
* the metrics layer (:mod:`repro.telemetry.metrics`) folds the stream
  into latency :class:`Histogram`\\ s (p50/p95/p99) and time-weighted
  utilization gauges (CLB occupancy, config-port busy, residency);
* the span layer (:mod:`repro.telemetry.spans`) pairs every
  ``FpgaRequest``/``FpgaComplete`` into a causal :class:`Span` with
  per-phase durations and preemption annotations;
* :mod:`repro.telemetry.report` renders both as the ``repro report``
  summary tables and the ``BENCH_*.json`` analytics block.

Every future policy gets instrumentation for free by composing the
charging primitives in :class:`repro.core.base.VfpgaServiceBase`.

On top of the passive stream, the audit layer makes it an active
watchdog:

* the :class:`Auditor` (:mod:`repro.telemetry.audit`) verifies the
  OS contract online — disjoint residency, serial config port, paired
  state save/restore versions, operation liveness, and a cross-check of
  stream-derived occupancy against the metrics gauge — publishing
  :class:`AuditViolation` events back onto the bus;
* the :class:`AnomalyDetector` (:mod:`repro.telemetry.anomaly`) adds
  rolling-window detectors (latency spikes, occupancy leaks,
  starvation) as warning-severity violations;
* :mod:`repro.telemetry.benchdiff` diffs two ``BENCH_*.json``
  artifacts and gates CI on wall-clock / event-count regressions;
* the SLO layer (:mod:`repro.telemetry.slo`) evaluates declarative
  per-source objectives (:class:`SloObjective`) with error budgets and
  burn-rate alerts — breaches come back as typed :class:`SloBreach`
  events — and decomposes every span into queue / reconfig / service
  stages per source (:class:`QueueingDecomposition`), so a p99
  regression is attributable instead of opaque.
"""

from .bus import EventBus, Subscription, make_source
from .events import (
    EVENT_TYPES,
    Admit,
    BoardDispatch,
    Compact,
    ConfigPortOp,
    DeadlineMiss,
    Dispatch,
    Evict,
    Exec,
    FpgaComplete,
    FpgaRequest,
    Hit,
    Load,
    Miss,
    OpStart,
    PageAccess,
    PageFault,
    PinWindow,
    Placement,
    PortTransfer,
    Preempt,
    Prefetch,
    QuantumExpired,
    Relocate,
    Repair,
    Rollback,
    SchedDecision,
    ScrubPass,
    SegmentFault,
    SimStep,
    StateRestore,
    StateSave,
    Suspend,
    TaskDone,
    TelemetryEvent,
    Upset,
    Wait,
    event_type,
    register_event_type,
    registered_event_types,
)
from .audit import INVARIANTS, AuditError, Auditor, AuditViolation, audit_events
from .anomaly import AnomalyDetector
from .benchdiff import BenchDiff, DiffRow, diff_benches, load_bench
from .exporters import (
    STAGE_FIELDS,
    JsonlExporter,
    from_record,
    read_jsonl,
    spans_to_csv,
    stages_to_csv,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from .metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsAggregator,
    TimeWeightedGauge,
    aggregate_events,
    log_buckets,
)
from .profiling import Profiler
from .recorders import EventLog, MetricsRecorder, derive_metrics
from .report import render_report, run_summary
from .slo import (
    STAGES,
    QueueingDecomposition,
    SloBreach,
    SloEngine,
    SloObjective,
    decompose_events,
    evaluate_slo,
    parse_slo_spec,
)
from .spans import SPAN_FIELDS, Span, SpanBuilder, build_spans

__all__ = [
    "EVENT_TYPES",
    "INVARIANTS",
    "LATENCY_BUCKETS",
    "SPAN_FIELDS",
    "STAGE_FIELDS",
    "STAGES",
    "Admit",
    "AnomalyDetector",
    "AuditError",
    "AuditViolation",
    "Auditor",
    "BenchDiff",
    "BoardDispatch",
    "Compact",
    "ConfigPortOp",
    "DeadlineMiss",
    "DiffRow",
    "Dispatch",
    "EventBus",
    "EventLog",
    "Evict",
    "Exec",
    "FpgaComplete",
    "FpgaRequest",
    "Histogram",
    "Hit",
    "JsonlExporter",
    "Load",
    "MetricsAggregator",
    "MetricsRecorder",
    "Miss",
    "OpStart",
    "PageAccess",
    "PageFault",
    "PinWindow",
    "PortTransfer",
    "Preempt",
    "Prefetch",
    "Profiler",
    "QuantumExpired",
    "Placement",
    "QueueingDecomposition",
    "Relocate",
    "Repair",
    "Rollback",
    "SchedDecision",
    "ScrubPass",
    "SegmentFault",
    "SimStep",
    "SloBreach",
    "SloEngine",
    "SloObjective",
    "Span",
    "SpanBuilder",
    "StateRestore",
    "StateSave",
    "Subscription",
    "Suspend",
    "TaskDone",
    "TelemetryEvent",
    "TimeWeightedGauge",
    "Upset",
    "Wait",
    "aggregate_events",
    "audit_events",
    "build_spans",
    "decompose_events",
    "derive_metrics",
    "diff_benches",
    "evaluate_slo",
    "event_type",
    "from_record",
    "load_bench",
    "log_buckets",
    "make_source",
    "parse_slo_spec",
    "read_jsonl",
    "register_event_type",
    "registered_event_types",
    "render_report",
    "run_summary",
    "spans_to_csv",
    "stages_to_csv",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
]
