"""Rolling-window anomaly detection over the telemetry stream.

The :class:`~repro.telemetry.audit.Auditor` proves hard contract
violations; this module flags *statistical* trouble — patterns that are
legal event by event but pathological in aggregate.  Detections are
published as warning-severity
:class:`~repro.telemetry.audit.AuditViolation` events (invariant ids
prefixed ``anomaly-``), so they ride the same export paths and the same
``repro audit`` report.

Detectors
---------
* ``anomaly-latency-spike`` — an operation's request→complete latency
  exceeds ``spike_factor`` × the trailing-window p95 (the window holds
  the last ``window`` completed latencies; detection starts once
  ``min_samples`` have been seen).
* ``anomaly-occupancy-leak`` — monotone residency drift: the *minimum*
  number of resident configurations over each successive window keeps
  strictly rising ``leak_windows`` times in a row — capacity that is
  claimed and never returned to the free pool.
* ``anomaly-starvation`` — an operation has been open longer than
  ``starvation_factor`` × the median completed latency (flagged once
  per op; complements the auditor's hard deadline).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .bus import EventBus
from .events import (
    Evict,
    FpgaComplete,
    FpgaRequest,
    Load,
    TelemetryEvent,
)
from .audit import AuditViolation

__all__ = ["AnomalyDetector"]


def _p95(values: List[float]) -> float:
    ordered = sorted(values)
    idx = max(0, min(len(ordered) - 1, int(0.95 * len(ordered)) - 1))
    return ordered[idx] if len(ordered) * 0.95 == int(len(ordered) * 0.95) \
        else ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


class AnomalyDetector:
    """Bus subscriber publishing warning-severity anomaly events.

    Parameters
    ----------
    bus:
        Subscribe immediately when given (anomalies are published back
        onto the same bus).
    window:
        Trailing-window size in completed operations (latency spike) and
        in residency observations (occupancy leak).
    min_samples:
        Completed operations required before spike/starvation detection
        starts — early operations always look slow.
    spike_factor:
        A completed latency above ``spike_factor × trailing p95`` is a
        spike.
    leak_windows:
        Consecutive windows of strictly rising residency minima that
        constitute a leak.
    starvation_factor:
        An open operation older than ``starvation_factor × median
        completed latency`` is starving.
    """

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        window: int = 32,
        min_samples: int = 8,
        spike_factor: float = 3.0,
        leak_windows: int = 3,
        starvation_factor: float = 10.0,
    ) -> None:
        if window < 2 or min_samples < 2:
            raise ValueError("window and min_samples must be at least 2")
        self.bus = bus
        self.window = window
        self.min_samples = min_samples
        self.spike_factor = spike_factor
        self.leak_windows = leak_windows
        self.starvation_factor = starvation_factor
        self.anomalies: List[AuditViolation] = []
        self._latencies: Deque[float] = deque(maxlen=window)
        self._n_completed = 0
        #: op_id -> (request time, task, config); flagged ids removed.
        self._open: Dict[int, Tuple[float, str, str]] = {}
        #: source -> current residency count.
        self._residency: Dict[str, int] = {}
        #: minima of the current observation window / past windows.
        self._window_min: Optional[int] = None
        self._window_fill = 0
        self._minima: List[int] = []
        if bus is not None:
            bus.subscribe_all(self)

    def _emit(self, time: float, invariant: str, message: str,
              task: str = "", source: str = "") -> None:
        v = AuditViolation(time, task, source=source, invariant=invariant,
                           severity="warning", message=message)
        self.anomalies.append(v)
        if self.bus is not None:
            self.bus.publish(v)

    # -- folding -------------------------------------------------------------
    def __call__(self, event: TelemetryEvent) -> None:
        cls = type(event)
        if cls is FpgaRequest:
            self._open[event.op_id] = (event.time, event.task, event.config)
        elif cls is FpgaComplete:
            self._on_complete(event)
        elif cls is Load:
            self._observe_residency(event.source,
                                    self._delta_load(event), event.time)
        elif cls is Evict:
            self._observe_residency(event.source, -1, event.time)
        if self._n_completed >= self.min_samples and self._open:
            self._check_starvation(event.time)

    # -- latency spike --------------------------------------------------------
    def _on_complete(self, e: FpgaComplete) -> None:
        started = self._open.pop(e.op_id, None)
        if started is None:
            return
        latency = e.time - started[0]
        if len(self._latencies) >= self.min_samples:
            p95 = _p95(list(self._latencies))
            if p95 > 0 and latency > self.spike_factor * p95:
                self._emit(
                    e.time, "anomaly-latency-spike",
                    f"operation {e.op_id} ({e.config!r}) took "
                    f"{latency:.3g}s, over {self.spike_factor:g}x the "
                    f"trailing p95 of {p95:.3g}s",
                    task=e.task,
                )
        self._latencies.append(latency)
        self._n_completed += 1

    # -- occupancy leak -------------------------------------------------------
    def _delta_load(self, e: Load) -> int:
        if e.exclusive:
            self._residency[e.source] = 0
            return e.count
        return e.count

    def _observe_residency(self, source: str, delta: int,
                           time: float) -> None:
        current = max(0, self._residency.get(source, 0) + delta)
        self._residency[source] = current
        total = sum(self._residency.values())
        if self._window_min is None or total < self._window_min:
            self._window_min = total
        self._window_fill += 1
        if self._window_fill < self.window:
            return
        self._minima.append(self._window_min)
        self._window_min = None
        self._window_fill = 0
        tail = self._minima[-(self.leak_windows + 1):]
        if len(tail) == self.leak_windows + 1 and \
                all(b > a for a, b in zip(tail, tail[1:])):
            self._emit(
                time, "anomaly-occupancy-leak",
                f"residency floor rose {self.leak_windows} windows in a "
                f"row ({' -> '.join(str(m) for m in tail)}): capacity is "
                f"being claimed and never freed",
                source=source,
            )
            self._minima.clear()

    # -- starvation -----------------------------------------------------------
    def _check_starvation(self, now: float) -> None:
        median = _median(list(self._latencies))
        if median <= 0:
            return
        bound = self.starvation_factor * median
        starving = [
            (op_id, started, task, config)
            for op_id, (started, task, config) in self._open.items()
            if now - started > bound
        ]
        for op_id, started, task, config in starving:
            del self._open[op_id]  # flag once
            self._emit(
                now, "anomaly-starvation",
                f"operation {op_id} ({config!r}) has been open for "
                f"{now - started:.3g}s, over {self.starvation_factor:g}x "
                f"the median completed latency of {median:.3g}s",
                task=task,
            )
