"""Online invariant auditing over the telemetry stream.

The VFPGA abstraction is an OS-level *contract*: partitions stay
disjoint, the configuration port is serial, a restore writes back the
state that was saved, every accepted operation completes.  The unit
tests check these statically; the :class:`Auditor` checks them **while a
workload runs**, from the event stream alone — it subscribes to the bus
like any recorder, keeps its own shadow ledgers, and publishes an
:class:`AuditViolation` event back onto the bus whenever the stream
contradicts the contract.  Because violations are ordinary telemetry
events they appear in the legacy trace (``kind="audit-violation"``),
JSONL recordings, Chrome traces and ``repro report`` with no extra
plumbing.

Invariants
----------
* ``double-allocation`` — no CLB is owned by two resident
  configurations: :class:`~repro.telemetry.events.Load` rectangles
  (``anchor`` + ``shape``) of one source must stay disjoint; reloading
  an already-resident handle is flagged too.
* ``evict-without-load`` — an :class:`~repro.telemetry.events.Evict`
  must name a handle the stream made resident (corrupted or reordered
  recordings trip this).
* ``state-pairing`` — a :class:`~repro.telemetry.events.StateRestore`
  must be preceded by a :class:`~repro.telemetry.events.StateSave` of
  the same (task, handle) carrying the same state ``version``.
* ``port-overlap`` — task-attributed configuration-port intervals
  (load / evict / state save / state restore) of one source must never
  overlap: the port is serial.  System events (``task == ""``, e.g.
  boot downloads) are exempt — boot is modeled as batch initialization.
* ``device-port-overlap`` — the same check over raw device-level
  :class:`~repro.telemetry.events.ConfigPortOp` events (opt-in via
  ``device_port=True``; meant for device-only streams such as the
  scrubbing experiment, where the service-level family is silent).
* ``op-deadline`` / ``op-never-completed`` — liveness: every
  :class:`~repro.telemetry.events.FpgaRequest` ``op_id`` must reach its
  :class:`~repro.telemetry.events.FpgaComplete` (within ``deadline``
  simulation seconds when configured; :meth:`Auditor.finish` flags
  operations still open at end of stream).
* ``occupancy-mismatch`` — the CLB occupancy derived from the auditor's
  own ledger must equal the
  :class:`~repro.telemetry.metrics.MetricsAggregator` gauge folded from
  the same stream: two independent subscribers cross-checking each
  other.

Modes: ``"lenient"`` (default) records and publishes violations;
``"strict"`` additionally raises :class:`AuditError` at the first
error-severity violation (the violation is published *before* the raise,
so recorders keep it).

Replay: :func:`audit_events` folds a recorded stream into a fresh
auditor — violation parity live-vs-replay is what the audit tests hold
every policy to.  Recorded ``AuditViolation`` events are ignored on
folding, so auditing an already-audited recording converges instead of
echoing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, List, Optional, Tuple

from .bus import EventBus
from .events import (
    ConfigPortOp,
    Evict,
    FpgaComplete,
    FpgaRequest,
    Load,
    StateRestore,
    StateSave,
    TelemetryEvent,
    register_event_type,
)
from .metrics import MetricsAggregator

__all__ = ["AuditViolation", "AuditError", "Auditor", "audit_events",
           "INVARIANTS"]

#: Invariant identifiers the auditor can report (anomaly detectors add
#: their own ``anomaly-*`` family — see :mod:`repro.telemetry.anomaly`).
INVARIANTS: Tuple[str, ...] = (
    "double-allocation",
    "evict-without-load",
    "state-pairing",
    "port-overlap",
    "device-port-overlap",
    "op-deadline",
    "op-never-completed",
    "occupancy-mismatch",
)


@register_event_type
@dataclass(frozen=True)
class AuditViolation(TelemetryEvent):
    """An invariant violation detected in the event stream.

    Published back onto the bus by the :class:`Auditor`, so it rides
    every existing export path.  ``offending`` holds compact renderings
    of the events that prove the violation.
    """

    invariant: str = ""
    severity: str = "error"     #: "error" | "warning"
    message: str = ""
    offending: Tuple[str, ...] = ()
    kind: ClassVar[Optional[str]] = "audit-violation"

    @property
    def detail(self) -> str:
        return f"{self.invariant}: {self.message}"


class AuditError(Exception):
    """Raised by a strict-mode :class:`Auditor`; carries the violation."""

    def __init__(self, violation: AuditViolation) -> None:
        super().__init__(f"[{violation.invariant}] {violation.message}")
        self.violation = violation


def _describe(e: TelemetryEvent) -> str:
    """Compact one-line rendering of an offending event."""
    skip = ("time", "task", "source")
    extras = ", ".join(
        f"{k}={v!r}" for k, v in e.to_record().items()
        if k not in skip and k != "event" and v not in ("", 0, 0.0, [0, 0])
    )
    head = f"{type(e).__name__}@{e.time:.9g}"
    who = e.task or e.source
    if who:
        head += f" [{who}]"
    return f"{head} {extras}" if extras else head


class _Rect:
    """A resident configuration's footprint (area-only when shape is
    unknown, e.g. streams recorded before ``Load.shape`` existed)."""

    __slots__ = ("anchor", "shape", "clbs", "desc")

    def __init__(self, anchor, shape, clbs, desc) -> None:
        self.anchor = anchor
        self.shape = shape
        self.clbs = clbs
        self.desc = desc

    @property
    def known(self) -> bool:
        return self.shape[0] > 0 and self.shape[1] > 0

    def overlaps(self, other: "_Rect") -> bool:
        if not (self.known and other.known):
            return False
        ax, ay = self.anchor
        bx, by = other.anchor
        aw, ah = self.shape
        bw, bh = other.shape
        return ax < bx + bw and bx < ax + aw and ay < by + bh and by < ay + ah


class _PortTimeline:
    """Serial-interval tracker: one busy window at a time per source."""

    __slots__ = ("end", "desc")

    def __init__(self) -> None:
        self.end = 0.0
        self.desc = ""


#: Absolute slack for interval comparisons (simulation times are exact
#: event-calendar values, but charge arithmetic can round).
_TIME_EPS = 1e-12


class Auditor:
    """Bus subscriber that continuously verifies stream invariants.

    Parameters
    ----------
    bus:
        Subscribe immediately when given (violations are published back
        onto the same bus).
    mode:
        ``"lenient"`` counts; ``"strict"`` raises :class:`AuditError`
        at the first error-severity violation.
    deadline:
        Liveness bound in simulation seconds: an operation still open
        that long after its request is a violation (``None`` = only
        end-of-stream completeness via :meth:`finish`).
    clb_capacity:
        Device CLB count; when given, per-source resident area may never
        exceed it (a second, geometry-free double-allocation net).
    device_port:
        Also audit raw :class:`~repro.telemetry.events.ConfigPortOp`
        intervals.  Off by default: service-level charges and the device
        hook describe the *same* physical transfer, so auditing both
        families at once would double-book the port.
    """

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        mode: str = "lenient",
        deadline: Optional[float] = None,
        clb_capacity: Optional[int] = None,
        device_port: bool = False,
    ) -> None:
        if mode not in ("lenient", "strict"):
            raise ValueError(f"mode must be 'lenient' or 'strict', not {mode!r}")
        self.mode = mode
        self.deadline = deadline
        self.clb_capacity = clb_capacity
        self.device_port = device_port
        self.bus = bus
        self.violations: List[AuditViolation] = []
        self.counts: Dict[str, int] = {}
        self.n_events = 0
        #: source -> handle -> footprint of the load that made it resident.
        self._ledger: Dict[str, Dict[str, _Rect]] = {}
        #: source -> independent occupancy aggregator (the cross-check).
        self._aggs: Dict[str, MetricsAggregator] = {}
        #: source -> service-level port timeline.
        self._port: Dict[str, _PortTimeline] = {}
        #: source -> device-level port timeline.
        self._device: Dict[str, _PortTimeline] = {}
        #: (source, task, handle) -> last saved state version.
        self._saved: Dict[Tuple[str, str, str], int] = {}
        #: op_id -> (request time, task, config); flagged ids stay out.
        self._open: Dict[int, Tuple[float, str, str]] = {}
        self._finished = False
        if bus is not None:
            bus.subscribe_all(self)

    # -- reporting -----------------------------------------------------------
    @property
    def n_errors(self) -> int:
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def n_warnings(self) -> int:
        return sum(1 for v in self.violations if v.severity != "error")

    @property
    def ok(self) -> bool:
        return not self.violations

    def _violate(self, time: float, invariant: str, message: str,
                 offending: Iterable[TelemetryEvent],
                 severity: str = "error", task: str = "",
                 source: str = "") -> None:
        v = AuditViolation(
            time, task, source=source, invariant=invariant,
            severity=severity, message=message,
            offending=tuple(_describe(e) for e in offending),
        )
        self.violations.append(v)
        self.counts[invariant] = self.counts.get(invariant, 0) + 1
        if self.bus is not None:
            self.bus.publish(v)
        if self.mode == "strict" and severity == "error":
            raise AuditError(v)

    def summary(self) -> Dict[str, object]:
        """JSON-ready violation report."""
        return {
            "n_events": self.n_events,
            "n_violations": len(self.violations),
            "n_errors": self.n_errors,
            "n_warnings": self.n_warnings,
            "by_invariant": dict(sorted(self.counts.items())),
            "violations": [v.to_record() for v in self.violations],
        }

    # -- folding -------------------------------------------------------------
    def __call__(self, event: TelemetryEvent) -> None:
        if isinstance(event, AuditViolation):
            return  # never audit our own (or a recording's) verdicts
        self.n_events += 1
        cls = type(event)
        if cls is Load:
            self._on_load(event)
        elif cls is Evict:
            self._on_evict(event)
        elif cls is StateSave:
            self._on_state_save(event)
        elif cls is StateRestore:
            self._on_state_restore(event)
        elif cls is FpgaRequest:
            self._on_request(event)
        elif cls is FpgaComplete:
            self._on_complete(event)
        elif cls is ConfigPortOp and self.device_port:
            self._check_port(self._device, event.source, event,
                             event.seconds, "device-port-overlap")
        if self.deadline is not None and self._open:
            self._check_deadline(event.time)

    # -- residency / double allocation ---------------------------------------
    def _agg(self, source: str) -> MetricsAggregator:
        agg = self._aggs.get(source)
        if agg is None:
            agg = MetricsAggregator(source=source, kernel_sources=())
            self._aggs[source] = agg
        return agg

    def _on_load(self, e: Load) -> None:
        ledger = self._ledger.setdefault(e.source, {})
        if e.exclusive:
            # Full-device download: everything previously resident is gone.
            ledger.clear()
        rect = _Rect(tuple(e.anchor), tuple(e.shape), e.clbs, _describe(e))
        if e.handle in ledger:
            self._violate(
                e.time, "double-allocation",
                f"handle {e.handle!r} loaded while already resident",
                [e], task=e.task, source=e.source,
            )
        else:
            for other in ledger.values():
                if rect.overlaps(other):
                    self._violate(
                        e.time, "double-allocation",
                        f"load of {e.handle!r} at {rect.anchor} "
                        f"({rect.shape[0]}x{rect.shape[1]}) overlaps a "
                        f"resident configuration",
                        [e], task=e.task, source=e.source,
                    )
                    break
        ledger[e.handle] = rect
        if self.clb_capacity is not None:
            total = sum(r.clbs for r in ledger.values())
            if total > self.clb_capacity:
                self._violate(
                    e.time, "double-allocation",
                    f"resident area {total} CLBs exceeds the device "
                    f"capacity of {self.clb_capacity}",
                    [e], task=e.task, source=e.source,
                )
        self._check_port(self._port, e.source, e, e.seconds, "port-overlap")
        self._agg(e.source)(e)
        self._cross_check(e)

    def _on_evict(self, e: Evict) -> None:
        ledger = self._ledger.setdefault(e.source, {})
        if e.handle not in ledger:
            self._violate(
                e.time, "evict-without-load",
                f"evicted handle {e.handle!r} was never made resident",
                [e], task=e.task, source=e.source,
            )
        else:
            del ledger[e.handle]
        self._check_port(self._port, e.source, e, e.seconds, "port-overlap")
        self._agg(e.source)(e)
        self._cross_check(e)

    def _cross_check(self, e: TelemetryEvent) -> None:
        ledger = self._ledger.get(e.source, {})
        derived = sum(r.clbs for r in ledger.values())
        gauge = self._agg(e.source).clb_occupancy.value
        if abs(derived - gauge) > 1e-9:
            self._violate(
                e.time, "occupancy-mismatch",
                f"ledger says {derived} resident CLBs but the metrics "
                f"gauge says {gauge:g}",
                [e], task=e.task, source=e.source,
            )

    # -- state pairing --------------------------------------------------------
    def _on_state_save(self, e: StateSave) -> None:
        self._saved[(e.source, e.task, e.handle)] = e.version
        self._check_port(self._port, e.source, e, e.seconds, "port-overlap")
        self._agg(e.source)(e)

    def _on_state_restore(self, e: StateRestore) -> None:
        key = (e.source, e.task, e.handle)
        saved = self._saved.get(key)
        if saved is None:
            self._violate(
                e.time, "state-pairing",
                f"restore of {e.handle!r} for task {e.task!r} has no "
                f"preceding save",
                [e], task=e.task, source=e.source,
            )
        elif saved != e.version:
            self._violate(
                e.time, "state-pairing",
                f"restore of {e.handle!r} carries state version "
                f"{e.version} but version {saved} was saved",
                [e], task=e.task, source=e.source,
            )
        self._check_port(self._port, e.source, e, e.seconds, "port-overlap")
        self._agg(e.source)(e)

    # -- serial configuration port --------------------------------------------
    def _check_port(self, timelines: Dict[str, _PortTimeline], source: str,
                    e: TelemetryEvent, seconds: float,
                    invariant: str) -> None:
        if seconds <= 0:
            return
        if invariant == "port-overlap" and not e.task:
            return  # boot/system downloads are batch initialization
        tl = timelines.get(source)
        if tl is None:
            tl = timelines[source] = _PortTimeline()
        if e.time < tl.end - _TIME_EPS:
            self._violate(
                e.time, invariant,
                f"config-port transfer starts at {e.time:.9g}s while "
                f"{tl.desc} is busy until {tl.end:.9g}s",
                [e], task=e.task, source=source,
            )
        end = e.time + seconds
        if end > tl.end:
            tl.end = end
            tl.desc = _describe(e)

    # -- liveness -------------------------------------------------------------
    def _on_request(self, e: FpgaRequest) -> None:
        self._open[e.op_id] = (e.time, e.task, e.config)

    def _on_complete(self, e: FpgaComplete) -> None:
        self._open.pop(e.op_id, None)

    def _check_deadline(self, now: float) -> None:
        expired = [
            (op_id, started, task, config)
            for op_id, (started, task, config) in self._open.items()
            if now - started > self.deadline + _TIME_EPS
        ]
        for op_id, started, task, config in expired:
            del self._open[op_id]  # flag once
            self._violate(
                now, "op-deadline",
                f"operation {op_id} ({config!r}) requested at "
                f"{started:.9g}s is still open after the {self.deadline:g}s "
                f"deadline",
                [FpgaRequest(started, task, config=config, op_id=op_id)],
                task=task,
            )

    def finish(self) -> "Auditor":
        """End-of-stream completeness check: flag operations that never
        completed (starvation, deadlock, or a truncated recording).
        Idempotent; returns ``self`` for chaining."""
        if self._finished:
            return self
        self._finished = True
        for op_id, (started, task, config) in sorted(self._open.items()):
            self._violate(
                started, "op-never-completed",
                f"operation {op_id} ({config!r}) requested at "
                f"{started:.9g}s never completed",
                [FpgaRequest(started, task, config=config, op_id=op_id)],
                severity="warning", task=task,
            )
        self._open.clear()
        return self


def audit_events(
    events: Iterable[TelemetryEvent],
    deadline: Optional[float] = None,
    clb_capacity: Optional[int] = None,
    device_port: bool = False,
) -> Auditor:
    """Replay a recorded stream through a fresh lenient auditor and run
    the end-of-stream checks — the parity primitive: auditing a
    recording must find exactly what the live auditor found."""
    auditor = Auditor(deadline=deadline, clb_capacity=clb_capacity,
                      device_port=device_port)
    for e in events:
        auditor(e)
    return auditor.finish()
