"""Compare two ``BENCH_*.json`` benchmark artifacts.

``benchmarks/_harness.py`` emits one artifact per experiment: a list of
run records carrying the reproduction recipe (policy + kwargs +
scheduler), simulation results (makespan, turnaround, useful fraction),
and simulator performance (wall-clock seconds, events published).  This
module is the regression gate over those artifacts — used three ways:

* ``repro bench-diff A.json B.json [--fail-on pct]`` (CI fails the
  build on regression against ``benchmarks/baselines/``);
* the harness itself, which prints a soft diff against the committed
  baseline after every ``emit``;
* tests, which feed synthetic artifacts.

Gating semantics: ``wall_seconds`` regresses when it *grows* past the
threshold (machine-dependent, so only growth is a failure);
``n_events`` regresses when it *deviates* past the threshold in either
direction (event counts are deterministic — any drift means the
simulation changed).  Simulation results (makespan, mean turnaround,
useful fraction) are reported but never gate: changing them is what
experiments are *for*, and the benchmarks' own asserts guard their
shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["load_bench", "diff_benches", "BenchDiff", "DiffRow"]


def load_bench(path: str) -> Dict[str, object]:
    """Load one ``BENCH_*.json`` artifact, validating its shape."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "runs" not in doc:
        raise ValueError(f"{path}: not a BENCH artifact (no 'runs' list)")
    return doc


def _run_label(run: Dict[str, object], index: int) -> str:
    policy = run.get("policy", "?")
    kw = run.get("policy_kw") or {}
    suffix = ",".join(f"{k}={v}" for k, v in sorted(kw.items()))
    return f"run{index}:{policy}" + (f"[{suffix}]" if suffix else "")


def _metric(run: Dict[str, object], dotted: str) -> Optional[float]:
    node: object = run
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


#: (dotted metric path, gate mode): "growth" fails only on increase,
#: "shrink" fails only on decrease (won metrics — a speedup or cache
#: saving is allowed to improve without bound but must not erode),
#: "drift" fails on change in either direction, None never fails.
#: The ``compile.*`` paths gate the CAD-flow records emitted by
#: ``benchmarks/_harness.record_compile``: the dominant phases (place,
#: route) and the whole-flow wall clock gate on growth; the convergence
#: statistics are deterministic, so any drift means the flow changed.
#: Small phases (techmap/pack/rrg/timing/bitgen run in microseconds)
#: are reported informationally — they are too noisy to gate.  The
#: same goes for any compile wall clock whose *baseline* is under
#: :data:`COMPILE_WALL_FLOOR` (e.g. the ~70 µs greedy place phase,
#: which jitters 2-3x run to run): below the floor a growth gate
#: measures scheduler noise, not the flow, so the row is demoted to
#: informational.
METRICS: Tuple[Tuple[str, Optional[str]], ...] = (
    ("wall_seconds", "growth"),
    ("telemetry.n_events", "drift"),
    ("metrics.frames_written", "drift"),
    ("metrics.n_deadline_misses", "drift"),
    ("makespan", None),
    ("mean_turnaround", None),
    ("useful_fraction", None),
    ("compile.total_seconds", "growth"),
    ("compile.phase_seconds.place", "growth"),
    ("compile.phase_seconds.route", "growth"),
    ("compile.phase_seconds.techmap", None),
    ("compile.phase_seconds.pack", None),
    ("compile.phase_seconds.rrg", None),
    ("compile.phase_seconds.timing", None),
    ("compile.phase_seconds.bitgen", None),
    ("compile.peak_rrg_nodes", "drift"),
    ("compile.sa_steps", "drift"),
    ("compile.final_cost", "drift"),
    ("compile.route_iterations", "drift"),
    ("compile.final_overuse", "drift"),
    # Saturation-sweep summary records (benchmarks/test_e20_saturation.py):
    # knee position, goodput ceiling and stage attribution are pure
    # simulation results — deterministic, so any drift means the system
    # under load changed.
    ("saturation.knee_rate", "drift"),
    ("saturation.knee_p99", "drift"),
    ("saturation.saturated_throughput", "drift"),
    ("saturation.max_goodput_under_slo", "drift"),
    ("saturation.stage_share.queue", "drift"),
    ("saturation.stage_share.reconfig", "drift"),
    ("saturation.stage_share.service", "drift"),
    ("saturation.n_breaches", "drift"),
    # E13d kernel/cache summary records (benchmarks/test_e13_cad_ablation.py):
    # the wall clocks gate on growth like any compile timing; the two
    # win ratios gate on *shrink* — the vectorized speedup and the
    # warm-cache reduction are the point of the optimisation, so CI
    # fails when either erodes past the threshold, while improving is
    # always fine.
    ("e13d.cold_seconds", "growth"),
    ("e13d.warm_seconds", "growth"),
    ("e13d.sa_speedup", "shrink"),
    ("e13d.warm_reduction", "shrink"),
)

#: Growth-gated ``compile.*`` / ``e13d.*`` wall clocks with a baseline
#: below this many seconds are reported but never fail (sub-millisecond
#: phases — and warm-cache hits — are dominated by timer/scheduler
#: noise).
COMPILE_WALL_FLOOR = 1e-3


@dataclass
class DiffRow:
    """One compared metric of one paired run."""

    run: str
    metric: str
    base: Optional[float]
    new: Optional[float]
    delta_pct: Optional[float]
    regressed: bool = False
    note: str = ""


@dataclass
class BenchDiff:
    """The full comparison of two artifacts."""

    base_name: str
    new_name: str
    fail_on: float
    rows: List[DiffRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: metric path -> threshold overriding :attr:`fail_on` for that row.
    fail_on_overrides: Dict[str, float] = field(default_factory=dict)

    @property
    def regressions(self) -> List[DiffRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> Dict[str, object]:
        """JSON-ready view (what ``repro bench-diff --json`` prints)."""
        return {
            "base": self.base_name,
            "new": self.new_name,
            "fail_on_pct": self.fail_on,
            "fail_on_overrides": dict(sorted(self.fail_on_overrides.items())),
            "ok": self.ok,
            "n_regressions": len(self.regressions),
            "notes": list(self.notes),
            "rows": [vars(r) for r in self.rows],
        }

    def render(self) -> str:
        """Human-readable comparison table."""
        from ..analysis import format_table

        def fmt(v: Optional[float]) -> str:
            return "-" if v is None else f"{v:.6g}"

        table = [
            {
                "run": r.run,
                "metric": r.metric,
                "base": fmt(r.base),
                "new": fmt(r.new),
                "delta": "-" if r.delta_pct is None
                else f"{r.delta_pct:+.1f}%",
                "verdict": "REGRESSED" if r.regressed
                else (r.note or "ok"),
            }
            for r in self.rows
        ]
        parts = [format_table(
            table,
            title=f"bench diff: {self.base_name} -> {self.new_name} "
                  f"(fail on >{self.fail_on:g}%)",
        )]
        parts.extend(self.notes)
        if self.regressions:
            parts.append(
                f"{len(self.regressions)} metric(s) regressed past "
                f"{self.fail_on:g}%"
            )
        else:
            parts.append("no regressions")
        return "\n".join(parts)


def diff_benches(
    base: Union[str, Dict[str, object]],
    new: Union[str, Dict[str, object]],
    fail_on: float = 20.0,
    fail_on_overrides: Optional[Dict[str, float]] = None,
) -> BenchDiff:
    """Compare two BENCH artifacts (paths or loaded docs) run by run.

    ``fail_on`` is the global regression threshold (percent);
    ``fail_on_overrides`` maps individual metric paths to their own
    thresholds (e.g. ``{"wall_seconds": 300.0}`` tolerates CI-runner
    wall-clock noise while keeping the deterministic metrics tight).
    """
    base_doc = load_bench(base) if isinstance(base, str) else base
    new_doc = load_bench(new) if isinstance(new, str) else new
    base_runs = list(base_doc.get("runs") or [])
    new_runs = list(new_doc.get("runs") or [])
    overrides = dict(fail_on_overrides or {})
    unknown = [m for m in overrides if m not in {d for d, _g in METRICS}]
    if unknown:
        raise ValueError(
            f"--fail-on override for unknown metric(s) {unknown}; "
            f"known: {sorted(d for d, _g in METRICS)}"
        )
    diff = BenchDiff(
        base_name=str(base_doc.get("experiment", "base")),
        new_name=str(new_doc.get("experiment", "new")),
        fail_on=fail_on,
        fail_on_overrides=overrides,
    )
    if len(base_runs) != len(new_runs):
        diff.notes.append(
            f"run count changed: {len(base_runs)} -> {len(new_runs)} "
            f"(only the common prefix is compared)"
        )
    for i, (b, n) in enumerate(zip(base_runs, new_runs)):
        label = _run_label(b, i)
        if _run_label(n, i) != label:
            diff.notes.append(
                f"run {i} identity changed: {label} -> {_run_label(n, i)}"
            )
        for dotted, gate in METRICS:
            bv, nv = _metric(b, dotted), _metric(n, dotted)
            if bv is None and nv is None:
                continue
            threshold = overrides.get(dotted, fail_on)
            delta = None
            regressed = False
            note = f"gate >{threshold:g}%" if dotted in overrides else ""
            if bv is not None and nv is not None:
                delta = 0.0 if bv == nv else (
                    float("inf") if bv == 0 else (nv - bv) / bv * 100.0
                )
                if gate == "growth":
                    if dotted.startswith(("compile.", "e13d.")) and \
                            "seconds" in dotted and \
                            bv < COMPILE_WALL_FLOOR:
                        note = "below gate floor"
                    else:
                        regressed = delta > threshold
                elif gate == "shrink":
                    regressed = delta is not None and -delta > threshold
                elif gate == "drift":
                    regressed = abs(delta) > threshold
                elif gate is None:
                    note = "informational"
            else:
                regressed = gate is not None
                note = "metric missing on one side"
            diff.rows.append(DiffRow(
                run=label, metric=dotted, base=bv, new=nv,
                delta_pct=delta, regressed=regressed, note=note,
            ))
    return diff
