"""The event bus: one publish/subscribe spine for the whole stack.

Design goals, in order:

1. **Low overhead** — publishing dispatches on the event's exact type via
   one dict lookup into a lazily built per-type callback cache; a bus
   with no subscribers for a type costs one failed lookup and one cached
   empty tuple.  The ``issubclass`` walk happens once per (concrete
   type, subscription set), never per publish.
2. **Deterministic ordering** — subscribers are called in subscription
   order (typed subscribers before wildcards), and events are delivered
   synchronously in publish order (the simulator is single-threaded; so
   is the bus).
3. **Open vocabulary** — dispatch is resolved against the *published*
   event's class, so a subscriber registered for a base class (e.g.
   :class:`TelemetryEvent` itself) sees subtypes registered after it
   subscribed — late-defined events such as
   :class:`~repro.telemetry.audit.AuditViolation` reach existing
   recorders without re-subscription.
4. **Composability** — several publishers (kernel + N board services)
   share one bus; subscribers that only care about one publisher filter
   on ``event.source``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple, Type

from .events import TelemetryEvent

__all__ = ["EventBus", "Subscription", "make_source"]

Callback = Callable[[TelemetryEvent], None]

_EMPTY: Tuple[Callback, ...] = ()

#: Process-wide counter backing :func:`make_source`.
_SOURCE_COUNTER = itertools.count(1)


def make_source(prefix: str) -> str:
    """Mint a unique ``source`` attribution string (``"Prefix#N"``).

    Publishers that may coexist on one bus (the per-board services of a
    multi-device system, most visibly) each mint one at construction so
    source-filtered subscribers never mix their streams."""
    return f"{prefix}#{next(_SOURCE_COUNTER)}"


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; detaches on close."""

    __slots__ = ("bus", "callback", "_types")

    def __init__(self, bus: "EventBus", callback: Callback,
                 types: Optional[Tuple[type, ...]]) -> None:
        self.bus = bus
        self.callback = callback
        self._types = types

    def close(self) -> None:
        self.bus.unsubscribe(self.callback)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventBus:
    """Synchronous typed publish/subscribe hub."""

    def __init__(self) -> None:
        #: Ordered typed registrations: (callback, subscribed types).
        self._typed: List[Tuple[Callback, Tuple[type, ...]]] = []
        #: wildcard callbacks (every event).
        self._all: Tuple[Callback, ...] = ()
        #: concrete event type -> matching callbacks, resolved lazily.
        self._cache: Dict[Type[TelemetryEvent], Tuple[Callback, ...]] = {}
        #: total events published (cheap health metric).
        self.n_published = 0

    # -- subscription -------------------------------------------------------
    def subscribe(self, callback: Callback, *event_types: type) -> Subscription:
        """Register ``callback`` for ``event_types`` (or every event when
        none are given).  Base classes match all their subtypes —
        including types defined *after* this call.  Returns a
        :class:`Subscription` handle."""
        if not event_types:
            self._all = self._all + (callback,)
            self._cache.clear()
            return Subscription(self, callback, None)
        for t in event_types:
            if not (isinstance(t, type) and issubclass(t, TelemetryEvent)):
                raise TypeError(f"not a TelemetryEvent type: {t!r}")
        self._typed.append((callback, tuple(event_types)))
        self._cache.clear()
        return Subscription(self, callback, tuple(event_types))

    def subscribe_all(self, callback: Callback) -> Subscription:
        """Register ``callback`` for every event, present and future —
        an explicit spelling of the no-types :meth:`subscribe` form."""
        return self.subscribe(callback)

    def unsubscribe(self, callback: Callback) -> None:
        """Remove every registration of ``callback`` (wildcard and typed)."""
        self._all = tuple(cb for cb in self._all if cb is not callback)
        self._typed = [(cb, ts) for cb, ts in self._typed if cb is not callback]
        self._cache.clear()

    @property
    def n_subscribers(self) -> int:
        uniq = {id(cb) for cb in self._all}
        uniq.update(id(cb) for cb, _ in self._typed)
        return len(uniq)

    # -- publishing ---------------------------------------------------------
    def _resolve(self, cls: Type[TelemetryEvent]) -> Tuple[Callback, ...]:
        cbs = [cb for cb, types in self._typed
               if any(issubclass(cls, t) for t in types)]
        cbs.extend(self._all)
        resolved = tuple(cbs)
        self._cache[cls] = resolved
        return resolved

    def publish(self, event: TelemetryEvent) -> None:
        """Deliver ``event`` synchronously to every matching subscriber,
        in subscription order (typed subscribers before wildcards)."""
        self.n_published += 1
        cls = type(event)
        cbs = self._cache.get(cls)
        if cbs is None:
            cbs = self._resolve(cls)
        for cb in cbs:
            cb(event)
