"""The event bus: one publish/subscribe spine for the whole stack.

Design goals, in order:

1. **Low overhead** — publishing dispatches on the event's exact type via
   one dict lookup; a bus with no subscribers for a type costs one failed
   lookup.  Subscribing to a *base* class is expanded to its concrete
   subtypes at subscribe time, so publish never walks an MRO.
2. **Deterministic ordering** — subscribers are called in subscription
   order, and events are delivered synchronously in publish order (the
   simulator is single-threaded; so is the bus).
3. **Composability** — several publishers (kernel + N board services)
   share one bus; subscribers that only care about one publisher filter
   on ``event.source``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from .events import EVENT_TYPES, TelemetryEvent

__all__ = ["EventBus", "Subscription", "make_source"]

Callback = Callable[[TelemetryEvent], None]

_EMPTY: Tuple[Callback, ...] = ()

#: Process-wide counter backing :func:`make_source`.
_SOURCE_COUNTER = itertools.count(1)


def make_source(prefix: str) -> str:
    """Mint a unique ``source`` attribution string (``"Prefix#N"``).

    Publishers that may coexist on one bus (the per-board services of a
    multi-device system, most visibly) each mint one at construction so
    source-filtered subscribers never mix their streams."""
    return f"{prefix}#{next(_SOURCE_COUNTER)}"


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; detaches on close."""

    __slots__ = ("bus", "callback", "_types")

    def __init__(self, bus: "EventBus", callback: Callback,
                 types: Optional[Tuple[type, ...]]) -> None:
        self.bus = bus
        self.callback = callback
        self._types = types

    def close(self) -> None:
        self.bus.unsubscribe(self.callback)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventBus:
    """Synchronous typed publish/subscribe hub."""

    def __init__(self) -> None:
        #: exact event type -> callbacks registered for it.
        self._by_type: Dict[Type[TelemetryEvent], Tuple[Callback, ...]] = {}
        #: wildcard callbacks (every event).
        self._all: Tuple[Callback, ...] = ()
        #: total events published (cheap health metric).
        self.n_published = 0

    # -- subscription -------------------------------------------------------
    @staticmethod
    def _expand(event_types: Iterable[type]) -> List[Type[TelemetryEvent]]:
        out: List[Type[TelemetryEvent]] = []
        for t in event_types:
            if not (isinstance(t, type) and issubclass(t, TelemetryEvent)):
                raise TypeError(f"not a TelemetryEvent type: {t!r}")
            matched = [c for c in EVENT_TYPES if issubclass(c, t)]
            if not matched and t is not TelemetryEvent:
                matched = [t]  # externally defined event type
            for c in matched:
                if c not in out:
                    out.append(c)
        return out

    def subscribe(self, callback: Callback, *event_types: type) -> Subscription:
        """Register ``callback`` for ``event_types`` (or every event when
        none are given).  Base classes expand to all their concrete
        subtypes.  Returns a :class:`Subscription` handle."""
        if not event_types:
            self._all = self._all + (callback,)
            return Subscription(self, callback, None)
        expanded = tuple(self._expand(event_types))
        for t in expanded:
            self._by_type[t] = self._by_type.get(t, _EMPTY) + (callback,)
        return Subscription(self, callback, expanded)

    def unsubscribe(self, callback: Callback) -> None:
        """Remove every registration of ``callback`` (wildcard and typed)."""
        self._all = tuple(cb for cb in self._all if cb is not callback)
        for t, cbs in list(self._by_type.items()):
            kept = tuple(cb for cb in cbs if cb is not callback)
            if kept:
                self._by_type[t] = kept
            else:
                del self._by_type[t]

    @property
    def n_subscribers(self) -> int:
        uniq = set(self._all)
        for cbs in self._by_type.values():
            uniq.update(cbs)
        return len(uniq)

    # -- publishing ---------------------------------------------------------
    def publish(self, event: TelemetryEvent) -> None:
        """Deliver ``event`` synchronously to every matching subscriber,
        in subscription order (typed subscribers before wildcards)."""
        self.n_published += 1
        for cb in self._by_type.get(type(event), _EMPTY):
            cb(event)
        for cb in self._all:
            cb(event)
