"""Typed telemetry events — the vocabulary of the event bus.

Every observable occurrence in the stack (kernel dispatches, configuration
downloads, page faults, pin-mux transfers, scrub passes, …) is a frozen
dataclass in this module.  Layers *publish* these into the
:class:`~repro.telemetry.bus.EventBus`; everything that used to be a
hand-filled counter (:class:`~repro.core.metrics.ServiceMetrics`, the
legacy :class:`~repro.osim.trace.Trace`) is now *derived* from the stream
by subscribers in :mod:`repro.telemetry.recorders`.

Conventions
-----------
* ``time`` is simulation seconds (the publisher's ``sim.now``); duration
  events carry ``seconds`` and are published at their *start* instant.
* ``task`` is the task name ("" for system-wide events).
* ``source`` identifies the publisher (the kernel, or one service
  instance — multi-board systems publish from several sources onto one
  bus, and per-board metrics are derived by filtering on it).
* ``kind`` is the legacy :class:`~repro.osim.trace.Trace` kind string for
  events that historically appeared in the trace; ``None`` marks
  bus-only events, so the legacy trace content is byte-for-byte what it
  was before the bus existed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, List, Optional, Tuple, Type

__all__ = [
    "TelemetryEvent",
    # kernel / scheduler
    "Admit", "Dispatch", "QuantumExpired", "TaskDone",
    "FpgaRequest", "FpgaComplete", "SimStep",
    # service charging primitives
    "OpStart", "Hit", "Miss", "Load", "Evict",
    "StateSave", "StateRestore", "Exec", "Wait",
    "PortTransfer", "PinWindow",
    # virtual-memory policies
    "PageAccess", "PageFault", "SegmentFault",
    # preemption / placement / scheduling
    "Preempt", "Rollback", "Prefetch", "Suspend", "Compact", "Relocate",
    "BoardDispatch", "SchedDecision", "DeadlineMiss",
    # device / integrity
    "ConfigPortOp", "ScrubPass", "Repair", "Upset",
    "EVENT_TYPES", "event_type", "register_event_type",
    "registered_event_types",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base of every bus event: a timestamped, attributed occurrence."""

    time: float
    task: str = ""
    source: str = ""

    #: Legacy trace kind; ``None`` = bus-only (never entered the Trace).
    kind: ClassVar[Optional[str]] = None

    @property
    def detail(self) -> str:
        """Legacy trace detail string (subclasses override)."""
        return ""

    def to_record(self) -> Dict[str, object]:
        """Flat JSON-serializable view (one JSONL line)."""
        rec: Dict[str, object] = {"event": type(self).__name__}
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, tuple):
                v = list(v)
            rec[f.name] = v
        return rec


# ---------------------------------------------------------------------------
# kernel / scheduler events
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Admit(TelemetryEvent):
    """A task entered the system (arrival)."""

    kind: ClassVar[Optional[str]] = "admit"


@dataclass(frozen=True)
class Dispatch(TelemetryEvent):
    """The CPU scheduler switched to a task."""

    kind: ClassVar[Optional[str]] = "dispatch"


@dataclass(frozen=True)
class QuantumExpired(TelemetryEvent):
    """A CPU time slice ran out with work remaining."""

    kind: ClassVar[Optional[str]] = "quantum-expired"


@dataclass(frozen=True)
class TaskDone(TelemetryEvent):
    """A task completed its whole program."""

    kind: ClassVar[Optional[str]] = "done"


@dataclass(frozen=True)
class FpgaRequest(TelemetryEvent):
    """A task issued an FPGA operation (left the CPU).

    ``op_id`` is the kernel-minted span-correlation id: the matching
    :class:`FpgaComplete` carries the same id, so the span builder
    (:mod:`repro.telemetry.spans`) can pair request/complete even when a
    recorded stream is filtered or truncated (0 = unknown, for events
    recorded before ids existed).
    """

    config: str = ""
    op_id: int = 0
    kind: ClassVar[Optional[str]] = "fpga-request"

    @property
    def detail(self) -> str:
        return self.config


@dataclass(frozen=True)
class FpgaComplete(TelemetryEvent):
    """The service finished a task's FPGA operation (see
    :class:`FpgaRequest` for ``op_id``)."""

    config: str = ""
    op_id: int = 0
    kind: ClassVar[Optional[str]] = "fpga-complete"

    @property
    def detail(self) -> str:
        return self.config


@dataclass(frozen=True)
class SimStep(TelemetryEvent):
    """One event-loop step of the discrete-event simulator (opt-in —
    published only when step telemetry is enabled; carries the calendar
    depth so queue growth is visible in exports)."""

    queue_depth: int = 0


# ---------------------------------------------------------------------------
# service charging primitives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OpStart(TelemetryEvent):
    """A service accepted one FPGA operation (counts ``n_ops``)."""

    config: str = ""


@dataclass(frozen=True)
class Hit(TelemetryEvent):
    """Requested configuration was already resident."""

    handle: str = ""


@dataclass(frozen=True)
class Miss(TelemetryEvent):
    """Requested configuration required a download."""

    handle: str = ""


@dataclass(frozen=True)
class Load(TelemetryEvent):
    """A configuration download over the configuration port.

    ``count`` is normally 1; a full-serial boot download that configures
    several circuits at once publishes a single event with ``count`` set
    to the number of circuits it made resident.

    ``clbs`` is the CLB area the download makes resident and
    ``exclusive`` marks a full-device download on a device without
    partial reconfiguration (everything previously resident ceased to
    exist) — together they let utilization gauges track CLB occupancy
    from the stream alone.  ``shape`` is the region's ``(w, h)`` in
    CLBs (``(0, 0)`` = unknown); with ``anchor`` it gives auditors the
    exact rectangle the download occupies.

    ``mode`` names the reconfiguration engine that priced the download
    (``full-serial``/``partial``/``delta``), ``frames_written`` the frames
    physically written (under delta, only the differing ones), and
    ``cache`` how the encoded image was obtained from the
    content-addressed bitstream cache (``hit``/``reloc``/``miss``;
    empty = path not cached).
    """

    handle: str = ""
    anchor: Tuple[int, int] = (0, 0)
    seconds: float = 0.0
    frames: int = 0
    count: int = 1
    clbs: int = 0
    exclusive: bool = False
    shape: Tuple[int, int] = (0, 0)
    mode: str = ""
    frames_written: int = 0
    cache: str = ""
    kind: ClassVar[Optional[str]] = "fpga-load"

    @property
    def detail(self) -> str:
        return f"{self.handle}@{self.anchor}"


@dataclass(frozen=True)
class Evict(TelemetryEvent):
    """A resident configuration was cleared (an eviction); ``clbs`` is
    the CLB area the eviction freed."""

    handle: str = ""
    seconds: float = 0.0
    clbs: int = 0
    mode: str = ""
    frames_written: int = 0
    kind: ClassVar[Optional[str]] = "fpga-unload"

    @property
    def detail(self) -> str:
        return self.handle


@dataclass(frozen=True)
class StateSave(TelemetryEvent):
    """Flip-flop state readback over the configuration port.

    ``version`` is the service-minted state snapshot id: the matching
    :class:`StateRestore` must carry the same version, so auditors can
    prove a restore writes back exactly the state that was saved
    (0 = unversioned, for streams recorded before versions existed).
    """

    handle: str = ""
    seconds: float = 0.0
    version: int = 0
    kind: ClassVar[Optional[str]] = "fpga-state-save"

    @property
    def detail(self) -> str:
        return self.handle


@dataclass(frozen=True)
class StateRestore(TelemetryEvent):
    """Flip-flop state restore over the configuration port (see
    :class:`StateSave` for ``version``)."""

    handle: str = ""
    seconds: float = 0.0
    version: int = 0
    kind: ClassVar[Optional[str]] = "fpga-state-restore"

    @property
    def detail(self) -> str:
        return self.handle


@dataclass(frozen=True)
class Exec(TelemetryEvent):
    """Useful fabric (or software-fallback) compute time."""

    handle: str = ""
    seconds: float = 0.0


@dataclass(frozen=True)
class Wait(TelemetryEvent):
    """Time a task spent queued for the fabric before being served."""

    seconds: float = 0.0


@dataclass(frozen=True)
class PortTransfer(TelemetryEvent):
    """A pin-multiplexed data transfer (operation I/O)."""

    circuit: str = ""
    words: int = 0
    pins: int = 0
    seconds: float = 0.0
    factor: float = 1.0

    @property
    def detail(self) -> str:
        return self.circuit


@dataclass(frozen=True)
class PinWindow(TelemetryEvent):
    """A circuit's pin demand joined (``active``) or left the multiplexer;
    ``demand`` is the total virtual-pin demand after the change."""

    circuit: str = ""
    pins: int = 0
    active: bool = False
    demand: int = 0


# ---------------------------------------------------------------------------
# virtual-memory policies (pagination / segmentation)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PageAccess(TelemetryEvent):
    """One access in a paged/segmented operation's access trace."""

    unit: str = ""


@dataclass(frozen=True)
class PageFault(TelemetryEvent):
    """Accessed page was not resident — a demand download follows."""

    unit: str = ""
    kind: ClassVar[Optional[str]] = "page-fault"

    @property
    def detail(self) -> str:
        return self.unit


@dataclass(frozen=True)
class SegmentFault(PageFault):
    """Segmentation's variable-size fault (same counter, distinct kind)."""

    kind: ClassVar[Optional[str]] = "segment-fault"


# ---------------------------------------------------------------------------
# preemption / placement
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Preempt(TelemetryEvent):
    """An executing circuit was preempted off the fabric."""

    handle: str = ""
    kind: ClassVar[Optional[str]] = "fpga-preempt"

    @property
    def detail(self) -> str:
        return self.handle


@dataclass(frozen=True)
class Rollback(TelemetryEvent):
    """A preempted sequential circuit lost its progress (restart)."""

    handle: str = ""


@dataclass(frozen=True)
class Prefetch(TelemetryEvent):
    """Eager loading started a background download."""

    config: str = ""
    kind: ClassVar[Optional[str]] = "fpga-prefetch"

    @property
    def detail(self) -> str:
        return self.config


@dataclass(frozen=True)
class Suspend(TelemetryEvent):
    """A task suspended waiting for partition space (starvation hazard)."""

    config: str = ""
    kind: ClassVar[Optional[str]] = "fpga-suspend"

    @property
    def detail(self) -> str:
        return self.config


@dataclass(frozen=True)
class Compact(TelemetryEvent):
    """Variable partitioning ran a compaction pass."""

    kind: ClassVar[Optional[str]] = "fpga-compact"


@dataclass(frozen=True)
class Relocate(TelemetryEvent):
    """Compaction moved one resident circuit to a new anchor."""

    handle: str = ""
    anchor: Tuple[int, int] = (0, 0)


@dataclass(frozen=True)
class Placement(TelemetryEvent):
    """A placement engine chose an anchor for a demand-loaded unit.

    Published right before the corresponding :class:`Load`, carrying the
    *decision* the Load only implies: which strategy ran, how many
    candidate positions it weighed, and how fragmented the free space
    was at that instant.  Bus-only (``kind=None``): audit/report layers
    subscribe, the legacy trace stays unchanged.
    """

    strategy: str = ""
    handle: str = ""
    anchor: Tuple[int, int] = (0, 0)
    candidates: int = 1
    fragmentation: float = 0.0

    @property
    def detail(self) -> str:
        return f"{self.handle}@{self.anchor} via {self.strategy}"


@dataclass(frozen=True)
class SchedDecision(TelemetryEvent):
    """A fabric scheduling engine priced one preemption point.

    Published by services with a
    :class:`~repro.core.scheduling.FabricSchedulerPolicy` at every
    contended quantum boundary (nobody waiting = no decision to price),
    carrying the priced cost terms the verdict weighed: the victim's
    reload bill (``reconfig_cost``, delta-frame pricing against the
    resident ConfigRam digests), the state save+restore movement
    (``state_cost``), the progress a rollback discards (``lost_cost``),
    the fabric seconds the resident op still needs (``remaining``) and
    the tightest waiter deadline slack (``slack``; ``inf`` = none).
    Bus-only (``kind=None``): the legacy trace stays unchanged.
    """

    strategy: str = ""
    handle: str = ""
    preempt: bool = False
    reason: str = ""
    waiting: int = 0
    reconfig_cost: float = 0.0
    state_cost: float = 0.0
    lost_cost: float = 0.0
    remaining: float = 0.0
    slack: float = float("inf")

    @property
    def detail(self) -> str:
        verdict = "preempt" if self.preempt else "keep"
        return f"{self.handle}: {verdict} ({self.reason}) via {self.strategy}"


@dataclass(frozen=True)
class DeadlineMiss(TelemetryEvent):
    """A task finished after its declared deadline (counts
    ``n_deadline_misses``).  ``lateness`` is how far past the deadline
    the completion landed.  Bus-only (``kind=None``)."""

    deadline: float = 0.0
    lateness: float = 0.0

    @property
    def detail(self) -> str:
        return f"deadline {self.deadline:g} missed by {self.lateness:g}"


@dataclass(frozen=True)
class BoardDispatch(TelemetryEvent):
    """Multi-device placement chose a board for an operation."""

    config: str = ""
    board: int = 0
    kind: ClassVar[Optional[str]] = "fpga-board"

    @property
    def detail(self) -> str:
        return f"{self.config}@board{self.board}"


# ---------------------------------------------------------------------------
# device / integrity
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConfigPortOp(TelemetryEvent):
    """Raw device-level configuration-port occupancy (published by the
    :class:`~repro.device.Fpga` hook, so traffic that bypasses the service
    charging primitives — e.g. scrub repairs — is still visible)."""

    op: str = "load"          #: "load" | "unload" | "clear"
    handle: str = ""
    seconds: float = 0.0
    frames: int = 0
    mode: str = ""            #: pricing mode ("partial"/"delta"/"full-serial")
    frames_written: int = 0

    @property
    def detail(self) -> str:
        return f"{self.op}:{self.handle}"


@dataclass(frozen=True)
class ScrubPass(TelemetryEvent):
    """One periodic readback-compare pass over the resident frames."""

    seconds: float = 0.0
    n_corrupted: int = 0


@dataclass(frozen=True)
class Repair(TelemetryEvent):
    """The scrubber reloaded a corrupted circuit's golden bitstream."""

    handle: str = ""


@dataclass(frozen=True)
class Upset(TelemetryEvent):
    """An injected configuration upset (bit flip)."""

    frame: int = 0
    bit: int = 0
    handle: str = ""


def _concrete_subtypes(cls: Type[TelemetryEvent]) -> List[Type[TelemetryEvent]]:
    out = [cls]
    for sub in cls.__subclasses__():
        out.extend(_concrete_subtypes(sub))
    return out


#: Every registered event type — a *snapshot* taken at import; late
#: registrations (see :func:`register_event_type`) appear in
#: :func:`registered_event_types`, which reads the live registry.
EVENT_TYPES: Tuple[Type[TelemetryEvent], ...] = tuple(
    t for t in _concrete_subtypes(TelemetryEvent) if t is not TelemetryEvent
)

_BY_NAME: Dict[str, Type[TelemetryEvent]] = {t.__name__: t for t in EVENT_TYPES}


def registered_event_types() -> Tuple[Type[TelemetryEvent], ...]:
    """The live event-type registry (module-defined + late-registered)."""
    return tuple(_BY_NAME.values())


def register_event_type(cls: Type[TelemetryEvent]) -> Type[TelemetryEvent]:
    """Register a :class:`TelemetryEvent` subclass defined outside this
    module (e.g. :class:`~repro.telemetry.audit.AuditViolation`) so name
    lookup — and therefore JSONL round-tripping — sees it.  Idempotent;
    usable as a class decorator.  Registering a *different* class under
    an existing name is an error."""
    if not (isinstance(cls, type) and issubclass(cls, TelemetryEvent)):
        raise TypeError(f"not a TelemetryEvent type: {cls!r}")
    existing = _BY_NAME.get(cls.__name__)
    if existing is not None:
        if existing is not cls:
            raise ValueError(
                f"event type name {cls.__name__!r} is already registered "
                f"by {existing!r}"
            )
        return cls
    global EVENT_TYPES
    _BY_NAME[cls.__name__] = cls
    EVENT_TYPES = EVENT_TYPES + (cls,)
    return cls


def event_type(name: str) -> Type[TelemetryEvent]:
    """Look an event class up by name (for filters and deserialization)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown event type {name!r}; have {sorted(_BY_NAME)}"
        ) from None
