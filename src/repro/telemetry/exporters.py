"""Export (and re-import) a telemetry stream in machine-readable formats.

* :func:`to_jsonl` / :class:`JsonlExporter` — one JSON object per line;
  trivially greppable/`jq`-able, append-friendly for streaming.
* :func:`from_record` / :func:`read_jsonl` — the inverse: reconstruct
  typed events from recorded JSONL, so ``repro report`` can aggregate a
  stored stream exactly as if it were live.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON format:
  open the file in ``chrome://tracing`` or https://ui.perfetto.dev and
  see every download, state save, transfer and execution as a timeline
  lane per task (instant events for dispatches, faults, preemptions).
* :func:`to_prometheus` — Prometheus text exposition of a
  :class:`~repro.telemetry.metrics.MetricsAggregator` (histograms with
  cumulative ``le`` buckets, gauges, per-event-type counters).
* :func:`spans_to_csv` — one row per causal span (see
  :mod:`repro.telemetry.spans`), spreadsheet/pandas-ready.

Duration semantics: charge events are published at their *start* instant
with their ``seconds`` known up front (the simulator charges, then
yields), so they map directly onto complete ("X") trace events.
"""

from __future__ import annotations

import json
from dataclasses import fields as _dataclass_fields
from typing import Dict, Iterable, List, Optional, TextIO, Union

from .bus import EventBus
from .events import TelemetryEvent, event_type

__all__ = [
    "to_jsonl", "JsonlExporter", "to_chrome_trace", "DURATION_ATTR",
    "from_record", "read_jsonl", "to_prometheus", "spans_to_csv",
    "stages_to_csv", "STAGE_FIELDS",
]

#: Events carrying this attribute with a positive value are rendered as
#: complete (duration) trace events; everything else is an instant.
DURATION_ATTR = "seconds"

#: Simulation seconds -> trace microseconds.
_US = 1e6


def _jsonl_line(event: TelemetryEvent) -> str:
    return json.dumps(event.to_record(), sort_keys=True)


def to_jsonl(events: Iterable[TelemetryEvent],
             out: Union[str, TextIO, None] = None) -> str:
    """Serialize ``events`` to JSON-lines; write to ``out`` (path or
    file object) when given.  Returns the serialized text."""
    text = "\n".join(_jsonl_line(e) for e in events)
    if text:
        text += "\n"
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
    elif out is not None:
        out.write(text)
    return text


class JsonlExporter:
    """Streaming JSONL subscriber: every published event becomes a line
    immediately (no buffering of the whole run in memory)."""

    def __init__(self, out: Union[str, TextIO],
                 bus: Optional[EventBus] = None) -> None:
        if isinstance(out, str):
            self._fh: TextIO = open(out, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = out
            self._owns = False
        self.n_written = 0
        if bus is not None:
            bus.subscribe(self.record)

    def record(self, event: TelemetryEvent) -> None:
        self._fh.write(_jsonl_line(event) + "\n")
        self.n_written += 1

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def from_record(rec: Dict[str, object]) -> TelemetryEvent:
    """Rebuild one typed event from its :meth:`~TelemetryEvent.to_record`
    dict.  Unknown *fields* are dropped (forward compatibility: newer
    recorders may add fields older readers ignore); an unknown *event
    name* raises ``KeyError``."""
    cls = event_type(str(rec["event"]))
    known = {f.name for f in _dataclass_fields(cls)}
    kwargs = {
        k: tuple(v) if isinstance(v, list) else v
        for k, v in rec.items()
        if k != "event" and k in known
    }
    return cls(**kwargs)


def read_jsonl(source: Union[str, TextIO, Iterable[str]]) -> List[TelemetryEvent]:
    """Load a recorded JSONL stream (path, file object, or iterable of
    lines) back into typed events, preserving order."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    events: List[TelemetryEvent] = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(from_record(json.loads(line)))
    return events


def _lane(event: TelemetryEvent) -> str:
    """Timeline lane: the task when attributed, else the publisher."""
    return event.task or event.source or "system"


def to_chrome_trace(
    events: Iterable[TelemetryEvent],
    out: Union[str, TextIO, None] = None,
    run_name: str = "repro",
) -> Dict[str, object]:
    """Convert ``events`` to a Chrome ``trace_event`` document.

    Returns the document as a dict (``json.dump``-ready); writes it to
    ``out`` (path or file object) when given.  Loadable by
    ``chrome://tracing`` and Perfetto (both accept the JSON object form
    with a ``traceEvents`` list plus metadata events naming the threads).
    """
    trace_events: List[Dict[str, object]] = []
    tids: Dict[str, int] = {}

    def tid_of(lane: str) -> int:
        if lane not in tids:
            tids[lane] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": tids[lane], "args": {"name": lane},
            })
        return tids[lane]

    for ev in events:
        lane = _lane(ev)
        entry: Dict[str, object] = {
            "name": type(ev).__name__,
            "cat": ev.source or "system",
            "pid": 1,
            "tid": tid_of(lane),
            "ts": ev.time * _US,
            "args": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in ev.to_record().items()
                if k not in ("event", "time")
            },
        }
        seconds = getattr(ev, DURATION_ATTR, None)
        if isinstance(seconds, (int, float)) and seconds > 0:
            entry["ph"] = "X"
            entry["dur"] = seconds * _US
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)

    doc: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry", "run": run_name},
    }
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    elif out is not None:
        json.dump(doc, out)
    return doc


# ---------------------------------------------------------------------------
# metrics exporters
# ---------------------------------------------------------------------------

def _write_text(text: str, out: Union[str, TextIO, None]) -> str:
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
    elif out is not None:
        out.write(text)
    return text


def _prom_num(v: float) -> str:
    return f"{v:.10g}"


def to_prometheus(agg, out: Union[str, TextIO, None] = None,
                  prefix: str = "repro", slo=None) -> str:
    """Render a :class:`~repro.telemetry.metrics.MetricsAggregator` in
    the Prometheus text exposition format (histograms as cumulative
    ``le`` buckets with ``_sum``/``_count``, gauges, event counters).
    When an :class:`~repro.telemetry.slo.SloEngine` is passed as
    ``slo``, its per-objective error-budget gauges and breach counters
    are appended.  Returns the text; also writes it to ``out`` when
    given."""
    lines: List[str] = []

    def histogram(name: str, help_: str, hist) -> None:
        full = f"{prefix}_{name}"
        lines.append(f"# HELP {full} {help_}")
        lines.append(f"# TYPE {full} histogram")
        cum = 0
        for bound, n in zip(hist.bounds, hist.bucket_counts):
            cum += n
            lines.append(f'{full}_bucket{{le="{_prom_num(bound)}"}} {cum}')
        lines.append(f'{full}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{full}_sum {_prom_num(hist.total)}")
        lines.append(f"{full}_count {hist.count}")

    def gauge(name: str, help_: str, value: float) -> None:
        full = f"{prefix}_{name}"
        lines.append(f"# HELP {full} {help_}")
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_prom_num(value)}")

    histogram("reconfig_latency_seconds",
              "Configuration download latency per Load.",
              agg.reconfig_latency)
    histogram("wait_latency_seconds",
              "Fabric queueing latency per operation.", agg.wait_latency)
    histogram("exec_latency_seconds",
              "Useful fabric time per execution.", agg.exec_latency)
    histogram("op_latency_seconds",
              "Whole-operation latency (FpgaRequest to FpgaComplete).",
              agg.op_latency)

    util = agg.utilization_summary()
    gauge("clb_occupancy", "Resident CLB area (current).",
          agg.clb_occupancy.value)
    gauge("clb_occupancy_mean", "Time-weighted mean resident CLB area.",
          util["clb_occupancy_mean"])
    gauge("clb_occupancy_max", "Peak resident CLB area.",
          util["clb_occupancy_max"])
    gauge("config_port_busy_fraction",
          "Configuration-port busy share of the observed window.",
          util["port_busy_fraction"])
    gauge("resident_configurations_mean",
          "Time-weighted mean number of resident configurations.",
          util["residency_mean"])
    gauge("inflight_ops_mean",
          "Time-weighted mean number of in-flight FPGA operations.",
          util["inflight_mean"])
    gauge("queue_depth_mean",
          "Mean waiting-operation queue depth over the observed window.",
          util["queue_depth_mean"])
    gauge("queue_depth_max", "Peak waiting-operation queue depth.",
          util["queue_depth_max"])
    gauge("queue_wait_seconds_total", "Total fabric queueing seconds.",
          util["queue_wait_seconds"])

    if slo is not None:
        budget = f"{prefix}_slo_error_budget_remaining"
        lines.append(f"# HELP {budget} Error-budget fraction remaining "
                     f"per objective metric (negative = overspent).")
        lines.append(f"# TYPE {budget} gauge")
        breach_counts: Dict[str, int] = {}
        for row in slo.status():
            lines.append(
                f'{budget}{{objective="{row["objective"]}",'
                f'metric="{row["metric"]}"}} '
                f'{_prom_num(float(row["budget_remaining"]))}'
            )
        for b in slo.breaches:
            key = f'objective="{b.objective}",metric="{b.metric}"'
            breach_counts[key] = breach_counts.get(key, 0) + 1
        total_b = f"{prefix}_slo_breaches_total"
        lines.append(f"# HELP {total_b} SLO breach events published, "
                     f"by objective and metric.")
        lines.append(f"# TYPE {total_b} counter")
        for key, n in sorted(breach_counts.items()):
            lines.append(f"{total_b}{{{key}}} {n}")

    total = f"{prefix}_events_total"
    lines.append(f"# HELP {total} Telemetry events folded, by type.")
    lines.append(f"# TYPE {total} counter")
    for name, n in sorted(agg.counts.items()):
        lines.append(f'{total}{{event="{name}"}} {n}')

    return _write_text("\n".join(lines) + "\n", out)


def spans_to_csv(spans, out: Union[str, TextIO, None] = None) -> str:
    """Serialize spans (a :class:`~repro.telemetry.spans.SpanBuilder` or
    an iterable of :class:`~repro.telemetry.spans.Span`) as CSV, one row
    per operation, columns in :data:`~repro.telemetry.spans.SPAN_FIELDS`
    order.  Returns the text; also writes it to ``out`` when given."""
    import csv
    import io

    from .spans import SPAN_FIELDS

    rows = spans.spans if hasattr(spans, "spans") else list(spans)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(SPAN_FIELDS),
                            extrasaction="ignore", lineterminator="\n")
    writer.writeheader()
    for span in rows:
        writer.writerow(span.to_record())
    return _write_text(buf.getvalue(), out)


#: CSV column order of the per-source stage decomposition export.
STAGE_FIELDS = (
    "source", "ops", "duration",
    "queue", "queue_share", "queue_p99",
    "reconfig", "reconfig_share", "reconfig_p99",
    "service", "service_share", "service_p99",
    "unaccounted", "port_seconds", "port_ops",
    "sched_decisions", "preempts",
)


def stages_to_csv(decomp, out: Union[str, TextIO, None] = None) -> str:
    """Serialize a :class:`~repro.telemetry.slo.QueueingDecomposition`
    as CSV, one row per source, columns in :data:`STAGE_FIELDS` order.
    Returns the text; also writes it to ``out`` when given."""
    import csv
    import io

    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(STAGE_FIELDS),
                            extrasaction="ignore", lineterminator="\n")
    writer.writeheader()
    for row in decomp.rows():
        writer.writerow(row)
    return _write_text(buf.getvalue(), out)
