"""Export a telemetry stream to machine-readable formats.

* :func:`to_jsonl` / :class:`JsonlExporter` — one JSON object per line;
  trivially greppable/`jq`-able, append-friendly for streaming.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON format:
  open the file in ``chrome://tracing`` or https://ui.perfetto.dev and
  see every download, state save, transfer and execution as a timeline
  lane per task (instant events for dispatches, faults, preemptions).

Duration semantics: charge events are published at their *start* instant
with their ``seconds`` known up front (the simulator charges, then
yields), so they map directly onto complete ("X") trace events.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, TextIO, Union

from .bus import EventBus
from .events import TelemetryEvent

__all__ = ["to_jsonl", "JsonlExporter", "to_chrome_trace", "DURATION_ATTR"]

#: Events carrying this attribute with a positive value are rendered as
#: complete (duration) trace events; everything else is an instant.
DURATION_ATTR = "seconds"

#: Simulation seconds -> trace microseconds.
_US = 1e6


def _jsonl_line(event: TelemetryEvent) -> str:
    return json.dumps(event.to_record(), sort_keys=True)


def to_jsonl(events: Iterable[TelemetryEvent],
             out: Union[str, TextIO, None] = None) -> str:
    """Serialize ``events`` to JSON-lines; write to ``out`` (path or
    file object) when given.  Returns the serialized text."""
    text = "\n".join(_jsonl_line(e) for e in events)
    if text:
        text += "\n"
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
    elif out is not None:
        out.write(text)
    return text


class JsonlExporter:
    """Streaming JSONL subscriber: every published event becomes a line
    immediately (no buffering of the whole run in memory)."""

    def __init__(self, out: Union[str, TextIO],
                 bus: Optional[EventBus] = None) -> None:
        if isinstance(out, str):
            self._fh: TextIO = open(out, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = out
            self._owns = False
        self.n_written = 0
        if bus is not None:
            bus.subscribe(self.record)

    def record(self, event: TelemetryEvent) -> None:
        self._fh.write(_jsonl_line(event) + "\n")
        self.n_written += 1

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _lane(event: TelemetryEvent) -> str:
    """Timeline lane: the task when attributed, else the publisher."""
    return event.task or event.source or "system"


def to_chrome_trace(
    events: Iterable[TelemetryEvent],
    out: Union[str, TextIO, None] = None,
    run_name: str = "repro",
) -> Dict[str, object]:
    """Convert ``events`` to a Chrome ``trace_event`` document.

    Returns the document as a dict (``json.dump``-ready); writes it to
    ``out`` (path or file object) when given.  Loadable by
    ``chrome://tracing`` and Perfetto (both accept the JSON object form
    with a ``traceEvents`` list plus metadata events naming the threads).
    """
    trace_events: List[Dict[str, object]] = []
    tids: Dict[str, int] = {}

    def tid_of(lane: str) -> int:
        if lane not in tids:
            tids[lane] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": tids[lane], "args": {"name": lane},
            })
        return tids[lane]

    for ev in events:
        lane = _lane(ev)
        entry: Dict[str, object] = {
            "name": type(ev).__name__,
            "cat": ev.source or "system",
            "pid": 1,
            "tid": tid_of(lane),
            "ts": ev.time * _US,
            "args": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in ev.to_record().items()
                if k not in ("event", "time")
            },
        }
        seconds = getattr(ev, DURATION_ATTR, None)
        if isinstance(seconds, (int, float)) and seconds > 0:
            entry["ph"] = "X"
            entry["dur"] = seconds * _US
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)

    doc: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry", "run": run_name},
    }
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    elif out is not None:
        json.dump(doc, out)
    return doc
