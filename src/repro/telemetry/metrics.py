"""Streaming metric primitives and the bus-fed aggregation layer.

The event bus (PR 1) made every occurrence observable; this module turns
the stream into the *analytics* the paper's trade-offs are judged by:

* :class:`Histogram` — fixed-bucket latency histogram (Prometheus
  ``le`` semantics) with exact count/sum/min/max and interpolated
  p50/p95/p99.  O(#buckets) memory, no sample retention, no numpy.
* :class:`TimeWeightedGauge` — piecewise-constant value over simulation
  time with an exact integral (∫ value dt), time-weighted mean and max.
  Out-of-order updates (timestamps before the last observation) are
  applied *at* the last observation, so the integral is well defined on
  any stream ordering the bus can produce.
* :class:`MetricsAggregator` — one bus subscriber deriving the standard
  run analytics: reconfiguration/wait/exec/whole-operation latency
  histograms, CLB-occupancy / configuration-port-busy / residency /
  in-flight gauges, and per-event-type counters.
* :func:`aggregate_events` — the replay primitive: folding a recorded
  stream must yield *exactly* the live aggregator's state (the parity
  tests hold every management policy to this).

Everything here is deterministic: identical event streams fold to
bit-identical state, which is what makes exact-equality parity testing
possible.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from .bus import EventBus
from .events import (
    Evict,
    Exec,
    FpgaComplete,
    FpgaRequest,
    Load,
    StateRestore,
    StateSave,
    TelemetryEvent,
    Wait,
)

__all__ = [
    "LATENCY_BUCKETS",
    "log_buckets",
    "Histogram",
    "TimeWeightedGauge",
    "MetricsAggregator",
    "aggregate_events",
]


def log_buckets(lo_exp: int = -7, hi_exp: int = 1,
                mantissas: Tuple[float, ...] = (1.0, 2.0, 5.0)) -> Tuple[float, ...]:
    """1-2-5 log-spaced bucket bounds covering ``10**lo_exp .. 10**hi_exp``."""
    if hi_exp <= lo_exp:
        raise ValueError("hi_exp must exceed lo_exp")
    out: List[float] = []
    for exp in range(lo_exp, hi_exp):
        for m in mantissas:
            out.append(m * 10.0 ** exp)
    out.append(10.0 ** hi_exp)
    return tuple(out)


#: Default latency bounds: 100 ns .. 10 s (covers a single CLB-row frame
#: download up to a full-serial boot of the largest family).
LATENCY_BUCKETS: Tuple[float, ...] = log_buckets(-7, 1)


class Histogram:
    """Fixed-bucket histogram with exact totals and estimated quantiles.

    ``bounds`` are inclusive upper bounds (Prometheus ``le`` semantics);
    an implicit overflow bucket catches everything above the last bound.
    Because the exact ``min``/``max`` are tracked alongside the buckets,
    quantile interpolation is clamped to the true value range — an
    empty, single-sample or all-equal stream yields *exact* quantiles.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Iterable[float] = LATENCY_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return 0.0 if self.count == 0 else self.total / self.count

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``0 < q <= 1``); ``None`` if empty.

        Linear interpolation inside the bucket containing the target
        rank, with the bucket's range clamped to the observed
        ``[min, max]`` — so degenerate streams come out exact and the
        estimate never leaves the true value range.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.min if i == 0 else max(self.bounds[i - 1], self.min)
                hi = self.max if i >= len(self.bounds) \
                    else min(self.bounds[i], self.max)
                lo = min(lo, hi)
                return lo + (hi - lo) * (target - cum) / n
            cum += n
        return self.max  # pragma: no cover - rounding guard

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (what ``BENCH_*.json`` embeds)."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> Dict[str, object]:
        """Full state (buckets included) for exact parity comparison."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class TimeWeightedGauge:
    """A piecewise-constant value over simulation time.

    Observations carry their own timestamps (the events' ``time``).  An
    update whose timestamp precedes the last observation is applied *at*
    the last observation time (``dt`` clamped to 0): deltas are never
    lost and the integral never runs backwards, so out-of-order
    interleavings (e.g. a ``Suspend`` published after the ``Dispatch``
    that follows it in wall order) stay well defined.
    """

    __slots__ = ("value", "integral", "first_time", "last_time", "max_value")

    def __init__(self, value: float = 0.0) -> None:
        self.value = value
        self.integral = 0.0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self.max_value = value

    def _advance(self, t: float) -> None:
        if self.first_time is None:
            self.first_time = self.last_time = t
            return
        dt = t - self.last_time
        if dt > 0:
            self.integral += self.value * dt
            self.last_time = t

    def set(self, t: float, value: float) -> None:
        self._advance(t)
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, t: float, delta: float) -> None:
        self.set(t, self.value + delta)

    def integral_at(self, t: Optional[float] = None) -> float:
        """∫ value dt from the first observation to ``t`` (default: the
        last observation) — non-mutating."""
        if self.last_time is None:
            return 0.0
        if t is None or t <= self.last_time:
            return self.integral
        return self.integral + self.value * (t - self.last_time)

    def mean(self, t: Optional[float] = None) -> float:
        """Time-weighted mean over the observed window."""
        if self.first_time is None:
            return 0.0
        end = self.last_time if t is None else max(t, self.last_time)
        elapsed = end - self.first_time
        return self.value if elapsed <= 0 else self.integral_at(end) / elapsed

    def snapshot(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "integral": self.integral,
            "first_time": self.first_time,
            "last_time": self.last_time,
            "max": self.max_value,
        }


class MetricsAggregator:
    """Derive latency histograms and utilization gauges from the bus.

    Histograms
    ----------
    * ``reconfig_latency`` — per-download configuration-port time
      (:class:`Load` ``seconds``);
    * ``wait_latency`` — per-operation fabric queueing
      (:class:`Wait` ``seconds``);
    * ``exec_latency`` — per-execution useful fabric time
      (:class:`Exec` ``seconds``);
    * ``op_latency`` — whole-operation turnaround, paired from
      :class:`FpgaRequest`/:class:`FpgaComplete` via task + ``op_id``.

    Gauges (time-weighted over simulation time)
    -------------------------------------------
    * ``clb_occupancy`` — CLBs covered by resident configurations
      (service view: ``Load``/``Evict`` areas; an ``exclusive`` load
      resets it, mirroring the full-serial wipe);
    * ``residency`` — number of resident configurations;
    * ``inflight`` — FPGA operations issued but not completed.

    ``port_busy_seconds`` accumulates configuration-port occupancy
    (loads, evictions, state save/restore); ``port_busy_fraction`` is
    its share of the observed window.

    Parameters
    ----------
    bus:
        Subscribe immediately when given.
    source:
        Fold only service events from this ``source`` (``None`` = all).
        Kernel-attributed events (request/complete pairing) are always
        folded — they carry the per-board stream's task context.
    kernel_sources:
        The ``source`` strings that bypass the filter (default:
        ``("kernel",)``).
    buckets:
        Histogram bounds (default :data:`LATENCY_BUCKETS`).
    clb_capacity:
        Device CLB count; when given, occupancy is also reported as a
        fraction of the device.
    """

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        source: Optional[str] = None,
        kernel_sources: Tuple[str, ...] = ("kernel",),
        buckets: Iterable[float] = LATENCY_BUCKETS,
        clb_capacity: Optional[int] = None,
    ) -> None:
        self.source = source
        self.kernel_sources = kernel_sources
        self.clb_capacity = clb_capacity
        bounds = tuple(buckets)
        self.reconfig_latency = Histogram(bounds)
        self.wait_latency = Histogram(bounds)
        self.exec_latency = Histogram(bounds)
        self.op_latency = Histogram(bounds)
        self.clb_occupancy = TimeWeightedGauge()
        self.residency = TimeWeightedGauge()
        self.inflight = TimeWeightedGauge()
        self.port_busy_seconds = 0.0
        #: total fabric queueing seconds (sum of Wait charges).
        self.queue_wait_seconds = 0.0
        #: endpoint deltas of every wait interval: ``Wait`` is published
        #: at the *end* of the wait (``time``,  with ``seconds`` behind
        #: it), so each event contributes (+1 @ time-seconds, -1 @ time).
        #: Kept raw and swept lazily (:meth:`queue_depth_summary`) —
        #: starts arrive out of order relative to already-folded events,
        #: so an online gauge would clamp overlap away; the lazy sweep
        #: is exact and still a pure function of the stream.
        self._queue_deltas: List[Tuple[float, int]] = []
        self.counts: Dict[str, int] = {}
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        #: handle -> (clbs, count) of the load that made it resident.
        self._resident: Dict[str, Tuple[int, int]] = {}
        #: task -> (request time, op_id) of the in-flight operation.
        self._open_ops: Dict[str, Tuple[float, int]] = {}
        self._handlers: Dict[Type[TelemetryEvent], Callable] = {
            Load: self._on_load,
            Evict: self._on_evict,
            StateSave: self._on_port_charge,
            StateRestore: self._on_port_charge,
            Wait: self._on_wait,
            Exec: self._on_exec,
            FpgaRequest: self._on_request,
            FpgaComplete: self._on_complete,
        }
        if bus is not None:
            bus.subscribe(self)

    # -- folding -------------------------------------------------------------
    def __call__(self, event: TelemetryEvent) -> None:
        if (
            self.source is not None
            and event.source != self.source
            and event.source not in self.kernel_sources
        ):
            return
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        t = event.time
        if self.first_time is None:
            self.first_time = t
        end = t + getattr(event, "seconds", 0.0)
        if self.last_time is None or end > self.last_time:
            self.last_time = end
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    def _on_load(self, e: Load) -> None:
        self.reconfig_latency.observe(e.seconds)
        self.port_busy_seconds += e.seconds
        if e.exclusive:
            # Full-device download: everything previously resident is gone.
            self._resident.clear()
            self._resident[e.handle] = (e.clbs, e.count)
            self.clb_occupancy.set(e.time, e.clbs)
            self.residency.set(e.time, e.count)
        else:
            self._resident[e.handle] = (e.clbs, e.count)
            self.clb_occupancy.add(e.time, e.clbs)
            self.residency.add(e.time, e.count)

    def _on_evict(self, e: Evict) -> None:
        self.port_busy_seconds += e.seconds
        clbs, count = self._resident.pop(e.handle, (e.clbs, 1))
        self.clb_occupancy.add(e.time, -clbs)
        self.residency.add(e.time, -count)

    def _on_port_charge(self, e) -> None:
        self.port_busy_seconds += e.seconds

    def _on_wait(self, e: Wait) -> None:
        self.wait_latency.observe(e.seconds)
        self.queue_wait_seconds += e.seconds
        self._queue_deltas.append((e.time - e.seconds, 1))
        self._queue_deltas.append((e.time, -1))

    def _on_exec(self, e: Exec) -> None:
        self.exec_latency.observe(e.seconds)

    def _on_request(self, e: FpgaRequest) -> None:
        self.inflight.add(e.time, 1)
        self._open_ops[e.task] = (e.time, e.op_id)

    def _on_complete(self, e: FpgaComplete) -> None:
        self.inflight.add(e.time, -1)
        started = self._open_ops.pop(e.task, None)
        if started is not None:
            self.op_latency.observe(e.time - started[0])

    # -- views ---------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """The observed simulation window (first event to last charge end)."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    @property
    def port_busy_fraction(self) -> float:
        elapsed = self.elapsed
        return 0.0 if elapsed <= 0 else self.port_busy_seconds / elapsed

    def queue_depth_summary(self) -> Dict[str, object]:
        """Waiting-operation queue depth, derived from the wait
        intervals: the mean is exact (∑ wait seconds over the observed
        window) and the max is an exact sweep over interval endpoints
        (a wait ending exactly when another starts does not overlap
        it)."""
        depth = 0
        max_depth = 0
        for _t, delta in sorted(self._queue_deltas):
            depth += delta
            if depth > max_depth:
                max_depth = depth
        elapsed = self.elapsed
        return {
            "queue_wait_seconds": self.queue_wait_seconds,
            "queue_depth_max": max_depth,
            "queue_depth_mean": (
                0.0 if elapsed <= 0 else self.queue_wait_seconds / elapsed
            ),
        }

    def latency_summary(self) -> Dict[str, Dict[str, object]]:
        return {
            "reconfig": self.reconfig_latency.as_dict(),
            "wait": self.wait_latency.as_dict(),
            "exec": self.exec_latency.as_dict(),
            "op": self.op_latency.as_dict(),
        }

    def utilization_summary(self) -> Dict[str, object]:
        end = self.last_time
        out: Dict[str, object] = {
            "elapsed": self.elapsed,
            "clb_occupancy_mean": self.clb_occupancy.mean(end),
            "clb_occupancy_max": self.clb_occupancy.max_value,
            "clb_occupancy_integral": self.clb_occupancy.integral_at(end),
            "residency_mean": self.residency.mean(end),
            "residency_max": self.residency.max_value,
            "inflight_mean": self.inflight.mean(end),
            "inflight_max": self.inflight.max_value,
            "port_busy_seconds": self.port_busy_seconds,
            "port_busy_fraction": self.port_busy_fraction,
            **self.queue_depth_summary(),
        }
        if self.clb_capacity:
            out["clb_capacity"] = self.clb_capacity
            out["clb_occupancy_fraction_mean"] = (
                self.clb_occupancy.mean(end) / self.clb_capacity
            )
            out["clb_occupancy_fraction_max"] = (
                self.clb_occupancy.max_value / self.clb_capacity
            )
        return out

    def snapshot(self) -> Dict[str, object]:
        """Exhaustive state for exact parity comparison: histogram
        buckets, gauge integrals, counters — everything the stream
        determines."""
        return {
            "histograms": {
                "reconfig": self.reconfig_latency.snapshot(),
                "wait": self.wait_latency.snapshot(),
                "exec": self.exec_latency.snapshot(),
                "op": self.op_latency.snapshot(),
            },
            "gauges": {
                "clb_occupancy": self.clb_occupancy.snapshot(),
                "residency": self.residency.snapshot(),
                "inflight": self.inflight.snapshot(),
            },
            "port_busy_seconds": self.port_busy_seconds,
            "queue": {
                "deltas": list(self._queue_deltas),
                **self.queue_depth_summary(),
            },
            "counts": dict(sorted(self.counts.items())),
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


def aggregate_events(
    events: Iterable[TelemetryEvent],
    source: Optional[str] = None,
    buckets: Iterable[float] = LATENCY_BUCKETS,
    clb_capacity: Optional[int] = None,
) -> MetricsAggregator:
    """Replay a recorded stream into a fresh aggregator — the parity
    primitive: a live aggregator's snapshot must equal the snapshot
    derived from the events it saw."""
    agg = MetricsAggregator(source=source, buckets=buckets,
                            clb_capacity=clb_capacity)
    for e in events:
        agg(e)
    return agg
