"""Wall-clock profiling subscriber: how fast is the simulator itself?

The bus carries *simulation*-time facts; :class:`Profiler` adds the
*wall*-clock dimension — events/second through the bus, simulated seconds
per subsystem, counts per event type — in O(1) memory, so it is always-on
cheap and is what the benchmark harness embeds into ``BENCH_*.json``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .bus import EventBus
from .events import TelemetryEvent

__all__ = ["Profiler"]

#: Event-type name -> subsystem bucket for the time-per-subsystem view.
#: The Cad* names are the compile-path events
#: (:mod:`repro.cad.instrument`): only :class:`CadPhaseEnd` carries the
#: duration attribute (phase wall seconds), so the ``cad`` bucket is the
#: per-phase total without double-counting the per-step events.
_SUBSYSTEM: Dict[str, str] = {
    "Load": "config-port",
    "Evict": "config-port",
    "StateSave": "config-port",
    "StateRestore": "config-port",
    "ConfigPortOp": "device-port",
    "PortTransfer": "io-mux",
    "Exec": "fabric",
    "Wait": "queueing",
    "ScrubPass": "integrity",
    "CadPhaseStart": "cad",
    "CadPhaseEnd": "cad",
    "CadAnnealStep": "cad",
    "CadRouteIteration": "cad",
    "SchedDecision": "sched",
    "DeadlineMiss": "sched",
    "SloBreach": "slo",
}

#: The compile-path event names (the ``cad`` summary row aggregates them).
_CAD_EVENTS = (
    "CadPhaseStart", "CadPhaseEnd", "CadAnnealStep", "CadRouteIteration",
)

#: Fabric-scheduling event names (the ``sched`` summary row).
_SCHED_EVENTS = ("SchedDecision", "DeadlineMiss")

#: SLO-engine event names (the ``slo`` summary row).
_SLO_EVENTS = ("SloBreach",)


class Profiler:
    """Count events per type and sum their simulated durations.

    Parameters
    ----------
    bus:
        Subscribe immediately when given.
    clock:
        Wall-clock source (injectable for deterministic tests).
    """

    def __init__(self, bus: Optional[EventBus] = None, clock=time.perf_counter) -> None:
        self._clock = clock
        self.counts: Dict[str, int] = {}
        self.sim_seconds: Dict[str, float] = {}
        self.n_events = 0
        self.first_wall: Optional[float] = None
        self.last_wall: Optional[float] = None
        if bus is not None:
            bus.subscribe(self.record)

    def record(self, event: TelemetryEvent) -> None:
        now = self._clock()
        if self.first_wall is None:
            self.first_wall = now
        self.last_wall = now
        name = type(event).__name__
        self.n_events += 1
        self.counts[name] = self.counts.get(name, 0) + 1
        seconds = getattr(event, "seconds", None)
        if isinstance(seconds, (int, float)) and seconds > 0:
            self.sim_seconds[name] = self.sim_seconds.get(name, 0.0) + seconds

    # -- views ---------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        if self.first_wall is None or self.last_wall is None:
            return 0.0
        return self.last_wall - self.first_wall

    @property
    def events_per_second(self) -> float:
        wall = self.wall_seconds
        return 0.0 if wall <= 0 else self.n_events / wall

    def by_subsystem(self) -> Dict[str, float]:
        """Simulated seconds summed into coarse subsystem buckets."""
        out: Dict[str, float] = {}
        for name, secs in self.sim_seconds.items():
            bucket = _SUBSYSTEM.get(name, "other")
            out[bucket] = out.get(bucket, 0.0) + secs
        return out

    def summary(self) -> Dict[str, object]:
        """JSON-ready snapshot (embedded in ``BENCH_*.json``).

        Streams carrying compile-path events gain a ``cad`` row: the
        per-event counts plus the summed phase wall seconds (for CAD
        events the time dimension *is* wall clock — the compile path has
        no simulator).  Streams carrying fabric-scheduling or SLO-engine
        events gain ``sched``/``slo`` rows the same way (counts only —
        decisions, misses and breaches are instants without a duration
        dimension)."""
        out: Dict[str, object] = {
            "n_events": self.n_events,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
            "counts": dict(sorted(self.counts.items())),
            "sim_seconds_by_event": dict(sorted(self.sim_seconds.items())),
            "sim_seconds_by_subsystem": dict(sorted(self.by_subsystem().items())),
        }
        cad_counts = {
            name: self.counts[name] for name in _CAD_EVENTS
            if name in self.counts
        }
        if cad_counts:
            out["cad"] = {
                "counts": cad_counts,
                "phase_wall_seconds": self.sim_seconds.get("CadPhaseEnd", 0.0),
            }
        sched_counts = {
            name: self.counts[name] for name in _SCHED_EVENTS
            if name in self.counts
        }
        if sched_counts:
            out["sched"] = {"counts": sched_counts}
        slo_counts = {
            name: self.counts[name] for name in _SLO_EVENTS
            if name in self.counts
        }
        if slo_counts:
            out["slo"] = {"counts": slo_counts}
        return out
