"""Bus subscribers that *derive* what used to be hand-filled state.

* :class:`EventLog` — records the raw event stream (optionally as a
  bounded ring so million-task runs don't OOM).
* :class:`MetricsRecorder` — folds service events into a
  :class:`~repro.core.metrics.ServiceMetrics`, exactly reproducing the
  counters every policy used to maintain by hand at each charge site.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Type

from .bus import EventBus
from .events import (
    Compact,
    DeadlineMiss,
    Evict,
    Exec,
    Hit,
    Load,
    Miss,
    OpStart,
    PageAccess,
    PageFault,
    PortTransfer,
    Preempt,
    Relocate,
    Rollback,
    SegmentFault,
    StateRestore,
    StateSave,
    TelemetryEvent,
    Wait,
)

__all__ = ["EventLog", "MetricsRecorder", "derive_metrics"]


class EventLog:
    """Record every published event, optionally in a bounded ring.

    Parameters
    ----------
    bus:
        Subscribe to this bus immediately (optional; events can also be
        fed via :meth:`record`, e.g. when replaying a stored stream).
    max_events:
        ``None`` = unbounded append-only log.  Otherwise the log keeps
        only the most recent ``max_events`` events and counts what it
        dropped in :attr:`dropped` — the run's totals stay available
        from :class:`MetricsRecorder`/:class:`~repro.telemetry.profiling.Profiler`,
        which are O(1) in memory.
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be a positive integer or None")
        self.max_events = max_events
        self.dropped = 0
        self._events: List[TelemetryEvent] = []
        #: ring start index (amortized O(1) wraparound without pop(0)).
        self._start = 0
        if bus is not None:
            bus.subscribe(self.record)

    # -- recording ----------------------------------------------------------
    def record(self, event: TelemetryEvent) -> None:
        if self.max_events is None:
            self._events.append(event)
            return
        if len(self._events) < self.max_events:
            self._events.append(event)
            return
        # Overwrite the oldest slot in place.
        self._events[self._start] = event
        self._start = (self._start + 1) % self.max_events
        self.dropped += 1

    # -- queries ------------------------------------------------------------
    @property
    def events(self) -> List[TelemetryEvent]:
        """The retained events, oldest first."""
        if self._start == 0:
            return list(self._events)
        return self._events[self._start:] + self._events[:self._start]

    def of_type(self, *event_types: type) -> List[TelemetryEvent]:
        return [e for e in self.events if isinstance(e, event_types)]

    def count(self, *event_types: type) -> int:
        return sum(1 for e in self.events if isinstance(e, event_types))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events)

    def clear(self) -> None:
        self._events.clear()
        self._start = 0
        self.dropped = 0


class MetricsRecorder:
    """Derive a :class:`~repro.core.metrics.ServiceMetrics` from the bus.

    Every mapping below is the charge-site increment it replaced; the
    parity test in ``tests/telemetry/test_parity.py`` holds this recorder
    to exact equality with a replay of the recorded stream.

    Parameters
    ----------
    metrics:
        The (mutable) metrics object to fold into.
    source:
        Only fold events whose ``source`` matches (``None`` = all) — one
        bus can carry several services' streams (multi-board systems).
    """

    def __init__(self, metrics, source: Optional[str] = None) -> None:
        self.metrics = metrics
        self.source = source
        self._handlers: Dict[Type[TelemetryEvent], Callable] = {
            Load: self._on_load,
            Evict: self._on_evict,
            StateSave: self._on_state_save,
            StateRestore: self._on_state_restore,
            Exec: self._on_exec,
            PortTransfer: self._on_io,
            Wait: self._on_wait,
            Hit: lambda e: self._inc("n_hits"),
            Miss: lambda e: self._inc("n_misses"),
            OpStart: lambda e: self._inc("n_ops"),
            PageAccess: lambda e: self._inc("n_page_accesses"),
            PageFault: lambda e: self._inc("n_page_faults"),
            SegmentFault: lambda e: self._inc("n_page_faults"),
            Preempt: lambda e: self._inc("n_preemptions"),
            Rollback: lambda e: self._inc("n_rollbacks"),
            Relocate: lambda e: self._inc("n_relocations"),
            Compact: lambda e: self._inc("n_compactions"),
            DeadlineMiss: lambda e: self._inc("n_deadline_misses"),
        }

    #: The event types this recorder folds (for targeted subscription).
    @property
    def event_types(self) -> tuple:
        return tuple(self._handlers)

    def attach(self, bus: EventBus):
        """Subscribe to exactly the event types that move a counter."""
        return bus.subscribe(self, *self._handlers)

    def _inc(self, name: str) -> None:
        setattr(self.metrics, name, getattr(self.metrics, name) + 1)

    def _on_load(self, e: Load) -> None:
        self.metrics.n_loads += e.count
        self.metrics.load_time += e.seconds
        self.metrics.frames_written += e.frames_written

    def _on_evict(self, e: Evict) -> None:
        self.metrics.n_unloads += 1
        self.metrics.n_evictions += 1
        self.metrics.load_time += e.seconds
        self.metrics.frames_written += e.frames_written

    def _on_state_save(self, e: StateSave) -> None:
        self.metrics.n_state_saves += 1
        self.metrics.state_time += e.seconds

    def _on_state_restore(self, e: StateRestore) -> None:
        self.metrics.n_state_restores += 1
        self.metrics.state_time += e.seconds

    def _on_exec(self, e: Exec) -> None:
        self.metrics.exec_time += e.seconds

    def _on_io(self, e: PortTransfer) -> None:
        self.metrics.io_time += e.seconds

    def _on_wait(self, e: Wait) -> None:
        self.metrics.wait_time += e.seconds

    def __call__(self, event: TelemetryEvent) -> None:
        if self.source is not None and event.source != self.source:
            return
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)


def derive_metrics(events: Iterable[TelemetryEvent],
                   source: Optional[str] = None):
    """Replay a recorded stream into a fresh ``ServiceMetrics`` — the
    parity-check primitive: a live service's metrics must equal the
    metrics derived from its published events."""
    from ..core.metrics import ServiceMetrics

    rec = MetricsRecorder(ServiceMetrics(), source=source)
    for e in events:
        rec(e)
    return rec.metrics
