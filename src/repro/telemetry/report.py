"""The run report: one human-readable summary of a telemetry stream.

``repro report``, ``examples/quickstart.py --report`` and the benchmark
harness all reduce a run to the same two structures:

* :func:`run_summary` — a JSON-ready dict (latency histograms with
  p50/p95/p99, utilization gauges, per-task phase totals) embedded
  verbatim into ``BENCH_<experiment>.json``;
* :func:`render_report` — the ASCII tables a human reads at the end of
  a run (the numbers are the same objects, formatted).

Keeping the two views one function apart is the acceptance criterion:
what ``repro report`` prints *is* what the benchmark artifact records.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import MetricsAggregator
from .spans import SpanBuilder

__all__ = ["run_summary", "render_report", "per_task_rows"]


def per_task_rows(spans: SpanBuilder) -> List[Dict[str, object]]:
    """One row per task: operation count and phase totals (seconds)."""
    rows: List[Dict[str, object]] = []
    for task, task_spans in sorted(spans.by_task().items()):
        rows.append({
            "task": task,
            "ops": len(task_spans),
            "wait": sum(s.wait_seconds for s in task_spans),
            "reconfig": sum(s.reconfig_seconds for s in task_spans),
            "state": sum(s.state_seconds for s in task_spans),
            "exec": sum(s.exec_seconds for s in task_spans),
            "io": sum(s.io_seconds for s in task_spans),
            "turnaround": sum(s.duration for s in task_spans),
            "faults": sum(s.n_page_faults + s.n_segment_faults
                          for s in task_spans),
            "preemptions": sum(s.n_preemptions for s in task_spans),
        })
    return rows


def run_summary(agg: MetricsAggregator,
                spans: Optional[SpanBuilder] = None,
                auditor=None) -> Dict[str, object]:
    """JSON-ready reduction of a run (what ``BENCH_*.json`` embeds).

    Given an :class:`~repro.telemetry.audit.Auditor`, its violation
    report is embedded under ``"audit"`` — benchmark artifacts record
    not just the numbers but whether the run honored the contract.
    """
    out: Dict[str, object] = {
        "latency": agg.latency_summary(),
        "utilization": agg.utilization_summary(),
    }
    if spans is not None:
        out["spans"] = {
            "n_spans": len(spans.spans),
            "n_open": len(spans.open_spans),
            "n_orphans": spans.n_orphans,
            "per_task": per_task_rows(spans),
        }
    if auditor is not None:
        out["audit"] = auditor.summary()
    return out


def _latency_rows(agg: MetricsAggregator) -> List[Dict[str, object]]:
    from ..analysis import fmt_time

    def fmt(v: Optional[float]) -> str:
        return "-" if v is None else fmt_time(v)

    rows = []
    for label, hist in [
        ("reconfiguration", agg.reconfig_latency),
        ("wait (queueing)", agg.wait_latency),
        ("execution", agg.exec_latency),
        ("operation (req→done)", agg.op_latency),
    ]:
        d = hist.as_dict()
        rows.append({
            "latency": label,
            "count": d["count"],
            "mean": fmt(d["mean"] if d["count"] else None),
            "p50": fmt(d["p50"]),
            "p95": fmt(d["p95"]),
            "p99": fmt(d["p99"]),
            "max": fmt(d["max"]),
        })
    return rows


def _utilization_rows(agg: MetricsAggregator) -> List[Dict[str, object]]:
    from ..analysis import fmt_pct

    util = agg.utilization_summary()
    occupancy_mean = f"{util['clb_occupancy_mean']:.1f}"
    occupancy_max = f"{util['clb_occupancy_max']:.0f}"
    if "clb_capacity" in util:
        occupancy_mean += (
            f" ({fmt_pct(util['clb_occupancy_fraction_mean'])}"
            f" of {util['clb_capacity']})"
        )
        occupancy_max += f" ({fmt_pct(util['clb_occupancy_fraction_max'])})"
    return [
        {"gauge": "CLB occupancy", "time-weighted mean": occupancy_mean,
         "max": occupancy_max},
        {"gauge": "config-port busy",
         "time-weighted mean": fmt_pct(util["port_busy_fraction"]),
         "max": ""},
        {"gauge": "resident configurations",
         "time-weighted mean": f"{util['residency_mean']:.2f}",
         "max": f"{util['residency_max']:.0f}"},
        {"gauge": "in-flight FPGA ops",
         "time-weighted mean": f"{util['inflight_mean']:.2f}",
         "max": f"{util['inflight_max']:.0f}"},
        {"gauge": "waiting ops (queue depth)",
         "time-weighted mean": f"{util['queue_depth_mean']:.2f}",
         "max": f"{util['queue_depth_max']:.0f}"},
    ]


def render_report(agg: MetricsAggregator,
                  spans: Optional[SpanBuilder] = None,
                  title: str = "run report") -> str:
    """Human-readable summary tables: latency percentiles, utilization
    gauges and (given spans) the per-task phase breakdown."""
    from ..analysis import fmt_time, format_table

    parts = [
        format_table(_latency_rows(agg), title=f"{title} — latency"),
        format_table(_utilization_rows(agg),
                     title=f"{title} — utilization "
                           f"(window {fmt_time(agg.elapsed)})"),
    ]
    if spans is not None and spans.spans:
        rows = [
            {
                "task": r["task"],
                "ops": r["ops"],
                "wait": fmt_time(r["wait"]),
                "reconfig": fmt_time(r["reconfig"]),
                "state": fmt_time(r["state"]),
                "exec": fmt_time(r["exec"]),
                "io": fmt_time(r["io"]),
                "turnaround": fmt_time(r["turnaround"]),
                "faults": r["faults"],
                "preempts": r["preemptions"],
            }
            for r in per_task_rows(spans)
        ]
        parts.append(format_table(rows, title=f"{title} — per-task breakdown"))
        if spans.open_spans:
            parts.append(
                f"note: {len(spans.open_spans)} operation(s) never completed "
                f"in the stream (truncated recording or deadlock): "
                + ", ".join(sorted(spans.open_spans))
            )
    return "\n\n".join(parts)
