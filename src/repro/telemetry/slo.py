"""Per-source SLO evaluation and queueing decomposition over the stream.

The metrics layer (PR 2) answers *what are the percentiles*; the audit
layer (PR 3) answers *was the contract honored*.  This module answers
the production questions in between: **is each tenant meeting its
objective**, **where does its latency come from**, and **how much error
budget is left** — all as pure functions of the event stream, so a
recorded JSONL evaluates exactly like the live run and attaching the
engine never perturbs the simulation it watches.

SLO engine
----------
:class:`SloObjective` declares one tenant's target set — a latency
percentile bound (``p99 <= 5 ms``), a deadline-miss-rate ceiling, an
availability floor — scoped by ``task``/``source`` glob selectors and
evaluated over a rolling simulation-time ``window`` (0 = cumulative).
:class:`SloEngine` subscribes to the bus, pairs every
:class:`~repro.telemetry.events.FpgaRequest`/:class:`FpgaComplete` into
a completed-operation latency attributed to the *serving source* (the
first service that published for the task while the operation was open
— multi-board streams keep tenants separable), folds
:class:`~repro.telemetry.events.DeadlineMiss`/:class:`TaskDone` into a
miss rate, and republishes a typed :class:`SloBreach` event whenever an
objective crosses from met to violated (latched: one breach per
crossing, re-armed when the objective recovers).

Error budgets and burn rates follow the SRE convention: a ``pXX``
target allows a ``1 - XX`` fraction of bad operations; the budget
remaining is ``1 - bad/(allowed × total)``.  With ``burn_factor > 0``
the engine additionally runs the multi-window burn-rate alert — a
warning-severity :class:`SloBreach` (``metric="burn-rate"``) fires when
the budget is burning faster than ``burn_factor×`` over *both* the long
window (``window``) and the short window (``window / 12``), the
standard fast-burn page condition.

Queueing decomposition
----------------------
:class:`QueueingDecomposition` folds the causal spans
(:mod:`repro.telemetry.spans`) into per-source *stage* accounting —
where did each tenant's latency actually go:

* ``queue``    — fabric queueing (:class:`Wait`);
* ``reconfig`` — configuration-port traffic (loads, evictions, state
  save/restore: the virtualization tax);
* ``service``  — useful work (fabric execution + pin-mux I/O).

Each stage keeps a full latency :class:`~repro.telemetry.metrics.
Histogram` per source, so a p99 regression is attributable to a stage
rather than opaque; :class:`~repro.telemetry.events.ConfigPortOp` and
:class:`~repro.telemetry.events.SchedDecision` events supply the
device-port occupancy and priced-preemption counts per source as
supplementary columns.

Replay: :func:`evaluate_slo` and :func:`decompose_events` fold recorded
streams into fresh instances — live state must equal replayed state
exactly (the parity tests hold every policy to this).  Recorded
:class:`SloBreach` events are ignored on folding, so evaluating an
already-evaluated recording converges instead of echoing.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass
from fnmatch import fnmatchcase
from math import ceil
from typing import (
    ClassVar,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .bus import EventBus
from .events import (
    ConfigPortOp,
    DeadlineMiss,
    FpgaComplete,
    FpgaRequest,
    SchedDecision,
    TaskDone,
    TelemetryEvent,
    register_event_type,
)
from .metrics import LATENCY_BUCKETS, Histogram
from .spans import Span, SpanBuilder

__all__ = [
    "SloBreach",
    "SloObjective",
    "SloEngine",
    "QueueingDecomposition",
    "STAGES",
    "evaluate_slo",
    "decompose_events",
    "parse_slo_spec",
]


@register_event_type
@dataclass(frozen=True)
class SloBreach(TelemetryEvent):
    """An objective crossed from met to violated (or burned too fast).

    Published back onto the bus by the :class:`SloEngine`, so breaches
    ride every existing export path (JSONL, Chrome trace, ``repro
    report``) with no extra plumbing.  ``severity`` is ``"error"`` for a
    violated objective and ``"warning"`` for a burn-rate alert;
    ``budget_remaining`` is the error-budget fraction left for the
    breached metric at the moment of the breach (negative = overspent).
    Bus-only (``kind=None``): the legacy trace stays unchanged.
    """

    objective: str = ""
    metric: str = ""            #: "p99" / "miss-rate" / "availability" / "burn-rate"
    threshold: float = 0.0
    observed: float = 0.0
    window: float = 0.0
    budget_remaining: float = 1.0
    severity: str = "error"     #: "error" | "warning"
    kind: ClassVar[Optional[str]] = None

    @property
    def detail(self) -> str:
        return (f"{self.objective}: {self.metric} {self.observed:.4g} vs "
                f"{self.threshold:.4g}")


@dataclass(frozen=True)
class SloObjective:
    """One tenant's declarative service-level objective.

    Parameters
    ----------
    name:
        Objective identifier (appears in breach events and reports).
    task / source:
        Glob selectors (``fnmatch``) scoping which operations count:
        ``task`` matches the task name, ``source`` the serving service
        source.  ``"*"`` matches everything.
    latency:
        Latency bound in seconds at ``percentile`` over the window
        (``None`` = no latency objective).
    percentile:
        The bounded percentile as a fraction (0.99 = p99).  Also sets
        the error budget: a p99 target allows 1% bad operations.
    miss_rate:
        Maximum fraction of completed tasks that missed their declared
        deadline (``None`` = no deadline objective).
    availability:
        Minimum fraction of issued operations that completed by end of
        stream — evaluated once at :meth:`SloEngine.finish`, where
        "never completed" is decidable (``None`` = no objective).
    window:
        Rolling evaluation window in simulation seconds (0 =
        cumulative over the whole stream).
    min_samples:
        Completions required in the window before the latency/miss
        objectives are judged (early operations always look slow).
    burn_factor:
        Multi-window burn-rate alert threshold (0 = alerts off; needs
        ``window > 0`` and a latency objective).
    """

    name: str
    task: str = "*"
    source: str = "*"
    latency: Optional[float] = None
    percentile: float = 0.99
    miss_rate: Optional[float] = None
    availability: Optional[float] = None
    window: float = 0.0
    min_samples: int = 1
    burn_factor: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a name")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        if self.latency is not None and self.latency <= 0:
            raise ValueError("latency target must be positive")
        if self.miss_rate is not None and not 0.0 <= self.miss_rate < 1.0:
            raise ValueError("miss_rate must be in [0, 1)")
        if self.availability is not None and not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if self.window < 0:
            raise ValueError("window must be non-negative")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.burn_factor < 0:
            raise ValueError("burn_factor must be non-negative")

    @property
    def latency_metric(self) -> str:
        """The latency metric label, e.g. ``"p99"`` (``"p99.5"`` style
        for fractional percentiles)."""
        pct = self.percentile * 100.0
        return f"p{pct:g}"

    def matches(self, task: str, source: str) -> bool:
        return fnmatchcase(task, self.task) and fnmatchcase(source, self.source)

    def describe(self) -> str:
        parts = []
        if self.latency is not None:
            parts.append(f"{self.latency_metric}<={self.latency:g}s")
        if self.miss_rate is not None:
            parts.append(f"miss-rate<={self.miss_rate:g}")
        if self.availability is not None:
            parts.append(f"availability>={self.availability:g}")
        return " ".join(parts) or "(no targets)"


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (exact, no
    interpolation — deterministic on any stream)."""
    rank = max(1, ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class _ObjectiveState:
    """Mutable evaluation state of one objective (engine-internal)."""

    __slots__ = (
        "completed", "bad_latency", "requests", "completions",
        "tasks_done", "tasks_missed", "window_lat", "window_sorted",
        "window_tasks", "burn_long", "burn_short", "latched", "observed",
    )

    def __init__(self) -> None:
        self.completed = 0        #: matching completed operations
        self.bad_latency = 0      #: completions over the latency target
        self.requests = 0         #: matching issued operations
        self.completions = 0      #: matching completions (availability)
        self.tasks_done = 0       #: matching TaskDone count
        self.tasks_missed = 0     #: matching DeadlineMiss count
        #: rolling window of (time, latency) plus a sorted mirror for
        #: exact percentile lookups without re-sorting per event.
        self.window_lat: Deque[Tuple[float, float]] = deque()
        self.window_sorted: List[float] = []
        #: rolling window of (time, missed) task completions.
        self.window_tasks: Deque[Tuple[float, int]] = deque()
        #: burn-rate windows of (time, bad) completions.
        self.burn_long: Deque[Tuple[float, int]] = deque()
        self.burn_short: Deque[Tuple[float, int]] = deque()
        #: metric -> currently latched breached state.
        self.latched: Dict[str, bool] = {}
        #: metric -> last observed value (report view).
        self.observed: Dict[str, float] = {}

    def snapshot(self) -> Dict[str, object]:
        return {
            "completed": self.completed,
            "bad_latency": self.bad_latency,
            "requests": self.requests,
            "completions": self.completions,
            "tasks_done": self.tasks_done,
            "tasks_missed": self.tasks_missed,
            "window_lat": list(self.window_lat),
            "window_tasks": list(self.window_tasks),
            "latched": dict(sorted(self.latched.items())),
            "observed": dict(sorted(self.observed.items())),
        }


class SloEngine:
    """Bus subscriber evaluating declarative per-source objectives.

    A pure fold over the stream: identical event sequences produce
    identical breach sequences and identical :meth:`snapshot` state,
    live or replayed (:func:`evaluate_slo`).  Recorded
    :class:`SloBreach` and audit events are ignored so re-evaluating an
    already-evaluated recording converges.

    Parameters
    ----------
    objectives:
        The :class:`SloObjective` set to evaluate.
    bus:
        Subscribe immediately when given; breaches are published back
        onto the same bus.
    kernel_sources:
        Source strings that never count as a *serving* source when
        attributing operations (default ``("kernel",)``).
    """

    def __init__(
        self,
        objectives: Iterable[SloObjective],
        bus: Optional[EventBus] = None,
        kernel_sources: Tuple[str, ...] = ("kernel",),
    ) -> None:
        self.objectives: Tuple[SloObjective, ...] = tuple(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.bus = bus
        self.kernel_sources = kernel_sources
        self.breaches: List[SloBreach] = []
        self._states: Dict[str, _ObjectiveState] = {
            o.name: _ObjectiveState() for o in self.objectives
        }
        #: task -> [request time, op_id, serving source] of the open op.
        self._open: Dict[str, List[object]] = {}
        self.n_events = 0
        self.last_time: Optional[float] = None
        self._finished = False
        if bus is not None:
            bus.subscribe_all(self)

    # -- folding -------------------------------------------------------------
    def __call__(self, event: TelemetryEvent) -> None:
        cls = type(event)
        name = cls.__name__
        # Our own output (and the audit layer's) must not feed back in:
        # re-evaluating an evaluated recording has to converge.
        if name in ("SloBreach", "AuditViolation"):
            return
        self.n_events += 1
        self.last_time = event.time if self.last_time is None \
            else max(self.last_time, event.time)
        if cls is FpgaRequest:
            self._on_request(event)          # type: ignore[arg-type]
        elif cls is FpgaComplete:
            self._on_complete(event)         # type: ignore[arg-type]
        elif cls is TaskDone:
            self._on_task_done(event)
        elif cls is DeadlineMiss:
            self._on_deadline_miss(event)
        elif event.task and event.source and \
                event.source not in self.kernel_sources:
            open_op = self._open.get(event.task)
            if open_op is not None and not open_op[2]:
                open_op[2] = event.source

    def _on_request(self, e: FpgaRequest) -> None:
        self._open[e.task] = [e.time, e.op_id, ""]
        for obj in self.objectives:
            # Requests are counted against the *task* selector only: the
            # serving source is unknown until the service answers, and an
            # operation that is never served must still count as issued.
            if fnmatchcase(e.task, obj.task):
                self._states[obj.name].requests += 1

    def _on_complete(self, e: FpgaComplete) -> None:
        open_op = self._open.pop(e.task, None)
        if open_op is None:
            return
        start, _op_id, source = open_op
        latency = e.time - float(start)  # type: ignore[arg-type]
        for obj in self.objectives:
            if not obj.matches(e.task, str(source)):
                continue
            st = self._states[obj.name]
            st.completions += 1
            st.completed += 1
            if obj.latency is None:
                continue
            bad = latency > obj.latency
            if bad:
                st.bad_latency += 1
            st.window_lat.append((e.time, latency))
            insort(st.window_sorted, latency)
            self._prune_latencies(obj, st, e.time)
            self._judge_latency(obj, st, e.time)
            if obj.burn_factor > 0 and obj.window > 0:
                st.burn_long.append((e.time, 1 if bad else 0))
                st.burn_short.append((e.time, 1 if bad else 0))
                self._judge_burn(obj, st, e.time)

    def _on_task_done(self, e: TelemetryEvent) -> None:
        for obj in self.objectives:
            if obj.miss_rate is None or not fnmatchcase(e.task, obj.task):
                continue
            st = self._states[obj.name]
            st.tasks_done += 1
            st.window_tasks.append((e.time, 0))
            self._judge_miss_rate(obj, st, e.time)

    def _on_deadline_miss(self, e: TelemetryEvent) -> None:
        for obj in self.objectives:
            if obj.miss_rate is None or not fnmatchcase(e.task, obj.task):
                continue
            st = self._states[obj.name]
            st.tasks_missed += 1
            st.window_tasks.append((e.time, 1))
            self._judge_miss_rate(obj, st, e.time)

    # -- window upkeep --------------------------------------------------------
    def _prune_latencies(self, obj: SloObjective, st: _ObjectiveState,
                         now: float) -> None:
        if obj.window <= 0:
            return
        horizon = now - obj.window
        while st.window_lat and st.window_lat[0][0] <= horizon:
            _t, lat = st.window_lat.popleft()
            # Remove one occurrence from the sorted mirror.
            idx = self._index_of(st.window_sorted, lat)
            st.window_sorted.pop(idx)
        while st.window_tasks and st.window_tasks[0][0] <= horizon:
            st.window_tasks.popleft()
        while st.burn_long and st.burn_long[0][0] <= horizon:
            st.burn_long.popleft()
        short_horizon = now - obj.window / 12.0
        while st.burn_short and st.burn_short[0][0] <= short_horizon:
            st.burn_short.popleft()

    @staticmethod
    def _index_of(ordered: List[float], value: float) -> int:
        from bisect import bisect_left

        idx = bisect_left(ordered, value)
        if idx >= len(ordered) or ordered[idx] != value:  # pragma: no cover
            raise RuntimeError("window bookkeeping out of sync")
        return idx

    # -- judging --------------------------------------------------------------
    def _budget(self, allowed: float, bad: int, total: int) -> float:
        """Error-budget fraction remaining (1 = untouched, <0 = overspent)."""
        if total <= 0 or allowed <= 0:
            return 1.0
        return 1.0 - (bad / total) / allowed

    def _transition(self, obj: SloObjective, metric: str, breached: bool,
                    observed: float, threshold: float, budget: float,
                    time: float, severity: str = "error") -> None:
        """Latch per metric: publish one breach per met→violated crossing."""
        st = self._states[obj.name]
        st.observed[metric] = observed
        was = st.latched.get(metric, False)
        st.latched[metric] = breached
        if breached and not was:
            self._emit(SloBreach(
                time, source="slo", objective=obj.name, metric=metric,
                threshold=threshold, observed=observed, window=obj.window,
                budget_remaining=budget, severity=severity,
            ))

    def _emit(self, breach: SloBreach) -> None:
        self.breaches.append(breach)
        if self.bus is not None:
            self.bus.publish(breach)

    def _judge_latency(self, obj: SloObjective, st: _ObjectiveState,
                       now: float) -> None:
        if obj.latency is None or len(st.window_sorted) < obj.min_samples:
            return
        observed = _percentile(st.window_sorted, obj.percentile)
        budget = self._budget(1.0 - obj.percentile, st.bad_latency,
                              st.completed)
        self._transition(obj, obj.latency_metric, observed > obj.latency,
                         observed, obj.latency, budget, now)

    def _judge_miss_rate(self, obj: SloObjective, st: _ObjectiveState,
                         now: float) -> None:
        if obj.window > 0:
            horizon = now - obj.window
            while st.window_tasks and st.window_tasks[0][0] <= horizon:
                st.window_tasks.popleft()
        total = len(st.window_tasks)
        if obj.miss_rate is None or total < obj.min_samples:
            return
        missed = sum(m for _t, m in st.window_tasks)
        observed = missed / total
        budget = self._budget(obj.miss_rate, st.tasks_missed,
                              st.tasks_done + st.tasks_missed) \
            if obj.miss_rate > 0 else (0.0 if st.tasks_missed else 1.0)
        self._transition(obj, "miss-rate", observed > obj.miss_rate,
                         observed, obj.miss_rate, budget, now)

    def _judge_burn(self, obj: SloObjective, st: _ObjectiveState,
                    now: float) -> None:
        allowed = 1.0 - obj.percentile
        if allowed <= 0 or len(st.burn_short) < obj.min_samples:
            return

        def burn(window: Deque[Tuple[float, int]]) -> float:
            total = len(window)
            if total == 0:
                return 0.0
            return (sum(b for _t, b in window) / total) / allowed

        long_burn, short_burn = burn(st.burn_long), burn(st.burn_short)
        breached = (long_burn > obj.burn_factor
                    and short_burn > obj.burn_factor)
        budget = self._budget(allowed, st.bad_latency, st.completed)
        self._transition(obj, "burn-rate", breached, short_burn,
                         obj.burn_factor, budget, now, severity="warning")

    # -- end of stream --------------------------------------------------------
    def finish(self) -> None:
        """End-of-stream evaluation: availability is decidable only once
        "never completed" is (operations still open count as failed).
        Idempotent."""
        if self._finished:
            return
        self._finished = True
        t = self.last_time if self.last_time is not None else 0.0
        for obj in self.objectives:
            if obj.availability is None:
                continue
            st = self._states[obj.name]
            if st.requests == 0:
                continue
            observed = st.completions / st.requests
            budget = self._budget(1.0 - obj.availability,
                                  st.requests - st.completions, st.requests) \
                if obj.availability < 1.0 \
                else (0.0 if st.completions < st.requests else 1.0)
            self._transition(obj, "availability",
                             observed < obj.availability, observed,
                             obj.availability, budget, t)

    # -- views ---------------------------------------------------------------
    @property
    def breached(self) -> bool:
        """Any error-severity breach so far (the CLI exit criterion)."""
        return any(b.severity == "error" for b in self.breaches)

    def status(self) -> List[Dict[str, object]]:
        """One report row per objective metric (current window view)."""
        rows: List[Dict[str, object]] = []
        for obj in self.objectives:
            st = self._states[obj.name]
            metrics: List[Tuple[str, Optional[float], str]] = []
            if obj.latency is not None:
                metrics.append((obj.latency_metric, obj.latency, "<="))
            if obj.miss_rate is not None:
                metrics.append(("miss-rate", obj.miss_rate, "<="))
            if obj.availability is not None:
                metrics.append(("availability", obj.availability, ">="))
            if obj.burn_factor > 0 and obj.window > 0:
                metrics.append(("burn-rate", obj.burn_factor, "<="))
            for metric, threshold, sense in metrics:
                budget = 1.0
                if metric in (obj.latency_metric, "burn-rate"):
                    budget = self._budget(1.0 - obj.percentile,
                                          st.bad_latency, st.completed)
                elif metric == "miss-rate" and obj.miss_rate:
                    budget = self._budget(obj.miss_rate, st.tasks_missed,
                                          st.tasks_done + st.tasks_missed)
                elif metric == "availability" and obj.availability is not None \
                        and obj.availability < 1.0:
                    budget = self._budget(1.0 - obj.availability,
                                          st.requests - st.completions,
                                          st.requests)
                rows.append({
                    "objective": obj.name,
                    "selector": f"task={obj.task} source={obj.source}",
                    "metric": metric,
                    "sense": sense,
                    "threshold": threshold,
                    "observed": st.observed.get(metric),
                    "samples": st.completed if metric != "miss-rate"
                    else st.tasks_done + st.tasks_missed,
                    "budget_remaining": budget,
                    "breached": st.latched.get(metric, False),
                })
        return rows

    def summary(self) -> Dict[str, object]:
        """JSON-ready view (what ``repro slo --json`` prints)."""
        return {
            "n_events": self.n_events,
            "n_breaches": len(self.breaches),
            "breached": self.breached,
            "objectives": self.status(),
            "breaches": [b.to_record() for b in self.breaches],
        }

    def snapshot(self) -> Dict[str, object]:
        """Exhaustive state for exact live-vs-replay parity comparison."""
        return {
            "n_events": self.n_events,
            "last_time": self.last_time,
            "finished": self._finished,
            "open": {k: list(v) for k, v in sorted(self._open.items())},
            "states": {name: st.snapshot()
                       for name, st in sorted(self._states.items())},
            "breaches": [b.to_record() for b in self.breaches],
        }


def evaluate_slo(
    events: Iterable[TelemetryEvent],
    objectives: Iterable[SloObjective],
    finish: bool = True,
) -> SloEngine:
    """Replay a recorded stream into a fresh engine — the parity
    primitive: live breaches and state must equal the replay's."""
    engine = SloEngine(objectives)
    for e in events:
        engine(e)
    if finish:
        engine.finish()
    return engine


# ---------------------------------------------------------------------------
# objective spec parsing (the CLI's declarative surface)
# ---------------------------------------------------------------------------

def parse_slo_spec(spec: str) -> SloObjective:
    """Parse one ``--slo`` objective spec into a :class:`SloObjective`.

    Comma-separated clauses; targets use comparison syntax, scoping uses
    ``key=value``::

        p99<=5e-3
        gold:p95<=2e-3,miss-rate<=0.01,window=0.05
        p99<=5e-3,availability>=0.999,task=tenant0*,source=svc*

    A leading ``NAME:`` names the objective (default: the spec itself).
    Recognized scope keys: ``task``, ``source``, ``window``,
    ``min-samples``, ``burn``.
    """
    text = spec.strip()
    if not text:
        raise ValueError("empty SLO spec")
    name = text
    head, sep, rest = text.partition(":")
    if sep and "=" not in head and "<" not in head and ">" not in head:
        name, text = head.strip(), rest.strip()
    kwargs: Dict[str, object] = {"name": name}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "<=" in clause:
            metric, _, value = clause.partition("<=")
            metric, value = metric.strip(), value.strip()
            if metric.startswith("p"):
                try:
                    pct = float(metric[1:])
                except ValueError:
                    raise ValueError(
                        f"bad latency percentile in {clause!r}") from None
                if not 0.0 < pct < 100.0:
                    raise ValueError(f"percentile out of range in {clause!r}")
                kwargs["percentile"] = pct / 100.0
                kwargs["latency"] = float(value)
            elif metric == "miss-rate":
                kwargs["miss_rate"] = float(value)
            else:
                raise ValueError(
                    f"unknown '<=' metric {metric!r} (have pXX, miss-rate)")
        elif ">=" in clause:
            metric, _, value = clause.partition(">=")
            if metric.strip() != "availability":
                raise ValueError(
                    f"unknown '>=' metric {metric.strip()!r} "
                    f"(have availability)")
            kwargs["availability"] = float(value)
        elif "=" in clause:
            key, _, value = clause.partition("=")
            key, value = key.strip(), value.strip()
            if key == "task":
                kwargs["task"] = value
            elif key == "source":
                kwargs["source"] = value
            elif key == "window":
                kwargs["window"] = float(value)
            elif key == "min-samples":
                kwargs["min_samples"] = int(value)
            elif key == "burn":
                kwargs["burn_factor"] = float(value)
            elif key == "name":
                kwargs["name"] = value
            else:
                raise ValueError(
                    f"unknown SLO scope key {key!r} (have task, source, "
                    f"window, min-samples, burn, name)")
        else:
            raise ValueError(
                f"cannot parse SLO clause {clause!r} (expected METRIC<=V, "
                f"availability>=V or key=value)")
    return SloObjective(**kwargs)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# queueing decomposition
# ---------------------------------------------------------------------------

#: The latency stages every operation decomposes into.
STAGES: Tuple[str, ...] = ("queue", "reconfig", "service")


class _SourceStages:
    """Per-source stage accounting (decomposition-internal)."""

    __slots__ = ("ops", "hists", "totals", "duration", "unaccounted",
                 "port_seconds", "port_ops", "sched_decisions", "preempts")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.ops = 0
        self.hists: Dict[str, Histogram] = {
            stage: Histogram(buckets) for stage in STAGES
        }
        self.totals: Dict[str, float] = {stage: 0.0 for stage in STAGES}
        self.duration = 0.0
        self.unaccounted = 0.0
        self.port_seconds = 0.0      #: raw device ConfigPortOp occupancy
        self.port_ops = 0
        self.sched_decisions = 0     #: priced preemption points
        self.preempts = 0            #: ...that chose to preempt


def _span_stages(span: Span) -> Dict[str, float]:
    """One span's stage durations: queue / reconfig / service."""
    return {
        "queue": span.wait_seconds,
        "reconfig": span.reconfig_seconds + span.state_seconds,
        "service": span.exec_seconds + span.io_seconds,
    }


class QueueingDecomposition:
    """Fold closed spans into per-source stage latency attribution.

    Wraps a :class:`~repro.telemetry.spans.SpanBuilder`; every span that
    closes is folded into its serving source's stage histograms (the
    span's first recorded service source; kernel-only spans fold under
    ``"kernel"``).  :class:`~repro.telemetry.events.ConfigPortOp` and
    :class:`~repro.telemetry.events.SchedDecision` events enrich each
    source with device-port occupancy and priced-preemption counts.

    A pure fold: :func:`decompose_events` over the recorded stream must
    equal the live subscriber's state exactly.
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        self._buckets = tuple(buckets)
        self._spans = SpanBuilder()
        self._n_folded = 0
        self.per_source: Dict[str, _SourceStages] = {}
        if bus is not None:
            bus.subscribe_all(self)

    @property
    def spans(self) -> SpanBuilder:
        return self._spans

    def _stats(self, source: str) -> _SourceStages:
        st = self.per_source.get(source)
        if st is None:
            st = self.per_source[source] = _SourceStages(self._buckets)
        return st

    def __call__(self, event: TelemetryEvent) -> None:
        cls = type(event)
        if cls is ConfigPortOp:
            st = self._stats(event.source or "device")
            st.port_seconds += event.seconds  # type: ignore[attr-defined]
            st.port_ops += 1
        elif cls is SchedDecision:
            st = self._stats(event.source or "kernel")
            st.sched_decisions += 1
            if event.preempt:  # type: ignore[attr-defined]
                st.preempts += 1
        self._spans(event)
        closed = self._spans.spans
        while self._n_folded < len(closed):
            self._fold(closed[self._n_folded])
            self._n_folded += 1

    def _fold(self, span: Span) -> None:
        source = span.sources[0] if span.sources else "kernel"
        st = self._stats(source)
        st.ops += 1
        st.duration += span.duration
        st.unaccounted += span.unaccounted_seconds
        for stage, seconds in _span_stages(span).items():
            st.totals[stage] += seconds
            st.hists[stage].observe(seconds)

    # -- views ---------------------------------------------------------------
    def stage_shares(self, source: Optional[str] = None) -> Dict[str, float]:
        """Each stage's share of total operation latency (one source, or
        all sources combined).  Shares are charge-site totals over
        turnaround and may sum past 1 when charges overlap in wall time
        (e.g. an operation billed queueing while its partition's port
        traffic is also charged to it); what matters for attribution is
        each stage's own trend."""
        stats = [self.per_source[source]] if source is not None \
            else list(self.per_source.values())
        duration = sum(s.duration for s in stats)
        if duration <= 0:
            return {stage: 0.0 for stage in STAGES}
        return {
            stage: sum(s.totals[stage] for s in stats) / duration
            for stage in STAGES
        }

    def rows(self) -> List[Dict[str, object]]:
        """One report row per source (the ``repro slo`` stage table)."""
        out: List[Dict[str, object]] = []
        for source in sorted(self.per_source):
            st = self.per_source[source]
            row: Dict[str, object] = {
                "source": source,
                "ops": st.ops,
                "duration": st.duration,
                "unaccounted": st.unaccounted,
                "port_seconds": st.port_seconds,
                "port_ops": st.port_ops,
                "sched_decisions": st.sched_decisions,
                "preempts": st.preempts,
            }
            for stage in STAGES:
                hist = st.hists[stage]
                row[stage] = st.totals[stage]
                row[f"{stage}_share"] = (
                    st.totals[stage] / st.duration if st.duration > 0 else 0.0
                )
                row[f"{stage}_p99"] = hist.quantile(0.99)
            out.append(row)
        return out

    def summary(self) -> Dict[str, object]:
        """JSON-ready reduction (embedded by ``repro slo --json``)."""
        return {
            "stages": list(STAGES),
            "share": self.stage_shares(),
            "per_source": self.rows(),
            "n_spans": len(self._spans.spans),
            "n_open": len(self._spans.open_spans),
        }

    def snapshot(self) -> Dict[str, object]:
        """Exhaustive state for exact parity comparison."""
        return {
            "per_source": {
                source: {
                    "ops": st.ops,
                    "duration": st.duration,
                    "unaccounted": st.unaccounted,
                    "totals": dict(st.totals),
                    "hists": {stage: st.hists[stage].snapshot()
                              for stage in STAGES},
                    "port_seconds": st.port_seconds,
                    "port_ops": st.port_ops,
                    "sched_decisions": st.sched_decisions,
                    "preempts": st.preempts,
                }
                for source, st in sorted(self.per_source.items())
            },
            "n_folded": self._n_folded,
            "n_open": len(self._spans.open_spans),
        }


def decompose_events(
    events: Iterable[TelemetryEvent],
    buckets: Iterable[float] = LATENCY_BUCKETS,
) -> QueueingDecomposition:
    """Replay a recorded stream into a fresh decomposition — the parity
    primitive for stage attribution."""
    decomp = QueueingDecomposition(buckets=buckets)
    for e in events:
        decomp(e)
    return decomp
