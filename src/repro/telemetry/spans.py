"""Causal spans: fold the event stream into per-operation request trees.

One span covers one FPGA operation's life:
``FpgaRequest → Wait → Load/PageFault/SegmentFault → Exec → FpgaComplete``.
The kernel mints an ``op_id`` shared by the request/complete pair; every
event the service publishes in between is attributed to the issuing task
(a task has at most one FPGA operation in flight — the paper's blocking
co-processor model — so task attribution is unambiguous), which is how
the builder assigns phase durations and preemption/rollback annotations
to the right span without any global ordering assumptions.

Phase accounting mirrors the charge sites:

* ``wait_seconds``     — fabric queueing (:class:`Wait`);
* ``reconfig_seconds`` — configuration-port downloads and evictions
  charged to this operation (:class:`Load`/:class:`Evict`);
* ``state_seconds``    — save/restore traffic (:class:`StateSave`/
  :class:`StateRestore`), i.e. preemption cost;
* ``exec_seconds``     — useful fabric time (:class:`Exec`);
* ``io_seconds``       — pin-multiplexed transfers (:class:`PortTransfer`).

``duration - accounted`` time is CPU-side dispatch latency and port
queueing not charged to the task — visible as ``unaccounted_seconds``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Type

from .bus import EventBus
from .events import (
    Evict,
    Exec,
    FpgaComplete,
    FpgaRequest,
    Hit,
    Load,
    Miss,
    PageFault,
    PortTransfer,
    Preempt,
    Rollback,
    SegmentFault,
    StateRestore,
    StateSave,
    Suspend,
    TelemetryEvent,
    Wait,
)

__all__ = ["Span", "SpanBuilder", "build_spans", "SPAN_FIELDS"]


@dataclass
class Span:
    """One FPGA operation, request to completion, with phase durations."""

    task: str
    config: str
    op_id: int
    start: float
    end: Optional[float] = None

    # -- phase durations (seconds) ------------------------------------------
    wait_seconds: float = 0.0
    reconfig_seconds: float = 0.0
    state_seconds: float = 0.0
    exec_seconds: float = 0.0
    io_seconds: float = 0.0

    # -- annotations --------------------------------------------------------
    n_loads: int = 0
    n_evictions: int = 0
    n_page_faults: int = 0
    n_segment_faults: int = 0
    n_preemptions: int = 0
    n_rollbacks: int = 0
    n_suspends: int = 0
    n_hits: int = 0
    n_misses: int = 0
    sources: List[str] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Whole-operation turnaround (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def accounted_seconds(self) -> float:
        return (self.wait_seconds + self.reconfig_seconds
                + self.state_seconds + self.exec_seconds + self.io_seconds)

    @property
    def unaccounted_seconds(self) -> float:
        return max(0.0, self.duration - self.accounted_seconds)

    @property
    def overhead_seconds(self) -> float:
        """Everything that was not useful fabric time."""
        return max(0.0, self.duration - self.exec_seconds)

    def phases(self) -> Dict[str, float]:
        return {
            "wait": self.wait_seconds,
            "reconfig": self.reconfig_seconds,
            "state": self.state_seconds,
            "exec": self.exec_seconds,
            "io": self.io_seconds,
            "unaccounted": self.unaccounted_seconds,
        }

    def to_record(self) -> Dict[str, object]:
        """Flat JSON/CSV-ready view (one row per span)."""
        rec = asdict(self)
        rec["sources"] = ";".join(self.sources)
        rec["duration"] = self.duration
        rec["unaccounted_seconds"] = self.unaccounted_seconds
        return rec


#: CSV column order (stable export schema).
SPAN_FIELDS = (
    "task", "config", "op_id", "start", "end", "duration",
    "wait_seconds", "reconfig_seconds", "state_seconds", "exec_seconds",
    "io_seconds", "unaccounted_seconds",
    "n_loads", "n_evictions", "n_page_faults", "n_segment_faults",
    "n_preemptions", "n_rollbacks", "n_suspends", "n_hits", "n_misses",
    "sources",
)


class SpanBuilder:
    """Bus subscriber pairing requests with completions into spans.

    ``spans`` holds closed spans in completion order; ``open_spans``
    maps task names to operations still in flight (non-empty after a
    run only if the stream was truncated or the run deadlocked).
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.spans: List[Span] = []
        self.open_spans: Dict[str, Span] = {}
        #: completes whose task had no open span (truncated streams).
        self.n_orphans = 0
        self._handlers: Dict[Type[TelemetryEvent], Callable] = {
            FpgaRequest: self._on_request,
            FpgaComplete: self._on_complete,
            Wait: self._charge("wait_seconds"),
            Load: self._on_load,
            Evict: self._on_evict,
            StateSave: self._charge("state_seconds"),
            StateRestore: self._charge("state_seconds"),
            Exec: self._charge("exec_seconds"),
            PortTransfer: self._charge("io_seconds"),
            PageFault: self._count("n_page_faults"),
            SegmentFault: self._count("n_segment_faults"),
            Preempt: self._count("n_preemptions"),
            Rollback: self._count("n_rollbacks"),
            Suspend: self._count("n_suspends"),
            Hit: self._count("n_hits"),
            Miss: self._count("n_misses"),
        }
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus):
        """Subscribe to exactly the event types that shape a span."""
        return bus.subscribe(self, *self._handlers)

    # -- handlers ------------------------------------------------------------
    def _on_request(self, e: FpgaRequest) -> None:
        self.open_spans[e.task] = Span(
            task=e.task, config=e.config, op_id=e.op_id, start=e.time
        )

    def _on_complete(self, e: FpgaComplete) -> None:
        span = self.open_spans.pop(e.task, None)
        if span is None:
            self.n_orphans += 1
            return
        span.end = e.time
        self.spans.append(span)

    def _span_of(self, e: TelemetryEvent) -> Optional[Span]:
        span = self.open_spans.get(e.task) if e.task else None
        if span is not None and e.source and e.source not in span.sources:
            span.sources.append(e.source)
        return span

    def _charge(self, attr: str):
        def handler(e):
            span = self._span_of(e)
            if span is not None:
                setattr(span, attr, getattr(span, attr) + e.seconds)
        return handler

    def _count(self, attr: str):
        def handler(e):
            span = self._span_of(e)
            if span is not None:
                setattr(span, attr, getattr(span, attr) + 1)
        return handler

    def _on_load(self, e: Load) -> None:
        span = self._span_of(e)
        if span is not None:
            span.reconfig_seconds += e.seconds
            span.n_loads += e.count

    def _on_evict(self, e: Evict) -> None:
        span = self._span_of(e)
        if span is not None:
            span.reconfig_seconds += e.seconds
            span.n_evictions += 1

    def __call__(self, event: TelemetryEvent) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    # -- views ---------------------------------------------------------------
    def by_task(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.task, []).append(span)
        return out


def build_spans(events: Iterable[TelemetryEvent]) -> SpanBuilder:
    """Replay a recorded stream into a fresh builder — the parity
    primitive for span accounting (live spans == replayed spans)."""
    builder = SpanBuilder()
    for e in events:
        builder(e)
    return builder
