"""Tests for the analysis harness."""

import pytest

from repro.analysis import (
    crossover_x,
    fmt_pct,
    fmt_ratio,
    fmt_time,
    format_series,
    format_table,
    geometric_mean,
    summarize,
    sweep,
)


class TestFormatters:
    def test_fmt_time_scales(self):
        assert fmt_time(0) == "0"
        assert fmt_time(3e-9) == "3.0ns"
        assert fmt_time(4.5e-6) == "4.5us"
        assert fmt_time(12e-3) == "12.00ms"
        assert fmt_time(2.0) == "2.000s"

    def test_fmt_pct_ratio(self):
        assert fmt_pct(0.1234) == "12.3%"
        assert fmt_ratio(2.5) == "2.50x"


class TestTable:
    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b", "a"])
        assert out.splitlines()[0].index("b") < out.splitlines()[0].index("a")

    def test_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_missing_cell_blank(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert out  # no crash


class TestSeries:
    def test_bars_proportional(self):
        out = format_series([1, 2], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1.0, 2.0])

    def test_all_zero_safe(self):
        assert format_series([1], [0.0])


class TestStats:
    def test_summary(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0 and s.min == 1.0 and s.max == 3.0 and s.n == 3

    def test_summary_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])

    def test_crossover_found(self):
        xs = [0, 1, 2, 3]
        ya = [0, 1, 2, 3]        # grows
        yb = [2, 2, 2, 2]        # flat
        x = crossover_x(xs, ya, yb)
        assert x == pytest.approx(2.0)

    def test_crossover_none(self):
        assert crossover_x([0, 1], [0, 0], [1, 1]) is None

    def test_crossover_length_check(self):
        with pytest.raises(ValueError):
            crossover_x([0], [0, 1], [0, 1])


class TestSweep:
    def test_collects_rows(self):
        res = sweep("n", [1, 2, 3], lambda n: {"sq": n * n})
        assert res.xs() == [1, 2, 3]
        assert res.column("sq") == [1, 4, 9]
        assert all(r["outcome"] == "ok" for r in res)

    def test_expected_errors_become_outcomes(self):
        def run(n):
            if n == 2:
                raise RuntimeError("starved")
            return {"v": n}

        res = sweep("n", [1, 2, 3], run, expected_errors=(RuntimeError,))
        assert res.column("outcome") == ["ok", "RuntimeError", "ok"]

    def test_unexpected_error_propagates(self):
        with pytest.raises(KeyError):
            sweep("n", [1], lambda n: (_ for _ in ()).throw(KeyError("x")))
