"""Knee-point detection and goodput-under-SLO (:mod:`repro.analysis.knee`)."""

import pytest

from repro.analysis import KneePoint, knee_point, max_goodput_under_slo


class TestKneePoint:
    def test_hockey_stick_knee_is_last_flat_point(self):
        """The classic open-loop curve: flat, flat, flat, explode.  The
        knee is the last point before the blowup — the conservative
        capacity estimate an operator provisions to."""
        xs = [50.0, 100.0, 200.0, 400.0]
        ys = [1.0, 1.0, 1.0, 100.0]
        knee = knee_point(xs, ys)
        assert isinstance(knee, KneePoint)
        assert knee.x == 200.0 and knee.y == 1.0 and knee.index == 2
        assert knee.strength > 0.0

    def test_sharper_bend_is_stronger(self):
        gentle = knee_point([1, 2, 3, 4], [1.0, 2.0, 4.0, 8.0])
        sharp = knee_point([1, 2, 3, 4], [1.0, 1.0, 1.0, 100.0])
        assert sharp.strength > gentle.strength

    def test_too_few_points(self):
        assert knee_point([1.0, 2.0], [1.0, 5.0]) is None

    def test_degenerate_axes(self):
        assert knee_point([1, 2, 3], [5.0, 5.0, 5.0]) is None
        assert knee_point([2, 2, 2], [1.0, 5.0, 9.0]) is None

    def test_straight_line_has_no_knee(self):
        assert knee_point([1, 2, 3, 4], [10.0, 20.0, 30.0, 40.0]) is None

    def test_ties_break_earliest(self):
        """Two interior points equidistant from the chord: the earlier
        one wins (conservative capacity)."""
        knee = knee_point([0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 0.5, 1.0])
        assert knee.index == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            knee_point([1, 2, 3], [1, 2])


class TestMaxGoodputUnderSlo:
    def test_best_compliant_point_wins(self):
        assert max_goodput_under_slo(
            rates=[50, 100, 200], goodputs=[10.0, 20.0, 30.0],
            p99s=[0.1, 0.2, 5.0], slo=1.0,
        ) == 20.0

    def test_no_point_qualifies(self):
        assert max_goodput_under_slo(
            rates=[50, 100], goodputs=[10.0, 20.0],
            p99s=[9.0, 9.0], slo=1.0,
        ) == 0.0

    def test_unknown_tail_latency_violates(self):
        """A point without a measured p99 cannot certify the SLO."""
        assert max_goodput_under_slo(
            rates=[50, 100], goodputs=[99.0, 20.0],
            p99s=[None, 0.1], slo=1.0,
        ) == 20.0

    def test_boundary_is_compliant(self):
        assert max_goodput_under_slo(
            rates=[50], goodputs=[10.0], p99s=[1.0], slo=1.0,
        ) == 10.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            max_goodput_under_slo([1], [1.0, 2.0], [0.1], slo=1.0)
