"""CompileCache: content addressing, invalidation and hit fidelity.

The cache key carries everything the compile result depends on —
netlist content digest, device family, region, seed, effort, router
cap — and nothing else.  These tests pin both directions: every
key ingredient change forces a miss, and a hit returns a result
byte-identical to what a fresh compile would have produced.
"""

import numpy as np
import pytest

from repro.cad import (
    CadCacheLookup,
    CadInstrumentation,
    CompileCache,
    compile_netlist,
    netlist_digest,
)
from repro.device import FrameCodec, get_family
from repro.netlist import NetlistBuilder, ripple_adder, serial_crc

ARCH = get_family("VF10")


def compile_kw(**over):
    kw = dict(seed=3, effort="sa", shape="square")
    kw.update(over)
    return kw


class TestNetlistDigest:
    def test_stable_across_regeneration(self):
        assert netlist_digest(ripple_adder(4)) == \
            netlist_digest(ripple_adder(4))

    def test_content_sensitive(self):
        assert netlist_digest(ripple_adder(4)) != \
            netlist_digest(ripple_adder(5))
        assert netlist_digest(ripple_adder(4)) != \
            netlist_digest(serial_crc(8, 0x07))

    def test_mutation_changes_digest(self):
        """No instance memo: editing a netlist must change its digest,
        or the cache would alias distinct designs."""
        b = NetlistBuilder("mut")
        x, y = b.input("x"), b.input("y")
        b.output("o", b.and_(x, y, name="g"))
        nl = b.build()
        before = netlist_digest(nl)
        from dataclasses import replace

        cell = nl.cells["g"]
        nl.replace(replace(cell, fanin=tuple(reversed(cell.fanin))))
        assert netlist_digest(nl) != before


class TestFlowCache:
    def test_warm_hit_is_byte_identical(self, monkeypatch):
        """A warm compile serves the exact configuration bytes a cold
        one produced — checked at the encoded-frame level, under the
        strict audit regime CI regenerates baselines with."""
        monkeypatch.setenv("REPRO_AUDIT", "strict")
        cache = CompileCache()
        cold = compile_netlist(ripple_adder(4), ARCH, cache=cache,
                               **compile_kw())
        warm = compile_netlist(ripple_adder(4), ARCH, cache=cache,
                               **compile_kw())
        assert cache.hits == 1
        assert warm.bitstream == cold.bitstream
        codec = FrameCodec(ARCH)
        f_cold = codec.build_frames(cold.bitstream.clbs,
                                    cold.bitstream.switches,
                                    cold.bitstream.iobs)
        f_warm = codec.build_frames(warm.bitstream.clbs,
                                    warm.bitstream.switches,
                                    warm.bitstream.iobs)
        assert np.array_equal(f_cold, f_warm)
        assert f_cold.tobytes() == f_warm.tobytes()
        assert warm.wirelength == cold.wirelength
        assert warm.critical_path == cold.critical_path

    def test_hit_carries_fresh_profile_not_the_storing_runs(self):
        cache = CompileCache()
        instr = CadInstrumentation()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        warm = compile_netlist(ripple_adder(4), ARCH, cache=cache,
                               instrument=instr, **compile_kw())
        # The warm profile describes the warm run: no phases ran, one
        # flow hit with real bytes behind it.
        assert warm.profile is not None
        assert warm.profile.phase_seconds == {}
        assert warm.profile.cache_hits == 1
        assert warm.profile.cache_bytes_served > 0

    @pytest.mark.parametrize("variant_kw", [
        pytest.param({"seed": 4}, id="seed"),
        pytest.param({"effort": "greedy"}, id="effort"),
        pytest.param({"shape": "columns"}, id="region-shape"),
        pytest.param({"max_route_iterations": 8}, id="router-cap"),
    ])
    def test_flow_option_change_forces_miss(self, variant_kw):
        cache = CompileCache()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        compile_netlist(ripple_adder(4), ARCH, cache=cache,
                        **compile_kw(**variant_kw))
        assert cache.hits == 0

    def test_netlist_content_change_forces_miss(self):
        cache = CompileCache()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        compile_netlist(ripple_adder(5), ARCH, cache=cache, **compile_kw())
        assert cache.hits == 0

    def test_family_change_forces_miss(self):
        cache = CompileCache()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        compile_netlist(ripple_adder(4), get_family("VF12"), cache=cache,
                        **compile_kw())
        assert cache.hits == 0

    def test_engine_change_still_hits(self):
        """The engine knob is deliberately outside the key: the kernels
        are pinned bit-identical, so their outputs are interchangeable
        cache content."""
        cache = CompileCache()
        scalar = compile_netlist(ripple_adder(4), ARCH, cache=cache,
                                 engine="scalar", **compile_kw())
        vector = compile_netlist(ripple_adder(4), ARCH, cache=cache,
                                 engine="vector", **compile_kw())
        assert cache.hits == 1
        assert vector.bitstream == scalar.bitstream


class TestStageCache:
    def test_seed_change_reuses_pack(self):
        """Pack depends on netlist + k only: a new seed recompiles
        place/route but not techmap/pack."""
        cache = CompileCache()
        instr = CadInstrumentation()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        compile_netlist(ripple_adder(4), ARCH, cache=cache,
                        instrument=instr, **compile_kw(seed=9))
        assert cache.stage_hits["pack"] == 1
        assert cache.stage_misses["place"] == 2
        phases = set(instr.profile().phase_seconds)
        assert "techmap" not in phases and "pack" not in phases
        assert "place" in phases and "route" in phases

    def test_router_cap_change_reuses_placement(self):
        cache = CompileCache()
        instr = CadInstrumentation()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        compile_netlist(ripple_adder(4), ARCH, cache=cache,
                        instrument=instr,
                        **compile_kw(max_route_iterations=8))
        assert cache.stage_hits["pack"] == 1
        assert cache.stage_hits["place"] == 1
        phases = set(instr.profile().phase_seconds)
        assert "place" not in phases
        assert "route" in phases

    def test_family_change_invalidates_route_not_pack(self):
        """Packing and placement are family-independent given the same
        k and region; routing is keyed on the family name."""
        arch2 = get_family("VF12")
        assert arch2.k == ARCH.k
        cache = CompileCache()
        a = compile_netlist(ripple_adder(4), ARCH, cache=cache,
                            **compile_kw())
        b = compile_netlist(ripple_adder(4), arch2, cache=cache,
                            **compile_kw())
        assert cache.stage_hits["pack"] == 1
        assert cache.stage_misses["route"] == 2
        # Same region on both devices → the placement was reusable.
        assert a.bitstream.region == b.bitstream.region
        assert cache.stage_hits["place"] == 1


class TestCacheObservability:
    def test_stats_snapshot(self):
        cache = CompileCache()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        stats = cache.stats()
        assert stats["entries"] == len(cache) >= 1
        assert stats["hits"] == 1
        assert stats["bytes_served"] > 0
        assert stats["stage_misses"]["pack"] == 1

    def test_lookup_events_only_when_instrumented(self):
        """Counters always run; typed events only under instrumentation
        (the observer stays inert on plain compiles)."""
        cache = CompileCache()
        compile_netlist(ripple_adder(4), ARCH, cache=cache, **compile_kw())
        instr = CadInstrumentation()
        compile_netlist(ripple_adder(4), ARCH, cache=cache,
                        instrument=instr, **compile_kw())
        lookups = [e for e in instr.events
                   if isinstance(e, CadCacheLookup)]
        assert len(lookups) == 1
        assert lookups[0].stage == "flow"
        assert lookups[0].outcome == "hit"
        assert lookups[0].bytes_served > 0
        assert lookups[0].digest == netlist_digest(ripple_adder(4))

    def test_instrumentation_inert_on_cached_flow(self):
        """Instrumented and plain warm compiles return the same bytes."""
        c1, c2 = CompileCache(), CompileCache()
        compile_netlist(ripple_adder(4), ARCH, cache=c1, **compile_kw())
        compile_netlist(ripple_adder(4), ARCH, cache=c2, **compile_kw())
        plain = compile_netlist(ripple_adder(4), ARCH, cache=c1,
                                **compile_kw())
        seen = compile_netlist(ripple_adder(4), ARCH, cache=c2,
                               instrument=CadInstrumentation(),
                               **compile_kw())
        assert plain.bitstream == seen.bitstream

    def test_registry_shares_one_cache(self):
        """compile_and_register consults the registry-owned cache: the
        same netlist content under a second name is a flow hit."""
        from repro.core import ConfigRegistry

        reg = ConfigRegistry(ARCH)
        reg.compile_and_register(ripple_adder(4), name="a", seed=3)
        reg.compile_and_register(ripple_adder(4), name="b", seed=3)
        assert reg.compile_cache.hits == 1
        assert reg.get("a").bitstream == reg.get("b").bitstream
