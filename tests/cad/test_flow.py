"""End-to-end CAD flow tests: compile → load → decode → equivalence."""

import pytest

from repro.cad import (
    PinCapacityError,
    PlacementError,
    compile_netlist,
    minimal_region,
    verify_bitstream,
    virtual_pin_capacity,
)
from repro.device import Fpga, Rect, get_family
from repro.netlist import (
    alu,
    comparator,
    counter,
    lfsr,
    moore_fsm,
    parity_tree,
    ripple_adder,
    serial_crc,
    shift_register,
)

ARCH = get_family("VF8")


@pytest.mark.parametrize(
    "nl_factory",
    [
        lambda: parity_tree(5),
        lambda: ripple_adder(3),
        lambda: comparator(3),
        lambda: alu(2),
        lambda: counter(4),
        lambda: serial_crc(4, 0x3),
        lambda: lfsr(5),
        lambda: moore_fsm(8, 2, seed=6),
        lambda: shift_register(5),
    ],
    ids=["parity", "adder", "cmp", "alu", "counter", "crc", "lfsr", "fsm", "shift"],
)
def test_compile_and_verify_relocatable(nl_factory):
    nl = nl_factory()
    res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
    verify_bitstream(nl, res.bitstream, ARCH)
    assert res.bitstream.relocatable
    assert res.critical_path > 0


def test_compile_and_verify_dedicated():
    nl = ripple_adder(3)
    res = compile_netlist(nl, ARCH, mode="dedicated", seed=1)
    verify_bitstream(nl, res.bitstream, ARCH)
    assert not res.bitstream.relocatable
    assert res.bitstream.pad_inputs and res.bitstream.pad_outputs


def test_relocated_bitstream_still_correct():
    nl = serial_crc(4, 0x3)
    res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
    r = res.bitstream.region
    moved = res.bitstream.translated(ARCH.width - r.x2, ARCH.height - r.y2)
    verify_bitstream(nl, moved, ARCH)


def test_two_circuits_coexist_and_verify():
    a = compile_netlist(parity_tree(4), ARCH, region=Rect(0, 0, 3, 3), seed=1).bitstream
    b = compile_netlist(counter(3), ARCH, region=Rect(0, 0, 3, 3), seed=1).bitstream
    fpga = Fpga(ARCH)
    fpga.load("a", a)
    fpga.load("b", b.translated(4, 4))
    va, vb = fpga.view("a"), fpga.view("b")
    assert va.evaluate({f"d[{i}]": 1 for i in range(4)})["p"] == 0
    outs = [vb.step({"en": 1}) for _ in range(3)]
    assert [o["q[0]"] for o in outs] == [0, 1, 0]


def test_state_bits_metadata_complete():
    nl = counter(4)
    res = compile_netlist(nl, ARCH, seed=1, effort="greedy")
    assert set(res.bitstream.state_bits) == {f"q{i}_ff" for i in range(4)}


def test_area_failure():
    with pytest.raises(PlacementError):
        compile_netlist(ripple_adder(4), ARCH, region=Rect(0, 0, 2, 2))


def test_pin_capacity_failure_relocatable():
    # 2x2 region with cw=8 has 32 virtual pins; adder8 needs 8+8+1+8+1 = 26
    # ports — force failure with a tiny region and a wide circuit.
    small = get_family("VF8").scaled(channel_width=2)
    with pytest.raises((PinCapacityError, PlacementError)):
        compile_netlist(ripple_adder(8), small, region=Rect(0, 0, 2, 2))


def test_pin_capacity_failure_dedicated():
    tiny = get_family("VF4").scaled(io_per_edge=1)  # 16 pins
    with pytest.raises(PinCapacityError):
        compile_netlist(ripple_adder(8), tiny, mode="dedicated")


def test_minimal_region_grows_for_pins():
    # Few CLBs but many I/Os must still get a big enough boundary.
    r = minimal_region(2, 40, ARCH)
    assert virtual_pin_capacity(ARCH, r) >= 40


def test_compile_deterministic():
    nl = ripple_adder(3)
    b1 = compile_netlist(nl, ARCH, seed=5).bitstream
    b2 = compile_netlist(nl, ARCH, seed=5).bitstream
    assert b1.clbs == b2.clbs
    assert b1.switches == b2.switches


def test_seed_changes_placement():
    nl = ripple_adder(3)
    b1 = compile_netlist(nl, ARCH, seed=1).bitstream
    b2 = compile_netlist(nl, ARCH, seed=2).bitstream
    assert b1.clbs != b2.clbs  # different placement → different tile configs


def test_dedicated_region_override_rejected():
    with pytest.raises(ValueError):
        compile_netlist(counter(2), ARCH, mode="dedicated", region=Rect(0, 0, 2, 2))


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        compile_netlist(counter(2), ARCH, mode="warp")


def test_timing_report_sane():
    res = compile_netlist(ripple_adder(4), ARCH, seed=1, effort="greedy")
    assert res.timing.critical_path > ARCH.lut_delay
    assert res.timing.fmax < 1e9  # sub-GHz for a mid-90s fabric
    assert res.timing.critical_kind in ("to-output", "to-register")
    deeper = compile_netlist(ripple_adder(6), get_family("VF10"), seed=1,
                             effort="greedy")
    assert deeper.timing.critical_path > res.timing.critical_path
