"""CAD instrumentation: inertness, profiles, round-trips, failure paths.

The load-bearing property is **observer inertness**: threading a
:class:`CadInstrumentation` through the flow must not perturb a single
RNG draw or cost comparison, so placements and bitstreams are
bit-identical with instrumentation on or off.  Everything else (profile
aggregation, JSONL round-trip, bus publication, failure enrichment)
rides on top of that guarantee.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cad import (
    PHASES,
    CadAnnealStep,
    CadInstrumentation,
    CadPhaseEnd,
    CadPhaseStart,
    CadRouteIteration,
    CompileProfile,
    RoutingError,
    compile_netlist,
)
from repro.device import get_family
from repro.netlist import alu, random_logic, ripple_adder, serial_crc
from repro.telemetry import EventBus, Profiler
from repro.telemetry.exporters import read_jsonl, to_jsonl

ARCH = get_family("VF10")


def _fake_clock():
    """Deterministic strictly-increasing clock (1 ms per reading)."""
    t = [0.0]

    def tick():
        t[0] += 1e-3
        return t[0]

    return tick


# -- inertness ---------------------------------------------------------------
class TestInertness:
    @pytest.mark.parametrize("effort", ["greedy", "sa"])
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_bit_identical_with_and_without(self, effort, seed):
        bare = compile_netlist(ripple_adder(4), ARCH, seed=seed,
                               effort=effort)
        inst = compile_netlist(ripple_adder(4), ARCH, seed=seed,
                               effort=effort,
                               instrument=CadInstrumentation())
        assert inst.placement.coords == bare.placement.coords
        assert inst.bitstream == bare.bitstream
        assert inst.wirelength == bare.wirelength
        assert inst.critical_path == bare.critical_path

    @given(st.integers(8, 28), st.integers(0, 2**31))
    @settings(max_examples=6, deadline=None)
    def test_bit_identical_random_circuits(self, n_gates, seed):
        nl = random_logic(n_gates, 3, 2, seed)
        bare = compile_netlist(nl, ARCH, seed=seed & 0xFF, effort="sa")
        inst = compile_netlist(nl, ARCH, seed=seed & 0xFF, effort="sa",
                               instrument=CadInstrumentation())
        assert inst.placement.coords == bare.placement.coords
        assert inst.bitstream == bare.bitstream

    def test_disabled_flow_has_no_profile(self):
        res = compile_netlist(ripple_adder(3), ARCH, seed=1, effort="greedy")
        assert res.profile is None

    def test_disabled_flow_publishes_nothing(self):
        """A live bus sees zero events from an uninstrumented compile."""
        bus = EventBus()
        profiler = Profiler(bus)
        compile_netlist(ripple_adder(3), ARCH, seed=1, effort="greedy")
        assert profiler.n_events == 0


# -- profile content ---------------------------------------------------------
class TestProfile:
    def test_phases_cover_the_flow_in_order(self):
        instr = CadInstrumentation()
        compile_netlist(ripple_adder(4), ARCH, seed=3, effort="sa",
                        instrument=instr)
        prof = instr.profile()
        names = [rec["phase"] for rec in prof.phases]
        # A single-attempt compile runs each phase exactly once, in the
        # canonical order.
        assert names == list(PHASES)
        assert all(rec["seconds"] >= 0 for rec in prof.phases)
        assert prof.total_seconds == pytest.approx(
            sum(prof.phase_seconds.values()))

    def test_phase_sizes_describe_outputs(self):
        instr = CadInstrumentation()
        res = compile_netlist(ripple_adder(4), ARCH, seed=3, effort="greedy",
                              instrument=instr)
        sizes = {rec["phase"]: rec["size"] for rec in res.profile.phases}
        assert sizes["pack"] == res.bitstream.used_clbs
        assert sizes["rrg"] == res.profile.peak_rrg_nodes > 0
        assert sizes["bitgen"] == len(res.bitstream.frames_touched(ARCH))

    def test_sa_curve_shape(self):
        instr = CadInstrumentation()
        compile_netlist(ripple_adder(4), ARCH, seed=3, effort="sa",
                        instrument=instr)
        curve = instr.profile().sa_curve
        assert len(curve) > 1
        temps = [rec["temperature"] for rec in curve]
        assert all(b < a for a, b in zip(temps, temps[1:]))
        assert all(0.0 <= rec["acceptance"] <= 1.0 for rec in curve)
        assert all(rec["accepted"] <= rec["moves"] for rec in curve)

    def test_greedy_has_no_sa_curve(self):
        instr = CadInstrumentation()
        compile_netlist(ripple_adder(4), ARCH, seed=3, effort="greedy",
                        instrument=instr)
        prof = instr.profile()
        assert prof.sa_steps == 0 and prof.final_cost == 0.0

    def test_route_curve_converges(self):
        instr = CadInstrumentation()
        compile_netlist(serial_crc(8, 0x07), ARCH, seed=3, effort="greedy",
                        instrument=instr)
        curve = instr.profile().route_curve
        assert curve and curve[-1]["overused"] == 0
        pressures = [rec["pressure"] for rec in curve]
        assert all(b > a for a, b in zip(pressures, pressures[1:]))

    def test_result_profile_equals_event_reduction(self):
        instr = CadInstrumentation()
        res = compile_netlist(alu(3), ARCH, seed=3, effort="sa",
                              instrument=instr)
        assert res.profile.as_dict() == \
            CompileProfile.from_events(instr.events).as_dict()

    def test_deterministic_with_injected_clock(self):
        profs = []
        for _ in range(2):
            instr = CadInstrumentation(clock=_fake_clock())
            compile_netlist(ripple_adder(4), ARCH, seed=3, effort="sa",
                            instrument=instr)
            profs.append(instr.profile().as_dict())
        assert profs[0] == profs[1]

    def test_render_mentions_every_phase(self):
        instr = CadInstrumentation(clock=_fake_clock())
        compile_netlist(ripple_adder(4), ARCH, seed=3, effort="sa",
                        instrument=instr)
        text = instr.profile().render()
        for phase in PHASES:
            assert phase in text
        assert "SA cost curve" in text and "PathFinder convergence" in text


# -- bus + exporter integration ---------------------------------------------
class TestTelemetrySpine:
    def test_events_publish_to_bus_and_bucket_as_cad(self):
        bus = EventBus()
        profiler = Profiler(bus)
        instr = CadInstrumentation(bus=bus)
        compile_netlist(ripple_adder(4), ARCH, seed=3, effort="sa",
                        instrument=instr)
        assert profiler.n_events == len(instr.events) > 0
        assert profiler.by_subsystem() == {
            "cad": pytest.approx(instr.profile().total_seconds)}
        summary = profiler.summary()
        assert summary["cad"]["counts"]["CadPhaseEnd"] == len(PHASES)
        assert summary["cad"]["phase_wall_seconds"] == pytest.approx(
            instr.profile().total_seconds)

    def test_jsonl_round_trip_preserves_the_profile(self):
        instr = CadInstrumentation()
        compile_netlist(alu(3), ARCH, seed=3, effort="sa", instrument=instr)
        buf = io.StringIO()
        to_jsonl(instr.events, buf)
        recovered = read_jsonl(io.StringIO(buf.getvalue()))
        assert [type(e).__name__ for e in recovered] == \
            [type(e).__name__ for e in instr.events]
        assert CompileProfile.from_events(recovered).as_dict() == \
            instr.profile().as_dict()

    def test_event_types_round_trip_fields(self):
        events = [
            CadPhaseStart(time=0.0, source="cad", phase="place", size=9),
            CadPhaseEnd(time=0.0, source="cad", phase="place",
                        seconds=0.25, size=9),
            CadAnnealStep(time=0.1, source="cad", step=2, temperature=0.64,
                          moves=128, accepted=17, cost=88.0,
                          wall_seconds=0.01),
            CadRouteIteration(time=0.2, source="cad", iteration=1,
                              overused=4, ripped_up=3, pressure=1.8,
                              wall_seconds=0.02),
        ]
        buf = io.StringIO()
        to_jsonl(events, buf)
        assert read_jsonl(io.StringIO(buf.getvalue())) == events


# -- failure paths -----------------------------------------------------------
class TestFailurePaths:
    def test_routing_error_carries_convergence_history(self):
        with pytest.raises(RoutingError) as exc:
            compile_netlist(serial_crc(8, 0x07), ARCH, seed=3,
                            effort="greedy", max_route_iterations=1)
        msg = str(exc.value)
        assert "final pressure" in msg
        assert "overused per iteration" in msg

    def test_failed_compile_still_records_phases(self):
        instr = CadInstrumentation()
        with pytest.raises(RoutingError):
            compile_netlist(serial_crc(8, 0x07), ARCH, seed=3,
                            effort="greedy", max_route_iterations=1,
                            instrument=instr)
        prof = instr.profile()
        # The route phase of every discarded auto-region attempt is
        # closed (the context records the end even when it raises), and
        # the last iteration left congestion standing.
        route_phases = [r for r in prof.phases if r["phase"] == "route"]
        assert route_phases
        assert prof.final_overuse > 0
        # No attempt got past routing.
        assert not any(r["phase"] == "bitgen" for r in prof.phases)
