"""Packing and placement tests."""

import pytest

from repro.cad import (
    PackError,
    PlacementError,
    hpwl,
    nets_of,
    pack,
    place,
    technology_map,
)
from repro.cad.pack import IDENTITY_TRUTH
from repro.device import Rect
from repro.netlist import NetlistBuilder, counter, ripple_adder, serial_crc


def mapped(nl, k=4):
    return technology_map(nl, k)


class TestPack:
    def test_ble_count_at_most_luts_plus_ffs(self):
        nl = mapped(serial_crc(8, 0x07))
        design = pack(nl, 4)
        n_luts = sum(1 for c in nl.cells.values() if c.kind.value == "lut")
        n_ffs = nl.state_bits
        assert n_ffs <= design.n_clbs <= n_luts + n_ffs

    def test_lut_ff_fusion(self):
        """A LUT feeding only a DFF shares the DFF's CLB."""
        design = pack(mapped(counter(4)), 4)
        fused = [b for b in design.bles if b.registered and b.lut_truth != IDENTITY_TRUTH]
        assert fused, "expected at least one fused LUT+FF BLE"

    def test_shared_driver_gets_passthrough(self):
        b = NetlistBuilder("shared")
        x = b.input("x")
        g = b.not_(x, name="g")
        b.dff(g, name="q")
        b.output("y", g)  # g is read by both the DFF and the output
        design = pack(mapped(b.build()), 4)
        ble_q = next(ble for ble in design.bles if ble.name == "q")
        assert ble_q.lut_truth == IDENTITY_TRUTH
        assert ble_q.lut_inputs == ("g",)

    def test_input_to_output_feedthrough(self):
        b = NetlistBuilder("feed")
        x = b.input("x")
        b.output("y", x)
        design = pack(mapped(b.build()), 4)
        assert design.outputs["y"].endswith("__feed")
        assert design.n_clbs == 1

    def test_state_bit_names(self):
        design = pack(mapped(counter(3)), 4)
        assert sorted(design.state_bit_names) == ["q0_ff", "q1_ff", "q2_ff"]

    def test_nets_of(self):
        design = pack(mapped(ripple_adder(2)), 4)
        nets = nets_of(design)
        for src, sinks in nets.items():
            assert sinks, f"net {src} has no sinks"

    def test_validate_catches_unknown_net(self):
        design = pack(mapped(ripple_adder(2)), 4)
        design.outputs["bogus"] = "ghost_net"
        with pytest.raises(PackError, match="unknown net"):
            design.validate()


class TestPlace:
    def test_fits_and_valid(self):
        design = pack(mapped(ripple_adder(3)), 4)
        pl = place(design, Rect(0, 0, 4, 4), seed=0, effort="greedy")
        pl.validate()
        assert len(pl.coords) == design.n_clbs

    def test_too_small_region_raises(self):
        design = pack(mapped(ripple_adder(4)), 4)
        with pytest.raises(PlacementError, match="needs"):
            place(design, Rect(0, 0, 2, 2))

    def test_exact_fit(self):
        design = pack(mapped(counter(3)), 4)  # 4 BLEs
        pl = place(design, Rect(0, 0, 2, 2), seed=0, effort="greedy")
        pl.validate()

    def test_sa_not_worse_than_greedy(self):
        design = pack(mapped(ripple_adder(4)), 4)
        region = Rect(0, 0, 6, 6)
        greedy = place(design, region, seed=3, effort="greedy")
        sa = place(design, region, seed=3, effort="sa")
        assert sa.wirelength() <= greedy.wirelength()

    def test_sa_deterministic(self):
        design = pack(mapped(ripple_adder(4)), 4)
        region = Rect(0, 0, 6, 6)
        a = place(design, region, seed=7, effort="sa")
        b = place(design, region, seed=7, effort="sa")
        assert a.coords == b.coords

    def test_region_offset_respected(self):
        design = pack(mapped(counter(3)), 4)
        region = Rect(3, 2, 3, 3)
        pl = place(design, region, seed=0)
        assert all(region.contains(c) for c in pl.coords.values())

    def test_unknown_effort_rejected(self):
        design = pack(mapped(counter(3)), 4)
        with pytest.raises(ValueError):
            place(design, Rect(0, 0, 4, 4), effort="quantum")

    def test_hpwl_zero_for_single_ble(self):
        b = NetlistBuilder("one")
        x = b.input("x")
        b.output("y", b.not_(x))
        design = pack(mapped(b.build()), 4)
        pl = place(design, Rect(0, 0, 2, 2), effort="greedy")
        assert hpwl(design, pl.coords) == 0
