"""Scalar vs vectorized SA placer parity.

The vector engine rebuilds the anneal around array state — per-move
HPWL deltas come from one fancy index plus two ``reduceat`` calls
instead of per-terminal python sums — but it consumes the *same RNG
stream* and computes the *same integer deltas*, so it must accept the
same moves and land every BLE on the same site.  These tests pin that
contract: same seed → identical coords, identical instrument event
streams (temperatures, costs, acceptance counts), on generated designs
too.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cad import (
    VECTOR_MIN_BLES,
    CadInstrumentation,
    pack,
    place,
    technology_map,
)
from repro.device import get_family
from repro.netlist import (
    NetlistBuilder,
    alu,
    comparator,
    counter,
    moving_sum_fir,
    ripple_adder,
    serial_crc,
)

ARCH = get_family("VF16")

CIRCUITS = [
    pytest.param(lambda: ripple_adder(4), id="adder4"),
    pytest.param(lambda: ripple_adder(8), id="adder8"),
    pytest.param(lambda: comparator(4), id="cmp4"),
    pytest.param(lambda: counter(6), id="counter6"),
    pytest.param(lambda: alu(3), id="alu3"),
    pytest.param(lambda: serial_crc(8, 0x07), id="crc8"),
    pytest.param(lambda: moving_sum_fir(8, 4), id="fir8x4"),
]


def packed(factory):
    mapped = technology_map(factory(), ARCH.k)
    return pack(mapped, ARCH.k)


def region_for(design):
    from repro.cad import minimal_region

    io = len(design.inputs) + len(design.outputs)
    return minimal_region(design.n_clbs, io, ARCH)


@pytest.mark.parametrize("factory", CIRCUITS)
@pytest.mark.parametrize("seed", [0, 3, 11])
def test_engines_place_identically(factory, seed):
    design = packed(factory)
    region = region_for(design)
    s = place(design, region, seed=seed, effort="sa", engine="scalar")
    v = place(design, region, seed=seed, effort="sa", engine="vector")
    assert s.coords == v.coords


@pytest.mark.parametrize("factory", CIRCUITS[:3])
def test_engines_emit_identical_event_streams(factory):
    """Not just the same answer — the same anneal: every step's
    temperature, running cost and acceptance counts match, so the
    vector engine is observationally indistinguishable under
    instrumentation (wall time aside)."""
    from repro.cad import CadAnnealStep

    design = packed(factory)
    region = region_for(design)
    streams = {}
    for engine in ("scalar", "vector"):
        instr = CadInstrumentation()
        place(design, region, seed=3, effort="sa", engine=engine,
              instrument=instr)
        streams[engine] = [
            (e.step, e.temperature, e.moves, e.accepted, e.cost)
            for e in instr.events if isinstance(e, CadAnnealStep)
        ]
    assert streams["scalar"]  # the anneal actually ran instrumented
    assert streams["scalar"] == streams["vector"]


def test_auto_dispatch_threshold():
    """auto picks the vector engine at VECTOR_MIN_BLES and the scalar
    one below — and either way the answer is the scalar answer."""
    small = packed(lambda: ripple_adder(2))
    assert len(small.bles) < VECTOR_MIN_BLES
    big = packed(lambda: moving_sum_fir(8, 4))
    assert len(big.bles) >= VECTOR_MIN_BLES
    for design in (small, big):
        region = region_for(design)
        a = place(design, region, seed=3, effort="sa", engine="auto")
        s = place(design, region, seed=3, effort="sa", engine="scalar")
        assert a.coords == s.coords


def test_unknown_engine_rejected():
    design = packed(lambda: ripple_adder(2))
    with pytest.raises(ValueError, match="engine"):
        place(design, region_for(design), engine="simd")


@st.composite
def random_netlists(draw):
    """Small random combinational netlists: a layer of inputs feeding a
    random DAG of 2-input gates, a few outputs."""
    n_in = draw(st.integers(min_value=2, max_value=5))
    n_gates = draw(st.integers(min_value=3, max_value=30))
    b = NetlistBuilder(f"rand{n_in}x{n_gates}")
    sigs = [b.input(f"i{i}") for i in range(n_in)]
    for g in range(n_gates):
        a = sigs[draw(st.integers(min_value=0, max_value=len(sigs) - 1))]
        c = sigs[draw(st.integers(min_value=0, max_value=len(sigs) - 1))]
        op = draw(st.sampled_from(["and_", "or_", "xor"]))
        sigs.append(getattr(b, op)(a, c, name=f"g{g}"))
    n_out = draw(st.integers(min_value=1, max_value=3))
    for o in range(n_out):
        b.output(f"o{o}", sigs[len(sigs) - 1 - o])
    return b.build()


@settings(max_examples=25, deadline=None)
@given(nl=random_netlists(), seed=st.integers(min_value=0, max_value=2**16))
def test_engines_agree_on_random_designs(nl, seed):
    design = pack(technology_map(nl, ARCH.k), ARCH.k)
    region = region_for(design)
    s = place(design, region, seed=seed, effort="sa", engine="scalar")
    v = place(design, region, seed=seed, effort="sa", engine="vector")
    assert s.coords == v.coords


def test_connectivity_order_matches_list_reference():
    """The deque-based BFS must visit BLEs in exactly the order the old
    ``list.pop(0)`` implementation did — placement determinism hangs on
    this ordering."""
    from repro.cad.place import _connectivity_order, _net_terminals

    design = packed(lambda: serial_crc(8, 0x07))

    # Inline reference: the original formulation, byte for byte, except
    # the queue is a plain list popped from the front.
    adj = {b.name: [] for b in design.bles}
    for terms in _net_terminals(design):
        for a in terms:
            for b in terms:
                if a != b:
                    adj[a].append(b)
    order = []
    visited = set()
    remaining = sorted(adj, key=lambda n: -len(adj[n]))
    for seed_name in remaining:
        if seed_name in visited:
            continue
        queue = [seed_name]
        visited.add(seed_name)
        while queue:
            cur = queue.pop(0)
            order.append(cur)
            for nxt in adj[cur]:
                if nxt not in visited:
                    visited.add(nxt)
                    queue.append(nxt)
    assert _connectivity_order(design) == order


def test_net_terminals_memoised_per_design():
    """Repeat calls return the same object (the placer calls this in
    both the greedy seeding and the anneal — once per compile is
    enough), and distinct designs never share a memo."""
    from repro.cad.place import _net_terminals

    d1 = packed(lambda: ripple_adder(4))
    d2 = packed(lambda: ripple_adder(4))
    assert _net_terminals(d1) is _net_terminals(d1)
    assert _net_terminals(d1) is not _net_terminals(d2)
    assert _net_terminals(d1) == _net_terminals(d2)
