"""Scalar vs vectorized PathFinder parity.

The vector engine precomputes one per-iteration cost vector
(``base * (1 + history) * (1 + pressure * over)``) per net instead of
calling ``_node_cost`` per visited node inside Dijkstra.  Within one
``_route_net`` call only the net's own commits change occupancy, and
membership subtraction cancels them — so the vector is *exact*, not an
approximation, and both engines must produce node-for-node identical
trees, the same overuse trajectory and the same final occupancy.
"""

import numpy as np
import pytest

from repro.cad import (
    NetSpec,
    Router,
    RoutingGraph,
    compile_netlist,
    nets_of,
    pack,
    place,
    technology_map,
)
from repro.cad.flow import _virtual_pin_pool, minimal_region
from repro.device import get_family
from repro.netlist import alu, comparator, ripple_adder, serial_crc

ARCH = get_family("VF10")

CIRCUITS = [
    pytest.param(lambda: ripple_adder(4), id="adder4"),
    pytest.param(lambda: comparator(4), id="cmp4"),
    pytest.param(lambda: alu(3), id="alu3"),
    pytest.param(lambda: serial_crc(8, 0x07), id="crc8"),
]


def route_inputs(factory, seed=3):
    """Routing inputs built exactly as the flow builds them
    (relocatable mode)."""
    design = pack(technology_map(factory(), ARCH.k), ARCH.k)
    io_count = len(design.inputs) + len(design.outputs)
    region = minimal_region(design.n_clbs, io_count, ARCH)
    placement = place(design, region, seed=seed, effort="sa")
    pool = _virtual_pin_pool(ARCH, region)
    virtual_inputs = {p: pool[i] for i, p in enumerate(design.inputs)}
    virtual_outputs = {
        p: pool[len(pool) - 1 - j]
        for j, p in enumerate(sorted(design.outputs))
    }
    ble_names = {b.name for b in design.bles}
    specs = {}
    for src, sinks in nets_of(design).items():
        source = (("clb", placement.coords[src]) if src in ble_names
                  else ("wire", virtual_inputs[src]))
        specs[src] = NetSpec(name=src, source=source, sinks=[
            ("clbpin", placement.coords[b], pin) for b, pin in sinks
        ])
    for port, src in design.outputs.items():
        if src not in specs:
            specs[src] = NetSpec(
                name=src, source=("clb", placement.coords[src]), sinks=[]
            )
        specs[src].sinks.append(("wire", virtual_outputs[port]))
    graph = RoutingGraph(ARCH, region=region)
    reserved = {graph.wire_id(w): p for p, w in virtual_inputs.items()}
    for port, w in virtual_outputs.items():
        reserved[graph.wire_id(w)] = design.outputs[port]
    return graph, reserved, [specs[n] for n in sorted(specs)]


@pytest.mark.parametrize("factory", CIRCUITS)
@pytest.mark.parametrize("seed", [0, 3])
def test_engines_route_identically(factory, seed):
    graph, reserved, net_list = route_inputs(factory, seed=seed)
    routers = {}
    routed = {}
    for engine in ("scalar", "vector"):
        r = Router(graph, reserved=dict(reserved), engine=engine)
        routed[engine] = r.route(net_list)
        routers[engine] = r
    s, v = routed["scalar"], routed["vector"]
    assert set(s) == set(v)
    for name in s:
        assert v[name].nodes == s[name].nodes, name
        assert v[name].source_taps == s[name].source_taps, name
        assert v[name].sink_taps == s[name].sink_taps, name
        assert v[name].switches == s[name].switches, name
        assert v[name].pad_taps == s[name].pad_taps, name
        assert v[name].sink_path_stats == s[name].sink_path_stats, name
    # Same negotiation trajectory, not just the same endpoint.
    assert routers["scalar"].overuse_history == \
        routers["vector"].overuse_history
    assert np.array_equal(routers["scalar"].occupancy,
                          routers["vector"].occupancy)
    assert np.array_equal(routers["scalar"].history,
                          routers["vector"].history)


def test_cost_vector_matches_node_cost_everywhere():
    """The per-net cost vector must equal ``_node_cost`` at every node
    — including infinity on nodes reserved for other nets — in a state
    with real occupancy, history and pressure."""
    graph, reserved, net_list = route_inputs(lambda: alu(3))
    router = Router(graph, reserved=reserved, engine="vector")
    router.route(net_list)  # leaves occupancy/history populated
    router._pressure = 0.9
    some_net = net_list[0].name
    vec = router._net_cost_vector(some_net)
    for nid in range(len(graph)):
        assert vec[nid] == router._node_cost(nid, set(), some_net), nid


def test_router_rejects_unknown_engine():
    graph, reserved, _ = route_inputs(lambda: ripple_adder(4))
    with pytest.raises(ValueError, match="engine"):
        Router(graph, engine="simd")


def test_full_flow_bitstreams_engine_independent():
    """End to end: the engine knob changes nothing observable about a
    compile — bitstream, wirelength and critical path all match."""
    arch = get_family("VF10")
    results = {
        engine: compile_netlist(serial_crc(8, 0x07), arch, seed=3,
                                effort="sa", engine=engine)
        for engine in ("scalar", "vector", "auto")
    }
    base = results["scalar"]
    for engine in ("vector", "auto"):
        res = results[engine]
        assert res.bitstream == base.bitstream
        assert res.wirelength == base.wirelength
        assert res.critical_path == base.critical_path
        assert res.placement.coords == base.placement.coords
